#!/usr/bin/env python
"""Prometheus text-exposition lint for ``/metrics`` output.

Stdlib-only validator for the exposition format version 0.0.4 subset the
repo's :class:`~repro.observability.metrics.MetricsRegistry` emits.  CI
scrapes the live telemetry endpoints and pipes the body through this
linter, so a formatting regression (bad escaping, missing ``# TYPE``,
non-numeric sample, histogram whose ``+Inf`` bucket disagrees with
``_count``) fails the build instead of silently breaking scrapers.

Checks, one finding per line as ``line N: CODE message``:

* **P001** — unparseable line (neither comment, blank, nor sample);
* **P002** — sample for a family with no preceding ``# TYPE``;
* **P003** — ``# TYPE`` value not one of counter/gauge/histogram/
  summary/untyped;
* **P004** — sample value is not a valid float (``NaN``/``+Inf`` ok);
* **P005** — malformed label block (bad quoting/escaping);
* **P006** — duplicate ``# TYPE`` for the same family;
* **P007** — counter sample is negative;
* **P008** — histogram's ``+Inf`` bucket count disagrees with its
  ``_count`` sample (same label subset);
* **P009** — metric or label name violates the Prometheus charset.

Exit status 0 = clean; 1 = findings; 2 = could not read input.

Usage::

    python scripts/check_prom.py exposition.txt
    curl -s localhost:9600/metrics | python scripts/check_prom.py -
"""

from __future__ import annotations

import argparse
import re
import sys

__all__ = ["lint_exposition", "parse_samples"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(raw: str) -> dict | None:
    """Parse a ``name="value",...`` label block; ``None`` when malformed."""
    labels: dict[str, str] = {}
    index = 0
    length = len(raw)
    while index < length:
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[index:])
        if match is None:
            return None
        name = match.group(1)
        index += match.end()
        value_chars: list[str] = []
        while index < length:
            char = raw[index]
            if char == "\\":
                if index + 1 >= length:
                    return None
                escaped = raw[index + 1]
                if escaped == "n":
                    value_chars.append("\n")
                elif escaped in ('"', "\\"):
                    value_chars.append(escaped)
                else:
                    return None
                index += 2
            elif char == '"':
                index += 1
                break
            else:
                value_chars.append(char)
                index += 1
        else:
            return None  # ran off the end inside the quoted value
        labels[name] = "".join(value_chars)
        if index < length:
            if raw[index] != ",":
                return None
            index += 1
    return labels


def _parse_value(raw: str) -> float | None:
    """A sample value as float; ``None`` when invalid."""
    try:
        return float(raw)
    except ValueError:
        return None


def parse_samples(text: str) -> list[dict]:
    """Every sample in *text* as ``{"name", "labels", "value"}`` dicts.

    Lenient companion to :func:`lint_exposition` for tests and smoke
    scripts that want to assert on scraped values (e.g. counters are
    monotone across scrapes); unparseable lines are skipped.
    """
    samples = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        if labels is None or value is None:
            continue
        samples.append(
            {"name": match.group("name"), "labels": labels, "value": value}
        )
    return samples


def lint_exposition(text: str) -> list[str]:
    """All findings for one exposition body (empty list = clean)."""
    findings: list[str] = []
    types: dict[str, str] = {}
    inf_buckets: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}

    def finding(number: int, code: str, message: str) -> None:
        findings.append(f"line {number}: {code} {message}")

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                family = parts[2]
                declared = parts[3] if len(parts) > 3 else ""
                if declared not in _TYPES:
                    finding(number, "P003", f"unknown type {declared!r} for {family}")
                if family in types:
                    finding(number, "P006", f"duplicate TYPE for {family}")
                types[family] = declared
            continue
        match = _SAMPLE.match(line.strip())
        if match is None:
            finding(number, "P001", f"unparseable line: {line.strip()[:80]!r}")
            continue
        name = match.group("name")
        if not _METRIC_NAME.match(name):
            finding(number, "P009", f"bad metric name {name!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("histogram", "summary"):
                family = base
                break
        if family not in types:
            finding(number, "P002", f"sample for {name} has no preceding # TYPE")
        labels = _parse_labels(match.group("labels") or "")
        if labels is None:
            finding(number, "P005", f"malformed labels on {name}")
            continue
        for label in labels:
            if not _LABEL_NAME.match(label):
                finding(number, "P009", f"bad label name {label!r} on {name}")
        value = _parse_value(match.group("value"))
        if value is None:
            finding(
                number, "P004", f"non-numeric value {match.group('value')!r} on {name}"
            )
            continue
        if types.get(family) == "counter" and value < 0:
            finding(number, "P007", f"negative counter sample on {name}")
        if types.get(family) == "histogram":
            key_labels = tuple(
                sorted(item for item in labels.items() if item[0] != "le")
            )
            if name.endswith("_bucket") and labels.get("le") == "+Inf":
                inf_buckets[(family, key_labels)] = value
            elif name.endswith("_count"):
                counts[(family, key_labels)] = value
    for key, count in counts.items():
        inf = inf_buckets.get(key)
        if inf is not None and inf != count:
            family, _ = key
            findings.append(
                f"line 0: P008 histogram {family} +Inf bucket {inf} != _count {count}"
            )
    return findings


def main(argv=None) -> int:
    """CLI entry point: lint a file (or stdin with ``-``)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path", help="exposition file to lint, or '-' to read stdin"
    )
    args = parser.parse_args(argv)
    try:
        if args.path == "-":
            text = sys.stdin.read()
        else:
            with open(args.path, encoding="utf-8") as handle:
                text = handle.read()
    except OSError as exc:
        print(f"check_prom: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    findings = lint_exposition(text)
    for entry in findings:
        print(entry)
    if findings:
        print(f"check_prom: {len(findings)} finding(s)")
        return 1
    samples = parse_samples(text)
    families = {sample["name"] for sample in samples}
    print(f"check_prom: OK ({len(samples)} samples, {len(families)} series names)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
