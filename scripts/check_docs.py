#!/usr/bin/env python
"""Documentation lint: docstrings + ``__all__`` + markdown link check.

Stdlib-only (runs anywhere CI or a laptop has Python), mirroring the
missing-docstring subset of pydocstyle/ruff that the repo enforces:

* **D100** — every module under the linted packages has a docstring;
* **D101/D102/D103** — every public class, method and function has one
  (private ``_names`` and dunders are exempt);
* **ALL** — every linted module declares ``__all__`` (``__init__``
  modules included);
* **LNK** — every relative markdown link in the checked documents points
  at an existing file or directory.

Exit status 0 = clean; 1 = findings (printed one per line as
``path:line: CODE message``).

Usage::

    python scripts/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

#: packages (or single modules) that must carry docstrings + __all__
LINTED_PACKAGES = (
    "src/repro/service",
    "src/repro/persistence",
    "src/repro/replication",
    "src/repro/observability",
    "src/repro/rpc",
    "src/repro/indexing/columnar.py",
)

#: markdown documents whose relative links must resolve
LINKED_DOCUMENTS = ("README.md", "docs/*.md", "benchmarks/README.md")

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def lint_docstrings(module_path: Path, repo_root: Path) -> list[str]:
    """Missing-docstring and missing-__all__ findings for one module."""
    findings: list[str] = []
    relative = module_path.relative_to(repo_root)
    tree = ast.parse(module_path.read_text(encoding="utf-8"))

    if ast.get_docstring(tree) is None:
        findings.append(f"{relative}:1: D100 missing module docstring")
    has_all = any(
        isinstance(node, ast.Assign)
        and any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        )
        for node in tree.body
    )
    if not has_all:
        findings.append(f"{relative}:1: ALL missing __all__ declaration")

    def is_public(name: str) -> bool:
        return not name.startswith("_")

    def walk(nodes, owner: str = "") -> None:
        for node in nodes:
            if isinstance(node, ast.ClassDef):
                if is_public(node.name):
                    if ast.get_docstring(node) is None:
                        findings.append(
                            f"{relative}:{node.lineno}: D101 missing docstring "
                            f"on class {node.name}"
                        )
                    # members of private classes are exempt (pydocstyle rule)
                    walk(node.body, owner=f"{node.name}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(node.name) and ast.get_docstring(node) is None:
                    code = "D102" if owner else "D103"
                    kind = "method" if owner else "function"
                    findings.append(
                        f"{relative}:{node.lineno}: {code} missing docstring "
                        f"on {kind} {owner}{node.name}"
                    )

    walk(tree.body)
    return findings


def lint_links(document: Path, repo_root: Path) -> list[str]:
    """Broken relative-link findings for one markdown document."""
    findings: list[str] = []
    relative = document.relative_to(repo_root)
    for line_number, line in enumerate(
        document.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for target in _MD_LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (document.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                findings.append(
                    f"{relative}:{line_number}: LNK broken link -> {target}"
                )
    return findings


def main(argv: list[str] | None = None) -> int:
    """Run both lints over the configured packages and documents."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=Path(__file__).resolve().parent.parent,
        type=Path,
        help="repository root (default: the parent of scripts/)",
    )
    args = parser.parse_args(argv)
    root: Path = args.root.resolve()

    findings: list[str] = []
    for package in LINTED_PACKAGES:
        path = root / package
        modules = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for module_path in modules:
            findings.extend(lint_docstrings(module_path, root))
    for pattern in LINKED_DOCUMENTS:
        for document in sorted(root.glob(pattern)):
            findings.extend(lint_links(document, root))

    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} documentation finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
