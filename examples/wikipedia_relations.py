"""The three Section 6.3 wiki queries and the index-design comparison.

Generates a Wikipedia-like corpus, runs the Chocolate / Title / DateOfBirth
queries with per-stage timings (the rows of Table 2), and compares the four
index designs on size (Figure 6(b)).

Run with:  python examples/wikipedia_relations.py
"""

from __future__ import annotations

from repro.corpora.wikipedia import generate_wikipedia_corpus
from repro.evaluation.queries import SCALEUP_QUERIES
from repro.indexing.baselines import all_index_designs
from repro.koko.engine import KokoEngine


def main() -> None:
    corpus = generate_wikipedia_corpus(articles=120)
    print(f"Generated {len(corpus)} wiki articles, {corpus.num_sentences} sentences")

    engine = KokoEngine(corpus)
    print("\nquery         tuples  selectivity  total(s)  breakdown")
    for name, query in SCALEUP_QUERIES.items():
        result = engine.execute(query)
        selectivity = len(result.selectivity) / len(corpus)
        breakdown = ", ".join(
            f"{stage}={seconds:.3f}" for stage, seconds in result.timings.as_dict().items()
        )
        print(
            f"{name:12s} {len(result):7d} {selectivity:12.2%} "
            f"{result.timings.total:9.3f}  {breakdown}"
        )
        for extraction in list(result)[:2]:
            print(f"    e.g. {extraction.as_dict()}")

    print("\nIndex-design comparison (Figure 6(b) shape):")
    for design_cls in all_index_designs():
        index = design_cls().build(corpus)
        print(
            f"  {index.name:12s} build={index.build_seconds:6.2f}s "
            f"size={index.approximate_bytes() / 1e6:6.2f} MB"
        )


if __name__ == "__main__":
    main()
