"""Quickstart: annotate text, run the paper's running-example queries.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import KokoEngine, Pipeline

EXAMPLE_2_1 = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""

CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)
COUNTRY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "country" {1.0}) with threshold 0.3'
)


def main() -> None:
    pipeline = Pipeline()
    corpus = pipeline.annotate_corpus(
        {
            "doc0": "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "doc1": "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "s1": "cities in asian countries such as China and Japan.",
            "s2": "cities in asian countries such as Beijing and Tokyo.",
        },
        name="quickstart",
    )
    engine = KokoEngine(corpus)

    print("Example 2.1 — surface + dependency-tree conditions")
    for extraction in engine.execute(EXAMPLE_2_1):
        print(f"  {extraction.doc_id}: e={extraction.value('e')!r}  d={extraction.value('d')!r}")

    print("\nExample 2.2 — similarTo distinguishes cities from countries")
    for label, query in (("city", CITY_QUERY), ("country", COUNTRY_QUERY)):
        result = engine.execute(query)
        found = ", ".join(
            f"{t.value('a')} ({t.score('a'):.2f})" for t in sorted(result, key=lambda t: t.value("a"))
        )
        print(f"  similarTo {label!r}: {found}")


if __name__ == "__main__":
    main()
