"""Distributed-tracing demo: one RPC ingest traced across a cluster.

Run with:  PYTHONPATH=src python examples/tracing_demo.py

Builds the full traced topology the operations guide describes and
follows a single write through it over real HTTP:

1. a durable primary serving RPC, with a TCP log-shipped replica;
2. an :class:`RpcClient` with ``trace_sample_rate=1.0`` — the client
   mints the trace, the request header carries it, and every hop
   (server dispatch, ingest, WAL shipping, replica apply) records its
   fragment into its node's trace store;
3. ``/traces`` + ``/traces/<id>`` on each node's telemetry server, and
   the primary's ``/cluster/traces/<id>`` assembling one cross-node
   tree.

The demo exits non-zero when any expected span is missing from the
assembled trace, so it doubles as the CI tracing smoke.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.observability import ClusterTelemetry, TelemetryServer, http_get_json
from repro.replication import LogShipper, ReplicaService, connect_tcp
from repro.rpc import RpcClient, RpcServer
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
TEXT = "I ate a chocolate ice cream, which was delicious, and also ate a pie."

#: every hop the assembled cross-node trace must contain
EXPECTED_SPANS = {
    "rpc.server",       # the client call, server side
    "ingest",           # the primary's service-level ingest
    "wal_append",       # ... its WAL append
    "fsync_wait",       # ... the group-commit fsync wait
    "splice",           # ... the in-memory index splice
    "wal.ship",         # the shipper's batch send to the follower
    "replica.apply",    # the replica's apply of the shipped record
}


def _span_names(node: dict, out: set) -> set:
    out.add(node["name"])
    for child in node.get("children", ()):
        _span_names(child, out)
    return out


def _collect(fragment: dict, names: set, nodes: set, indent: int = 1) -> None:
    nodes.add(fragment["node"])
    _span_names(fragment["root"], names)
    print(
        f"  {'  ' * indent}{fragment['root']['name']}  "
        f"[{fragment['kind']} on {fragment['node']}]  {fragment['ms']:.3f} ms"
    )
    for child in fragment["children"]:
        _collect(child, names, nodes, indent + 1)


def main() -> int:
    """Trace one write end to end; fail loudly on any missing hop."""
    storage = Path(tempfile.mkdtemp(prefix="koko-tracing-"))
    failures = 0
    try:
        with KokoService(shards=2, storage_dir=storage / "primary") as primary:
            shipper = LogShipper(primary, heartbeat_interval=0.05)
            ship_host, ship_port = shipper.listen()
            replica = ReplicaService(
                connect_tcp(ship_host, ship_port), name="replica-1"
            )
            with RpcServer(primary) as rpc:
                client = RpcClient(
                    *rpc.address, client_id="demo", trace_sample_rate=1.0
                )
                cluster = ClusterTelemetry(primary=primary, shipper=shipper)
                with TelemetryServer(replica, name="replica-1") as replica_telemetry:
                    with TelemetryServer(
                        primary, name="primary", cluster=cluster, rpc_server=rpc
                    ) as primary_telemetry:
                        cluster.add_peer("primary", *primary_telemetry.address)
                        cluster.add_peer("replica-1", *replica_telemetry.address)

                        client.add_document(TEXT, doc_id="d0", wait_durable=True)
                        client.query(ENTITY_QUERY)
                        assert replica.wait_caught_up(
                            primary.wal_position(), timeout=60
                        )
                        cluster.scrape_once()

                        print("=== client-side view " + "=" * 46)
                        stats = client.stats()
                        print(
                            f"  {stats['requests']} calls: rtt "
                            f"{stats['rtt_ms_avg']} ms = server "
                            f"{stats['server_ms_avg']} ms + wire "
                            f"{stats['wire_ms_avg']} ms"
                        )
                        summaries = client.traces.recent()
                        for summary in summaries:
                            print(
                                f"  trace {summary['trace_id']}: "
                                f"{summary['root_names']}"
                            )
                        ingest_trace = summaries[-1]["trace_id"]  # oldest first call

                        print("\n=== /traces on each node " + "=" * 42)
                        for name, server in (
                            ("primary", primary_telemetry),
                            ("replica-1", replica_telemetry),
                        ):
                            # the replica's fragment lands from its applier
                            # thread; give it a moment on slow machines
                            deadline = time.monotonic() + 15
                            listing = None
                            while time.monotonic() < deadline:
                                status, listing = http_get_json(
                                    *server.address, "/traces"
                                )
                                if status == 200 and listing["stored"]:
                                    break
                                time.sleep(0.05)
                            if listing is None or not listing["stored"]:
                                print(f"  {name}: no traces recorded")
                                failures += 1
                                continue
                            print(
                                f"  {name}: {listing['stored']} trace(s), "
                                f"{listing['recorded_total']} fragment(s)"
                            )

                        print("\n=== /cluster/traces/<id> assembled " + "=" * 32)
                        status, assembled = http_get_json(
                            *primary_telemetry.address,
                            f"/cluster/traces/{ingest_trace}",
                        )
                        if status != 200:
                            print(f"  assembly failed with HTTP {status}")
                            return 1
                        print(
                            f"  trace {assembled['trace_id']}: "
                            f"{assembled['fragments']} fragments, "
                            f"{assembled['spans']} spans, "
                            f"nodes {assembled['nodes']}"
                        )
                        names: set = set()
                        nodes: set = set()
                        for root in assembled["roots"]:
                            _collect(root, names, nodes)
                        missing = EXPECTED_SPANS - names
                        if missing:
                            print(f"  MISSING spans: {sorted(missing)}")
                            failures += 1
                        if len(nodes) < 2:
                            print(f"  expected fragments from 2 nodes, got {nodes}")
                            failures += 1
                        if assembled.get("errors"):
                            print(f"  scrape errors: {assembled['errors']}")
                            failures += 1
                    cluster.close()
                client.close()
            replica.close()
            shipper.close()
    finally:
        shutil.rmtree(storage, ignore_errors=True)
    if failures:
        print(f"\nFAIL: {failures} tracing problem(s)", file=sys.stderr)
        return 1
    print("\nOne write, one trace, every hop accounted for.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
