"""Observability demo: EXPLAIN traces, the metrics registry, slow-op log.

Run with:  PYTHONPATH=src python examples/observability_demo.py

Walks the three observability surfaces end to end on a small sharded,
durable service:

1. ``service.query(..., explain=True)`` — an EXPLAIN ANALYZE-style span
   tree covering cache lookups, the per-shard fan-out, every pipeline
   stage, and the merge;
2. ``service.metrics`` — the unified registry (service + WAL/checkpoint
   durability counters in one place), rendered as Prometheus text;
3. ``service.recent_slow_ops()`` — structured slow-op entries, here with
   thresholds forced to 0 so every operation qualifies.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from repro import ShardedKokoService

CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

ARTICLES = {
    "paris": "Paris is a beautiful city with many museums.",
    "osaka": "The barista in Osaka served a delicious espresso.",
    "asia": "cities in asian countries such as Beijing and Tokyo.",
    "pie": "Maria ate a delicious pie in Tokyo.",
}


def main() -> None:
    """Ingest a small corpus and print all three observability surfaces."""
    storage = Path(tempfile.mkdtemp(prefix="koko-observability-"))
    try:
        with ShardedKokoService(
            storage_dir=storage,
            trace_sample_rate=1.0,  # trace everything for the demo
            slow_query_ms=0.0,  # every op "slow": shows the entry shape
            slow_ingest_ms=0.0,
        ) as service:
            for doc_id, text in ARTICLES.items():
                service.add_document(text, doc_id)
            service.checkpoint()

            print("=== EXPLAIN ANALYZE (explain=True) " + "=" * 32)
            explained = service.query(CITY_QUERY, explain=True)
            print(explained.report())
            print(f"\n{len(explained)} tuples — identical to a plain query\n")

            print("=== slow-op log (newest first) " + "=" * 36)
            entry = service.recent_slow_ops(1)[0]
            entry.pop("trace", None)  # the span tree again, elided here
            print(json.dumps(entry, indent=2))

            print("\n=== metrics registry (Prometheus text, excerpt) " + "=" * 19)
            wanted = (
                "koko_queries_served_total",
                "koko_documents_added_total",
                "koko_wal_records_appended_total",
                "koko_wal_fsyncs_total",
                "koko_checkpoints_completed_total",
                "koko_last_checkpoint_unix",
                "koko_slow_ops_total",
                "koko_traces_sampled_total",
            )
            for line in service.metrics.render_text().splitlines():
                if line.startswith(wanted):
                    print(line)
            print(
                f"\n({len(service.metrics.names())} metrics registered; "
                "render_text() / render_json() expose them all)"
            )
    finally:
        shutil.rmtree(storage, ignore_errors=True)


if __name__ == "__main__":
    main()
