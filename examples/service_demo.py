"""KokoService demo: ingestion, caching, batching, sharding, durability.

Run with:  PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro import KokoService, ShardedKokoService

CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)
DELICIOUS_QUERY = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""


def main() -> None:
    service = KokoService()

    print("ingesting two documents...")
    service.add_document(
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.", "doc0"
    )
    service.add_document(
        "Anna ate some delicious cheesecake that she bought at a grocery store.", "doc1"
    )

    print("\nfirst query (cold, compiles the plan and fills the result cache):")
    for extraction in service.query(DELICIOUS_QUERY):
        print(f"  {extraction.doc_id}: e={extraction.value('e')!r}")

    service.query(DELICIOUS_QUERY)  # served from the result cache
    print(f"result-cache hits so far: {service.stats.result_cache_hits}")

    print("\ningesting a third document invalidates cached results...")
    service.add_document("cities in asian countries such as Beijing and Tokyo.", "s2")
    batch = service.query_batch([DELICIOUS_QUERY, CITY_QUERY])
    cities = ", ".join(sorted(t.value("a") for t in batch[1]))
    print(f"  delicious tuples: {len(batch[0])}   cities: {cities}")

    print("\nremoving that document un-indexes it:")
    service.remove_document("s2")
    print(f"  cities now: {[t.value('a') for t in service.query(CITY_QUERY)]}")

    print("\nservice stats:")
    for key, value in service.stats.snapshot().items():
        print(f"  {key}: {value:.6g}" if isinstance(value, float) else f"  {key}: {value}")

    print("\n--- sharded service (4 hash partitions) ---")
    with ShardedKokoService() as sharded:
        texts = [
            "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
            "Anna ate some delicious cheesecake that she bought at a grocery store.",
            "Paolo visited Beijing and ate a delicious croissant.",
            "cities in asian countries such as Beijing and Tokyo.",
        ]
        for index, text in enumerate(texts):
            document = sharded.add_document(text, f"doc{index}")
            print(f"  doc{index} -> shard {sharded.shard_of(document.doc_id)}")
        # a query fans out across every shard and merges deterministically
        merged = sharded.query(DELICIOUS_QUERY)
        print(f"  merged tuples (sid order): {[t.sid for t in merged]}")
        print("  per-shard breakdown:")
        for shard, row in sharded.stats.shard_breakdown().items():
            print(
                f"    shard {shard}: docs={row['documents_added']} "
                f"queries={row['queries']}"
            )

    print("\n--- durable service (snapshot + write-ahead log) ---")
    root = Path(tempfile.mkdtemp(prefix="koko-demo-"))
    try:
        with KokoService.open(root / "durable", shards=2) as durable:
            durable.add_document(
                "Maria ate a delicious pie in Tokyo.", "doc0"
            )
            durable.add_document(
                "The barista in Osaka served a delicious espresso.", "doc1"
            )
            live = [t.sid for t in durable.query(DELICIOUS_QUERY)]
            print(f"  live tuples: {live}")
        # the context manager flushed a final checkpoint on exit
        with KokoService.open(root / "durable") as warm:
            print(f"  reopened warm: {len(warm)} documents, "
                  f"recovery took {warm.stats.recovery_seconds * 1e3:.1f} ms, "
                  f"{warm.stats.replayed_wal_records} WAL records replayed")
            assert [t.sid for t in warm.query(DELICIOUS_QUERY)] == live
            print(f"  identical tuples after restart: {live}")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
