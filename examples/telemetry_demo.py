"""Telemetry-plane demo: HTTP endpoints on a primary + TCP replica pair.

Run with:  PYTHONPATH=src python examples/telemetry_demo.py

Builds the full monitored topology the operations guide describes and
exercises every telemetry endpoint over real HTTP:

1. a durable primary with a :class:`TelemetryServer` serving
   ``/metrics``, ``/healthz``, ``/readyz``, ``/stats``, ``/slowlog`` and
   ``/shards``;
2. a TCP log-shipped replica with its own telemetry server;
3. a :class:`ClusterTelemetry` scraper on the primary merging both
   nodes into ``/cluster`` and feeding the primary's readiness.

Every ``/metrics`` body is validated with the repo's exposition linter
(``scripts/check_prom.py``), so this demo doubles as the CI endpoint
smoke: it exits non-zero if any endpoint misbehaves or any exposition
fails the lint.
"""

from __future__ import annotations

import importlib.util
import shutil
import sys
import tempfile
from pathlib import Path

from repro.observability import ClusterTelemetry, TelemetryServer, http_get_json, scrape
from repro.replication import LogShipper, ReplicaService, connect_tcp
from repro.service import KokoService

CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

ARTICLES = {
    "paris": "Paris is a beautiful city with many museums.",
    "osaka": "The barista in Osaka served a delicious espresso.",
    "asia": "cities in asian countries such as Beijing and Tokyo.",
    "pie": "Maria ate a delicious pie in Tokyo.",
}

_CHECK_PROM = Path(__file__).resolve().parents[1] / "scripts" / "check_prom.py"


def _load_check_prom():
    """The exposition linter, loaded straight from ``scripts/``."""
    spec = importlib.util.spec_from_file_location("check_prom", _CHECK_PROM)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _lint(check_prom, name: str, body: bytes) -> int:
    """Lint one scraped exposition; returns the number of findings."""
    findings = check_prom.lint_exposition(body.decode("utf-8"))
    for finding in findings:
        print(f"  LINT {name}: {finding}")
    samples = check_prom.parse_samples(body.decode("utf-8"))
    print(f"  {name}: {len(body)} bytes, {len(samples)} samples, "
          f"{len(findings)} lint finding(s)")
    return len(findings)


def main() -> int:
    """Build the monitored pair, hit every endpoint, lint every scrape."""
    check_prom = _load_check_prom()
    storage = Path(tempfile.mkdtemp(prefix="koko-telemetry-"))
    failures = 0
    try:
        with KokoService(shards=2, storage_dir=storage / "primary") as primary:
            for doc_id, text in ARTICLES.items():
                primary.add_document(text, doc_id)
            primary.query(CITY_QUERY)

            shipper = LogShipper(primary, heartbeat_interval=0.05)
            host, port = shipper.listen()
            replica = ReplicaService(connect_tcp(host, port), name="replica-1")
            assert replica.wait_caught_up(primary.wal_position(), timeout=60)

            with TelemetryServer(replica, name="replica-1") as replica_telemetry:
                cluster = ClusterTelemetry(
                    primary=primary, shipper=shipper, max_lag_bytes=64 * 1024
                )
                cluster.add_peer("replica-1", *replica_telemetry.address)
                with TelemetryServer(
                    primary, name="primary", cluster=cluster
                ) as primary_telemetry:
                    cluster.scrape_once()

                    print("=== /metrics on both nodes, linted " + "=" * 32)
                    for name, server in (
                        ("primary", primary_telemetry),
                        ("replica-1", replica_telemetry),
                    ):
                        status, body = scrape(*server.address, "/metrics")
                        assert status == 200, (name, status)
                        failures += _lint(check_prom, name, body)

                    print("\n=== health probes " + "=" * 49)
                    for name, server in (
                        ("primary", primary_telemetry),
                        ("replica-1", replica_telemetry),
                    ):
                        for path in ("/healthz", "/readyz"):
                            status, document = http_get_json(*server.address, path)
                            checks = document["checks"]
                            print(f"  {name} {path}: {status} {checks}")
                            if status != 200:
                                failures += 1

                    print("\n=== primary /cluster " + "=" * 46)
                    status, document = http_get_json(
                        *primary_telemetry.address, "/cluster"
                    )
                    assert status == 200
                    (node,) = document["nodes"]
                    print(
                        f"  ready={document['ready']} "
                        f"replica lag_bytes={node['lag_bytes']} "
                        f"applied={node['applied_position']}"
                    )
                    if not document["ready"] or node["lag_bytes"] != 0:
                        failures += 1

                    print("\n=== /stats, /slowlog, /shards " + "=" * 37)
                    status, stats = http_get_json(*primary_telemetry.address, "/stats")
                    assert status == 200
                    print(
                        f"  /stats: node={stats['node']} "
                        f"p50={stats['query_latency_percentiles']['p50']:.6f}s"
                    )
                    status, slowlog = http_get_json(
                        *primary_telemetry.address, "/slowlog?limit=3"
                    )
                    assert status == 200
                    print(f"  /slowlog: {len(slowlog)} entries")
                    status, heat = http_get_json(*primary_telemetry.address, "/shards")
                    assert status == 200
                    print(
                        f"  /shards: hottest={heat['hottest_shard']} "
                        f"of {len(heat['shards'])} shards"
                    )
                    if heat["hottest_shard"] is None:
                        failures += 1
                cluster.close()
            replica.close()
            shipper.close()
    finally:
        shutil.rmtree(storage, ignore_errors=True)
    if failures:
        print(f"\nFAIL: {failures} telemetry problem(s)", file=sys.stderr)
        return 1
    print("\nAll endpoints healthy, every exposition lint-clean.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
