"""Cafe-name extraction with evidence aggregation (the Section 6.1 workload).

Generates a BARISTAMAG-like blog corpus, runs the Appendix-A-style cafe
query, and compares KOKO against the IKE-style baseline.

Run with:  python examples/cafe_extraction.py
"""

from __future__ import annotations

from repro.baselines.ike import IkeExtractor
from repro.corpora.cafe_blogs import BARISTAMAG, generate_cafe_corpus
from repro.evaluation.metrics import extraction_scores
from repro.evaluation.queries import CAFE_IKE_PATTERNS, CAFE_QUERY
from repro.koko.engine import KokoEngine


def main() -> None:
    corpus = generate_cafe_corpus(BARISTAMAG, articles=25)
    gold = corpus.gold["cafe"]
    print(f"Generated {len(corpus)} cafe blog articles, {sum(len(v) for v in gold.values())} gold cafes")

    engine = KokoEngine(corpus)
    koko_result = engine.execute(CAFE_QUERY)
    koko_predicted = koko_result.values_by_document("x")
    koko_scores = extraction_scores(koko_predicted, gold)

    ike_predicted = IkeExtractor(CAFE_IKE_PATTERNS).extract_all(corpus)
    ike_scores = extraction_scores(ike_predicted, gold)

    print("\nsystem   precision  recall  F1")
    for name, scores in (("KOKO", koko_scores), ("IKE", ike_scores)):
        print(f"{name:8s} {scores.precision:9.3f} {scores.recall:7.3f} {scores.f1:5.3f}")

    print("\nSample KOKO extractions (with aggregated evidence scores):")
    shown = 0
    for extraction in koko_result:
        print(f"  {extraction.doc_id}: {extraction.value('x')!r}  score={extraction.score('x'):.2f}")
        shown += 1
        if shown >= 8:
            break


if __name__ == "__main__":
    main()
