"""Tests for the metrics and small smoke runs of every experiment module."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import extraction_scores, f1_from, index_effectiveness
from repro.evaluation.reporting import format_series, format_table


class TestMetrics:
    def test_perfect_extraction(self):
        gold = {"d1": {"Alpha Cafe"}, "d2": {"Beta Cafe"}}
        score = extraction_scores(gold, gold)
        assert score.precision == score.recall == score.f1 == 1.0

    def test_partial_extraction(self):
        predicted = {"d1": {"Alpha Cafe", "Noise"}, "d2": set()}
        gold = {"d1": {"Alpha Cafe"}, "d2": {"Beta Cafe"}}
        score = extraction_scores(predicted, gold)
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_case_and_whitespace_insensitive(self):
        predicted = {"d1": {"alpha  cafe"}}
        gold = {"d1": {"Alpha Cafe"}}
        assert extraction_scores(predicted, gold).f1 == 1.0

    def test_loose_suffix_match(self):
        predicted = {"d1": {"Blue Bottle"}}
        gold = {"d1": {"Blue Bottle Coffee"}}
        assert extraction_scores(predicted, gold).recall == 1.0

    def test_empty_predictions(self):
        score = extraction_scores({}, {"d1": {"x"}})
        assert score.precision == 0.0 and score.recall == 0.0 and score.f1 == 0.0

    def test_index_effectiveness(self):
        assert index_effectiveness({1, 2, 3, 4}, {1, 2}) == 0.5
        assert index_effectiveness(set(), {1}) == 1.0
        assert index_effectiveness({1}, {1}) == 1.0

    def test_f1_from(self):
        assert f1_from(0.5, 0.5) == 0.5
        assert f1_from(0.0, 0.0) == 0.0

    def test_format_table(self):
        table = format_table(["a", "b"], [(1, 0.5), (2, 0.25)], title="t")
        assert "t" in table and "0.500" in table

    def test_format_series(self):
        assert format_series("KOKO", [1, 2], [0.1, 0.2]).startswith("KOKO:")


@pytest.mark.slow
class TestExperimentSmokeRuns:
    """Tiny-configuration runs of every figure/table module, checking shape."""

    def test_fig3_koko_beats_baselines(self):
        from repro.evaluation.experiments import fig3_cafes

        result = fig3_cafes.run(
            baristamag_articles=10, sprudge_articles=10, include_crf=False
        )
        for corpus_name in ("baristamag", "sprudge"):
            assert result.best_f1(corpus_name, "KOKO") > result.best_f1(corpus_name, "IKE")
        assert fig3_cafes.format_result(result)

    def test_fig4_runs_and_formats(self):
        from repro.evaluation.experiments import fig4_wnut

        result = fig4_wnut.run(tweets=60, include_crf=False)
        assert result.best_f1("team", "KOKO") > 0
        assert result.best_f1("facility", "KOKO") > 0
        assert fig4_wnut.format_result(result)

    def test_fig5_descriptors_help_short_articles(self):
        from repro.evaluation.experiments import fig5_descriptors

        result = fig5_descriptors.run(baristamag_articles=12, sprudge_articles=12)
        assert result.f1_gain("baristamag") >= result.f1_gain("sprudge") - 0.02
        assert fig5_descriptors.format_result(result)

    def test_fig6_size_and_time_shape(self):
        from repro.evaluation.experiments import fig6_index_construction

        result = fig6_index_construction.run(article_counts=(20, 40))
        sizes = result.sizes_at(40)
        assert sizes["KOKO"] < sizes["INVERTED"] < sizes["ADVINVERTED"] < sizes["SUBTREE"]
        assert len(result.series("KOKO", "size")) == 2
        assert fig6_index_construction.format_result(result)

    def test_fig7_effectiveness_shape(self, happy_corpus):
        from repro.evaluation.experiments import index_performance

        result = index_performance.run(happy_corpus, queries_per_setting=1)
        assert result.mean_effectiveness("KOKO") >= 0.95
        assert result.mean_effectiveness("INVERTED") < result.mean_effectiveness("KOKO")
        assert index_performance.format_result(result)

    def test_table1_gsp_speedup(self):
        from repro.evaluation.experiments import table1_gsp

        result = table1_gsp.run(
            happydb_moments=30,
            wikipedia_articles=15,
            queries_per_setting=2,
            max_sentences_per_query=4,
        )
        assert result.speedup("HappyDB", 5) > 2.0
        assert result.speedup("Wikipedia", 5) > 2.0
        assert table1_gsp.format_result(result)

    def test_table2_selectivity_ordering(self):
        from repro.evaluation.experiments import table2_scaleup

        result = table2_scaleup.run(article_counts=(60,))
        by_query = {row.query: row for row in result.rows}
        assert by_query["Chocolate"].selectivity <= by_query["Title"].selectivity
        assert by_query["Title"].selectivity < by_query["DateOfBirth"].selectivity
        assert table2_scaleup.format_result(result)

    def test_nell_low_recall(self):
        from repro.evaluation.experiments import nell_comparison

        result = nell_comparison.run(baristamag_articles=20, sprudge_articles=25)
        for score in result.scores.values():
            assert score.recall < 0.6
        assert nell_comparison.format_result(result)

    def test_odin_slower_than_koko(self):
        from repro.evaluation.experiments import odin_comparison

        result = odin_comparison.run(articles=40)
        assert all(row.slowdown > 1.0 for row in result.rows)
        assert odin_comparison.format_result(result)
