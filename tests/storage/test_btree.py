"""Tests for the B-tree, including property-based invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree


class TestBasicOperations:
    def test_insert_and_get(self):
        tree = BTree(order=4)
        tree.insert("cafe", 1)
        assert tree.get("cafe") == [1]

    def test_duplicate_keys_accumulate(self):
        tree = BTree(order=4)
        tree.insert("cafe", 1)
        tree.insert("cafe", 2)
        assert sorted(tree.get("cafe")) == [1, 2]

    def test_missing_key_empty(self):
        assert BTree().get("nothing") == []

    def test_contains(self):
        tree = BTree()
        tree.insert(5, "x")
        assert 5 in tree
        assert 6 not in tree

    def test_len_counts_pairs(self):
        tree = BTree(order=4)
        for i in range(20):
            tree.insert(i % 5, i)
        assert len(tree) == 20
        assert tree.key_count == 5

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTree(order=2)

    def test_range_scan(self):
        tree = BTree(order=4)
        for i in range(50):
            tree.insert(i, i * 10)
        values = [v for _, v in tree.range(10, 15)]
        assert values == [100, 110, 120, 130, 140, 150]

    def test_range_open_ended(self):
        tree = BTree(order=4)
        for i in range(10):
            tree.insert(i, i)
        assert len(list(tree.range())) == 10
        assert [k for k, _ in tree.range(low=7)] == [7, 8, 9]

    def test_prefix_scan_on_tuple_keys(self):
        tree = BTree(order=4)
        tree.insert(("cafe", 1), "a")
        tree.insert(("cafe", 2), "b")
        tree.insert(("bar", 1), "c")
        values = [v for _, v in tree.prefix(("cafe",))]
        assert sorted(values) == ["a", "b"]

    def test_keys_sorted_distinct(self):
        tree = BTree(order=4)
        for value in [5, 3, 9, 3, 1, 9]:
            tree.insert(value, value)
        assert list(tree.keys()) == [1, 3, 5, 9]

    def test_approximate_bytes_positive(self):
        tree = BTree()
        tree.insert("word", (1, 2, 3))
        assert tree.approximate_bytes() > 0


class TestPropertyBased:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_semantics(self, keys):
        tree = BTree(order=6)
        reference: dict[int, list[int]] = {}
        for position, key in enumerate(keys):
            tree.insert(key, position)
            reference.setdefault(key, []).append(position)
        for key, values in reference.items():
            assert sorted(tree.get(key)) == sorted(values)
        assert len(tree) == len(keys)
        assert tree.key_count == len(reference)

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_range_returns_keys_in_order(self, keys):
        tree = BTree(order=5)
        for key in keys:
            tree.insert(key, key)
        scanned = [k for k, _ in tree.range()]
        assert scanned == sorted(scanned)
        assert len(scanned) == len(keys)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_bounds_respected(self, keys, low, high):
        if low > high:
            low, high = high, low
        tree = BTree(order=8)
        for key in keys:
            tree.insert(key, key)
        for key, _ in tree.range(low, high):
            assert low <= key <= high
        expected = sorted(k for k in keys if low <= k <= high)
        assert sorted(k for k, _ in tree.range(low, high)) == expected
