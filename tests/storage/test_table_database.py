"""Tests for tables, the database container, and closure tables."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.closure import ClosureTable
from repro.storage.database import Database
from repro.storage.table import Schema, Table


@pytest.fixture
def word_table() -> Table:
    table = Table("W", Schema.of("word", "x", "y"))
    table.insert(("ate", 0, 1))
    table.insert(("ate", 1, 1))
    table.insert(("delicious", 0, 9))
    return table


class TestSchema:
    def test_names_and_index(self):
        schema = Schema.of("a", "b", "c")
        assert schema.names == ["a", "b", "c"]
        assert schema.index_of("b") == 1

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            Schema.of("a").index_of("zzz")

    def test_arity_validation(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "b").validate(("only-one",))

    def test_type_validation(self):
        schema = Schema.of("n", types={"n": int})
        schema.validate((3,))
        with pytest.raises(SchemaError):
            schema.validate(("not-an-int",))


class TestTable:
    def test_insert_and_len(self, word_table):
        assert len(word_table) == 3

    def test_select_equality(self, word_table):
        rows = word_table.select(word="ate")
        assert len(rows) == 2

    def test_select_with_index(self, word_table):
        word_table.create_index("by_word", "word")
        assert len(word_table.select(word="ate")) == 2
        assert word_table.select(word="missing") == []

    def test_select_multi_column(self, word_table):
        rows = word_table.select(word="ate", x=1)
        assert rows == [("ate", 1, 1)]

    def test_select_range(self, word_table):
        rows = word_table.select_range("y", low=2)
        assert rows == [("delicious", 0, 9)]

    def test_select_where(self, word_table):
        rows = word_table.select_where(lambda r: r[2] > 1)
        assert len(rows) == 1

    def test_distinct(self, word_table):
        assert word_table.distinct("word") == {"ate", "delicious"}

    def test_duplicate_index_rejected(self, word_table):
        word_table.create_index("by_word", "word")
        with pytest.raises(StorageError):
            word_table.create_index("by_word", "word")

    def test_composite_index(self, word_table):
        word_table.create_index("by_word_x", ["word", "x"])
        assert word_table.select(word="ate", x=0) == [("ate", 0, 1)]

    def test_row_by_id(self, word_table):
        assert word_table.row(0) == ("ate", 0, 1)

    def test_column_projection(self, word_table):
        assert word_table.column("word") == ["ate", "ate", "delicious"]

    def test_approximate_bytes_grows(self, word_table):
        before = word_table.approximate_bytes()
        word_table.insert(("extra", 5, 5))
        assert word_table.approximate_bytes() > before


class TestDatabase:
    def test_create_and_fetch(self):
        db = Database("test")
        table = db.create_table("W", Schema.of("word", "x"))
        assert db.table("W") is table
        assert "W" in db

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("W", Schema.of("a"))
        with pytest.raises(StorageError):
            db.create_table("W", Schema.of("a"))

    def test_missing_table(self):
        with pytest.raises(StorageError):
            Database().table("missing")

    def test_drop_table(self):
        db = Database()
        db.create_table("W", Schema.of("a"))
        db.drop_table("W")
        assert "W" not in db

    def test_summary_and_size(self):
        db = Database()
        table = db.create_table("W", Schema.of("a"))
        table.insert(("x",))
        summary = db.summary()
        assert summary["W"]["rows"] == 1
        assert db.approximate_bytes() > 0

    def test_save_and_load_roundtrip(self, tmp_path):
        db = Database("persisted")
        table = db.create_table("W", Schema.of("word", "x"))
        table.insert(("ate", 0))
        path = tmp_path / "db.pkl"
        db.save(path)
        loaded = Database.load(path)
        assert loaded.table("W").select(word="ate") == [("ate", 0)]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            Database.load(tmp_path / "nope.pkl")


class TestClosureTable:
    def _small_tree(self) -> ClosureTable:
        closure = ClosureTable()
        closure.add_node(0, "root", None)
        closure.add_node(1, "nsubj", 0)
        closure.add_node(2, "dobj", 0)
        closure.add_node(3, "det", 2)
        return closure

    def test_depths(self):
        closure = self._small_tree()
        assert closure.depth(0) == 0
        assert closure.depth(3) == 2

    def test_ancestors_and_path(self):
        closure = self._small_tree()
        assert closure.ancestors(3) == [0, 2, 3]
        assert closure.path_labels(3) == ["root", "dobj", "det"]

    def test_is_ancestor(self):
        closure = self._small_tree()
        assert closure.is_ancestor(0, 3)
        assert closure.is_ancestor(2, 3)
        assert not closure.is_ancestor(1, 3)
        assert not closure.is_ancestor(3, 3)

    def test_rows_count(self):
        closure = self._small_tree()
        # reflexive + ancestor pairs: 1 + 2 + 2 + 3
        assert len(closure.rows()) == 8

    def test_duplicate_node_rejected(self):
        closure = self._small_tree()
        with pytest.raises(ValueError):
            closure.add_node(1, "x", 0)

    def test_unknown_parent_rejected(self):
        closure = ClosureTable()
        with pytest.raises(ValueError):
            closure.add_node(1, "x", 99)

    def test_materialisation(self):
        closure = self._small_tree()
        db = Database()
        table = closure.to_table(db, "PL")
        assert len(table) == 8
        assert table.has_index("by_label")
        dobj_rows = table.select(label="det")
        assert len(dobj_rows) == 3
