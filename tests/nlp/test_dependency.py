"""Tests for the rule-based dependency parser."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.dependency import DependencyParser
from repro.nlp.pipeline import Pipeline
from repro.nlp.pos import PosTagger
from repro.nlp.tokenizer import tokenize_words


def parse(sentence: str):
    words = tokenize_words(sentence)
    tags = PosTagger().tag(words)
    heads, labels = DependencyParser().parse(words, tags)
    return words, tags, heads, labels


class TestPaperExampleTree:
    """The Figure 1 sentence should reproduce the paper's key arcs."""

    def test_root_is_first_ate(self, paper_sentence_1):
        root = paper_sentence_1.root_index()
        assert paper_sentence_1[root].text == "ate"
        assert root == 1

    def test_subject(self, paper_sentence_1):
        token = paper_sentence_1[0]
        assert token.label == "nsubj"
        assert token.head == 1

    def test_direct_object_is_cream(self, paper_sentence_1):
        cream = next(t for t in paper_sentence_1 if t.text == "cream")
        assert cream.label == "dobj"
        assert cream.head == 1

    def test_noun_compound(self, paper_sentence_1):
        ice = next(t for t in paper_sentence_1 if t.text == "ice")
        assert ice.label == "nn"
        assert paper_sentence_1[ice.head].text == "cream"

    def test_relative_clause_under_cream(self, paper_sentence_1):
        was = next(t for t in paper_sentence_1 if t.text == "was")
        assert was.label == "rcmod"
        assert paper_sentence_1[was.head].text == "cream"

    def test_delicious_in_subtree_of_cream(self, paper_sentence_1):
        cream = next(t for t in paper_sentence_1 if t.text == "cream")
        delicious = next(t for t in paper_sentence_1 if t.text == "delicious")
        assert paper_sentence_1.is_ancestor(cream.index, delicious.index)

    def test_subtree_span_of_cream_matches_paper(self, paper_sentence_1):
        # Example 2.1: d = "a chocolate ice cream, which was delicious"
        cream = next(t for t in paper_sentence_1 if t.text == "cream")
        first, last = paper_sentence_1.subtree_span(cream.index)
        assert (first, last) == (2, 9)

    def test_second_sentence_matches_example_3_1(self, paper_sentence_2):
        # "Anna ate some delicious cheesecake that she bought at a grocery store."
        assert paper_sentence_2[1].text == "ate"
        assert paper_sentence_2[1].label == "root"
        cheesecake = next(t for t in paper_sentence_2 if t.text == "cheesecake")
        assert cheesecake.label == "dobj"
        bought = next(t for t in paper_sentence_2 if t.text == "bought")
        assert bought.label == "rcmod"
        assert paper_sentence_2[bought.head].text == "cheesecake"


class TestStructuralInvariants:
    SENTENCES = [
        "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
        "Anna ate some delicious cheesecake that she bought at a grocery store.",
        "Blue Bottle Coffee serves great espresso and employs talented baristas.",
        "He was married to Alys Thomas on 1 December 1900 in London.",
        "Cyd Charisse had been called Sid for years.",
        "Baking chocolate is a type of chocolate that is prepared for baking.",
        "Go Tigers!",
        "coffee",
    ]

    def test_exactly_one_root(self):
        for sentence in self.SENTENCES:
            _, _, heads, labels = parse(sentence)
            roots = [i for i, h in enumerate(heads) if h == -1]
            assert len(roots) == 1, sentence
            assert labels[roots[0]] == "root"

    def test_heads_in_range(self):
        for sentence in self.SENTENCES:
            words, _, heads, _ = parse(sentence)
            for i, head in enumerate(heads):
                assert -1 <= head < len(words)
                assert head != i

    def test_no_cycles(self):
        for sentence in self.SENTENCES:
            words, _, heads, _ = parse(sentence)
            for start in range(len(words)):
                seen = set()
                node = start
                while heads[node] != -1:
                    assert node not in seen, f"cycle in {sentence!r}"
                    seen.add(node)
                    node = heads[node]

    def test_empty_sentence(self):
        parser = DependencyParser()
        assert parser.parse([], []) == ([], [])

    def test_single_token(self):
        heads, labels = DependencyParser().parse(["coffee"], ["NOUN"])
        assert heads == [-1]
        assert labels == ["root"]

    def test_prepositional_object(self):
        words, _, heads, labels = parse("Anna bought cake at a grocery store.")
        store = words.index("store")
        at = words.index("at")
        assert labels[store] == "pobj"
        assert heads[store] == at

    def test_determiner_attaches_to_noun(self):
        words, _, heads, labels = parse("the old dog slept")
        assert labels[0] == "det"
        assert words[heads[0]] == "dog"

    @given(
        st.lists(
            st.sampled_from(
                ["the", "a", "dog", "cafe", "ate", "slept", "delicious", "in", "Portland", "and", ","]
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_word_sequences_give_wellformed_trees(self, words):
        tags = PosTagger().tag(list(words))
        heads, labels = DependencyParser().parse(list(words), tags)
        assert len(heads) == len(words) == len(labels)
        roots = [i for i, h in enumerate(heads) if h == -1]
        assert len(roots) == 1
        # every token reaches the root without cycling
        for start in range(len(words)):
            node, hops = start, 0
            while heads[node] != -1:
                node = heads[node]
                hops += 1
                assert hops <= len(words)


class TestPipelineTreeHelpers:
    def test_subtree_indices_contiguous(self, paper_sentence_1):
        for token in paper_sentence_1:
            first, last = paper_sentence_1.subtree_span(token.index)
            assert first <= token.index <= last

    def test_depth_of_root_is_zero(self, paper_sentence_1):
        assert paper_sentence_1.depth(paper_sentence_1.root_index()) == 0

    def test_children_inverse_of_head(self, paper_sentence_1):
        for token in paper_sentence_1:
            if not token.is_root:
                assert token.index in paper_sentence_1.children(token.head)

    def test_pipeline_annotates_multiple_sentences(self):
        doc = Pipeline().annotate("I ate a pie. Anna ate a cake.", doc_id="d")
        assert len(doc) == 2
        assert doc[0].sid == 0 and doc[1].sid == 1
