"""Tests for clause segmentation, lemmatisation, and the data model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.clauses import ClauseSegmenter
from repro.nlp.lemmatizer import Lemmatizer
from repro.nlp.pipeline import Pipeline
from repro.nlp.types import EntityMention, Span, Token, detokenize


class TestClauseSegmenter:
    def test_single_clause_sentence(self, pipeline):
        sentence = pipeline.annotate_sentence("Anna ate a cake.")
        clauses = ClauseSegmenter().segment(sentence)
        assert len(clauses) == 1
        assert clauses[0].weight == 1.0

    def test_coordinated_clauses_split(self, paper_sentence_1):
        clauses = ClauseSegmenter().segment(paper_sentence_1)
        assert len(clauses) >= 2
        texts = " | ".join(c.text for c in clauses)
        assert "pie" in texts

    def test_relative_clause_split(self, paper_sentence_2):
        clauses = ClauseSegmenter().segment(paper_sentence_2)
        assert len(clauses) >= 2

    def test_subordinate_clause_weight_lower(self, paper_sentence_1):
        segmenter = ClauseSegmenter(main_weight=1.0, subordinate_weight=0.8)
        clauses = segmenter.segment(paper_sentence_1)
        weights = {c.weight for c in clauses}
        assert 1.0 in weights
        assert any(w < 1.0 for w in weights) or len(clauses) == 1

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError):
            ClauseSegmenter(main_weight=0.5, subordinate_weight=0.9)

    def test_empty_sentence(self, pipeline):
        sentence = pipeline.annotate_sentence("")
        assert ClauseSegmenter().segment(sentence) == []

    def test_clause_ranges_within_sentence(self, paper_sentence_1):
        for clause in ClauseSegmenter().segment(paper_sentence_1):
            assert 0 <= clause.start <= clause.end < len(paper_sentence_1)


class TestLemmatizer:
    @pytest.mark.parametrize(
        "word,pos,lemma",
        [
            ("ate", "VERB", "eat"),
            ("serves", "VERB", "serve"),
            ("baristas", "NOUN", "barista"),
            ("cities", "NOUN", "city"),
            ("was", "VERB", "be"),
            ("bought", "VERB", "buy"),
            ("running", "VERB", "run"),
            ("opened", "VERB", "open"),
            ("coffee", "NOUN", "coffee"),
            ("best", None, "best"),
        ],
    )
    def test_lemmas(self, word, pos, lemma):
        assert Lemmatizer().lemma(word, pos) == lemma

    def test_lowercases(self):
        assert Lemmatizer().lemma("Serves", "VERB") == "serve"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_lemma_never_empty_and_lowercase(self, word):
        lemma = Lemmatizer().lemma(word)
        assert lemma
        assert lemma == lemma.lower()


class TestDataModel:
    def test_detokenize_spacing(self):
        assert detokenize(["I", "ate", ",", "then", "slept", "."]) == "I ate, then slept."

    def test_span_contains(self):
        outer = Span(sid=0, start=2, end=9)
        inner = Span(sid=0, start=3, end=5)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_span_precedes(self):
        a = Span(sid=0, start=0, end=1)
        b = Span(sid=0, start=2, end=3)
        assert a.precedes(b)
        assert a.immediately_precedes(b)

    def test_span_invalid(self):
        with pytest.raises(ValueError):
            Span(sid=0, start=5, end=2)

    def test_entity_mention_invalid(self):
        with pytest.raises(ValueError):
            EntityMention(start=4, end=2, etype="OTHER")

    def test_token_matches_label(self):
        token = Token(index=0, text="ate", pos="VERB", label="root", head=-1)
        assert token.matches_label("verb")
        assert token.matches_label("root")
        assert token.matches_label("ATE")
        assert not token.matches_label("noun")

    def test_document_helpers(self, paper_corpus):
        doc = paper_corpus.documents[1]
        assert doc.num_tokens == len(doc[0])
        assert doc.sentence_by_sid(doc[0].sid) is doc[0]
        with pytest.raises(KeyError):
            doc.sentence_by_sid(9999)

    def test_corpus_iteration(self, paper_corpus):
        pairs = list(paper_corpus.all_sentences())
        assert len(pairs) == paper_corpus.num_sentences
        assert paper_corpus.num_tokens > 0

    def test_corpus_gold_default_empty(self, paper_corpus):
        assert paper_corpus.gold_for("cafe", "doc0") == set()

    def test_pipeline_corpus_unique_sids(self, pipeline):
        corpus = pipeline.annotate_corpus(["One sentence. Two sentences.", "Another doc."])
        sids = [s.sid for _, s in corpus.all_sentences()]
        assert len(sids) == len(set(sids))
        assert sids == sorted(sids)
