"""Tests for sentence splitting and word tokenisation."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.tokenizer import Tokenizer, split_sentences, tokenize_words


class TestWordTokenization:
    def test_simple_sentence(self):
        assert tokenize_words("I ate a pie.") == ["I", "ate", "a", "pie", "."]

    def test_punctuation_is_separate(self):
        tokens = tokenize_words("cream, which was delicious,")
        assert tokens == ["cream", ",", "which", "was", "delicious", ","]

    def test_hyphenated_word_stays_together(self):
        assert "pour-over" in tokenize_words("They love pour-over coffee.")

    def test_contractions_stay_together(self):
        assert tokenize_words("don't stop") == ["don't", "stop"]

    def test_numbers(self):
        assert tokenize_words("born in 1911") == ["born", "in", "1911"]

    def test_decimal_number_single_token(self):
        assert "3.5" in tokenize_words("a 3.5 star rating")

    def test_twitter_handles_and_hashtags(self):
        tokens = tokenize_words("@koko loves #coffee")
        assert "@koko" in tokens
        assert "#coffee" in tokens

    def test_empty_string(self):
        assert tokenize_words("") == []

    @given(st.text(alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Zs", "Po")), max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_tokens_never_contain_whitespace(self, text):
        for token in tokenize_words(text):
            assert not any(ch.isspace() for ch in token)

    @given(st.lists(st.sampled_from(["cafe", "espresso", "Anna", "ate", "1900"]), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_word_sequence_roundtrip(self, words):
        text = " ".join(words)
        assert tokenize_words(text) == words


class TestSentenceSplitting:
    def test_two_sentences(self):
        sentences = split_sentences("I ate a pie. Anna ate a cake.")
        assert len(sentences) == 2
        assert sentences[0].endswith("pie.")

    def test_abbreviation_does_not_split(self):
        sentences = split_sentences("Dr. Smith opened a cafe. It serves coffee.")
        assert len(sentences) == 2

    def test_decimal_point_does_not_split(self):
        sentences = split_sentences("The rating was 4.5 stars. Everyone agreed.")
        assert len(sentences) == 2

    def test_question_and_exclamation(self):
        sentences = split_sentences("Go Tigers! Did you see the game? Yes.")
        assert len(sentences) == 3

    def test_blank_line_splits(self):
        sentences = split_sentences("first paragraph here\n\nsecond paragraph here")
        assert len(sentences) == 2

    def test_lowercase_after_period_not_split(self):
        # "p.m. today" should not split mid-abbreviation
        sentences = split_sentences("Meet me at 7 p.m. today. Bring coffee.")
        assert len(sentences) == 2

    def test_empty_text(self):
        assert split_sentences("") == []

    def test_terminator_kept(self):
        sentences = split_sentences("It was great!")
        assert sentences == ["It was great!"]


class TestTokenizerObject:
    def test_tokenize_document(self):
        tokenizer = Tokenizer()
        result = tokenizer.tokenize_document("I ate. Anna slept.")
        assert len(result) == 2
        assert result[0][0] == "I"

    def test_split_then_tokenize_consistent(self):
        tokenizer = Tokenizer()
        text = "I ate a pie. Anna ate a cake."
        sentences = tokenizer.split_sentences(text)
        tokens = [tokenizer.tokenize(s) for s in sentences]
        assert tokens == tokenizer.tokenize_document(text)
