"""Tests for the entity recogniser."""

from __future__ import annotations

from repro.nlp.ner import EntityRecognizer
from repro.nlp.pipeline import Pipeline
from repro.nlp.pos import PosTagger
from repro.nlp.tokenizer import tokenize_words


def recognize(sentence: str, recognizer: EntityRecognizer | None = None):
    words = tokenize_words(sentence)
    tags = PosTagger().tag(words)
    return words, (recognizer or EntityRecognizer()).recognize(words, tags)


class TestCapitalizedSpans:
    def test_person_two_words(self):
        _, mentions = recognize("Anna Smith opened a shop.")
        texts = {(m.text, m.etype) for m in mentions}
        assert ("Anna Smith", "PERSON") in texts

    def test_gpe(self):
        _, mentions = recognize("She moved to London last year.")
        assert any(m.text == "London" and m.etype == "GPE" for m in mentions)

    def test_multiword_organization(self):
        _, mentions = recognize("Blue Bottle Coffee opened downtown.")
        assert any(
            m.text == "Blue Bottle Coffee" and m.etype == "ORGANIZATION"
            for m in mentions
        )

    def test_coordination_not_merged(self):
        _, mentions = recognize("cities in asian countries such as China and Japan.")
        texts = [m.text for m in mentions]
        assert "China" in texts
        assert "Japan" in texts
        assert "China and Japan" not in texts

    def test_team_head_noun(self):
        _, mentions = recognize("Huge win for the Portland Tigers yesterday.")
        assert any(m.etype == "TEAM" for m in mentions)

    def test_facility_head_noun(self):
        _, mentions = recognize("We met at Riverside Stadium before the match.")
        assert any(m.etype == "FACILITY" for m in mentions)

    def test_sentence_initial_common_word_not_entity(self):
        _, mentions = recognize("The cake was great.")
        assert all(m.text != "The" for m in mentions)

    def test_extra_gazetteer(self):
        recognizer = EntityRecognizer({"ORGANIZATION": {"velvet fox collective"}})
        _, mentions = recognize("Velvet Fox Collective serves coffee.", recognizer)
        assert any(
            m.text == "Velvet Fox Collective" and m.etype == "ORGANIZATION"
            for m in mentions
        )


class TestDatesAndNounChunks:
    def test_full_date(self):
        _, mentions = recognize("He was born on 1 December 1900 in London.")
        assert any(m.etype == "DATE" and "1900" in m.text for m in mentions)

    def test_bare_year(self):
        _, mentions = recognize("The cafe opened in 1911 near the river.")
        assert any(m.etype == "DATE" and m.text == "1911" for m in mentions)

    def test_common_noun_chunk_is_other_entity(self):
        _, mentions = recognize("I ate a chocolate ice cream after lunch.")
        assert any(m.text == "chocolate ice cream" and m.etype == "OTHER" for m in mentions)

    def test_chunks_do_not_overlap_named_entities(self):
        _, mentions = recognize("Anna Smith bought a grocery store in Portland.")
        spans = [(m.start, m.end) for m in mentions]
        for i, a in enumerate(spans):
            for b in spans[i + 1 :]:
                assert a[1] < b[0] or b[1] < a[0], f"overlap {a} {b}"

    def test_mentions_sorted_by_start(self):
        _, mentions = recognize("Anna Smith ate cheesecake in Portland in 1999.")
        starts = [m.start for m in mentions]
        assert starts == sorted(starts)


class TestEntityTypesOnTokens:
    def test_pipeline_sets_token_entity_type(self):
        doc = Pipeline().annotate("Anna visited London.", doc_id="d")
        sentence = doc[0]
        anna = next(t for t in sentence if t.text == "Anna")
        assert anna.entity_type == "PERSON"

    def test_entity_at_lookup(self):
        doc = Pipeline().annotate("Anna visited London.", doc_id="d")
        sentence = doc[0]
        mention = sentence.entity_at(0)
        assert mention is not None and mention.text == "Anna"
