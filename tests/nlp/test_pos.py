"""Tests for the rule-based POS tagger."""

from __future__ import annotations

from repro.nlp.pos import PosTagger
from repro.nlp.tokenizer import tokenize_words
from repro.nlp.types import UNIVERSAL_POS_TAGS


def tag(sentence: str) -> list[tuple[str, str]]:
    words = tokenize_words(sentence)
    tags = PosTagger().tag(words)
    return list(zip(words, tags))


class TestClosedClasses:
    def test_determiners(self):
        tags = dict(tag("the cake and a pie"))
        assert tags["the"] == "DET"
        assert tags["a"] == "DET"

    def test_pronouns(self):
        tags = dict(tag("I saw her yesterday"))
        assert tags["I"] == "PRON"
        assert tags["her"] == "DET" or tags["her"] == "PRON"

    def test_adpositions(self):
        tags = dict(tag("at the store in town"))
        assert tags["at"] == "ADP"
        assert tags["in"] == "ADP"

    def test_conjunction(self):
        tags = dict(tag("cream and pie"))
        assert tags["and"] == "CONJ"

    def test_punctuation(self):
        tags = dict(tag("delicious , really ."))
        assert tags[","] == "PUNCT"
        assert tags["."] == "PUNCT"

    def test_numbers(self):
        tags = dict(tag("born in 1911"))
        assert tags["1911"] == "NUM"


class TestOpenClasses:
    def test_paper_sentence_tags(self):
        tags = dict(tag("I ate a chocolate ice cream"))
        assert tags["ate"] == "VERB"
        assert tags["cream"] == "NOUN"
        assert tags["ice"] == "NOUN"

    def test_delicious_is_adjective(self):
        tags = dict(tag("the delicious cheesecake"))
        assert tags["delicious"] == "ADJ"

    def test_adverb_suffix(self):
        tags = dict(tag("he ran quickly home"))
        assert tags["quickly"] == "ADV"

    def test_capitalised_unknown_is_proper_noun(self):
        tags = dict(tag("Anna visited Zorbластск yesterday".replace("ластск", "atrava")))
        assert tags["Anna"] == "PROPN"

    def test_unknown_word_defaults_to_noun(self):
        tags = dict(tag("the frumble was broken"))
        assert tags["frumble"] == "NOUN"

    def test_sentence_initial_gerund_before_noun_is_adjective(self):
        tags = dict(tag("Baking chocolate is a type of chocolate"))
        assert tags["Baking"] == "ADJ"
        assert tags["chocolate"] == "NOUN"

    def test_to_before_verb_is_particle(self):
        tags = dict(tag("she wants to win the cup"))
        assert tags["to"] == "PRT"

    def test_to_before_noun_is_adposition(self):
        tags = dict(tag("she went to town"))
        assert tags["to"] == "ADP"


class TestTaggerInvariants:
    def test_one_tag_per_token(self):
        words = tokenize_words("Anna ate some delicious cheesecake at a grocery store.")
        tags = PosTagger().tag(words)
        assert len(tags) == len(words)

    def test_all_tags_in_universal_tagset(self):
        words = tokenize_words(
            "The quick brown fox jumps over 2 lazy dogs near Portland on 3 May 2018!"
        )
        for tag_ in PosTagger().tag(words):
            assert tag_ in UNIVERSAL_POS_TAGS

    def test_extra_lexicon_entries_respected(self):
        tagger = PosTagger(extra_verbs={"frumble"})
        words = ["they", "frumble", "loudly"]
        assert tagger.tag(words)[1] == "VERB"

    def test_deterministic(self):
        words = tokenize_words("Anna ate some delicious cheesecake.")
        tagger = PosTagger()
        assert tagger.tag(words) == tagger.tag(words)
