"""Tests for the KokoService query-serving layer."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.indexing.koko_index import KokoIndexSet
from repro.koko.engine import KokoEngine, compile_query
from repro.service import KokoService, PlanCache, ReadWriteLock, ResultCache
from repro.service.stats import ServiceStats

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

DOC_TEXTS = {
    "doc0": "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "doc1": "Anna ate some delicious cheesecake that she bought at a grocery store.",
}


def tuple_set(result):
    return {(t.doc_id, t.sid, t.values) for t in result}


@pytest.fixture()
def service():
    svc = KokoService(use_default_vectors=True)
    for doc_id, text in DOC_TEXTS.items():
        svc.add_document(text, doc_id)
    return svc


# ----------------------------------------------------------------------
# incremental ingestion equivalence (acceptance criterion, two corpora)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("corpus_fixture", ["paper_corpus", "cafe_corpus"])
def test_service_ingest_matches_from_scratch_build(
    corpus_fixture, request, pipeline, assert_equivalent_indexes
):
    corpus = request.getfixturevalue(corpus_fixture)
    svc = KokoService(pipeline=pipeline, use_default_vectors=False)
    for document in corpus:
        svc.add_document(document.text, document.doc_id)
    assert_equivalent_indexes(svc.indexes, KokoIndexSet().build(corpus))
    assert svc.document_ids() == [d.doc_id for d in corpus]


def test_service_results_match_plain_engine(service, pipeline):
    corpus = pipeline.annotate_corpus(DOC_TEXTS, name="reference")
    engine = KokoEngine(corpus, use_default_vectors=True)
    assert tuple_set(service.query(ENTITY_QUERY)) == tuple_set(engine.execute(ENTITY_QUERY))


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
def test_repeated_query_hits_result_cache(service):
    first = service.query(ENTITY_QUERY)
    second = service.query(ENTITY_QUERY)
    assert second is first  # shared cache entry
    assert service.stats.result_cache_hits == 1
    assert service.stats.result_cache_misses == 1
    assert service.stats.plan_cache_misses == 1


def test_ingestion_invalidates_result_cache_but_not_plans(service):
    first = service.query(ENTITY_QUERY)
    service.add_document("Maria ate a delicious pie.", "doc2")
    second = service.query(ENTITY_QUERY)
    assert second is not first
    assert len(second) == len(first) + 1
    # the plan survived ingestion: re-execution reused it
    assert service.stats.plan_cache_hits == 1
    assert service.stats.result_cache_hits == 0


def test_removal_invalidates_and_unindexes(service):
    service.add_document("cities such as Beijing and Tokyo.", "cities")
    assert {t.value("a") for t in service.query(CITY_QUERY)} == {"Beijing", "Tokyo"}
    service.remove_document("cities")
    assert len(service.query(CITY_QUERY)) == 0
    assert service.stats.documents_removed == 1


def test_distinct_parameters_cached_separately(service):
    strict = service.query(CITY_QUERY, threshold_override=0.99)
    lax = service.query(CITY_QUERY, threshold_override=0.0)
    assert service.stats.result_cache_misses == 2
    assert strict is not lax


def test_compiled_query_bypasses_caches(service):
    plan = compile_query(ENTITY_QUERY)
    first = service.query(plan)
    second = service.query(plan)
    assert second is not first
    assert tuple_set(second) == tuple_set(first)
    # bypassed caches count toward neither hits nor misses
    assert service.stats.result_cache_hits == 0
    assert service.stats.result_cache_misses == 0
    assert service.stats.plan_cache_hits == 0
    assert service.stats.plan_cache_misses == 0


# ----------------------------------------------------------------------
# batched concurrent execution
# ----------------------------------------------------------------------
def test_query_batch_preserves_order_and_timings(service):
    queries = [ENTITY_QUERY, CITY_QUERY, ENTITY_QUERY, CITY_QUERY]
    results = service.query_batch(queries, max_workers=3)
    assert len(results) == len(queries)
    assert tuple_set(results[0]) == tuple_set(results[2])
    assert tuple_set(results[1]) == tuple_set(results[3])
    for result in results:
        assert result.timings.total >= 0.0
    assert service.stats.queries_served == 4
    assert service.query_batch([]) == []


def test_ingest_while_querying_is_safe(service):
    stop = threading.Event()
    errors: list[Exception] = []

    def reader():
        while not stop.is_set():
            try:
                service.query(ENTITY_QUERY)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    try:
        for index in range(8):
            service.add_document(f"Anna ate a delicious pie number {index}.", f"extra{index}")
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert errors == []
    # after the dust settles the corpus reflects every ingest
    result = service.query(ENTITY_QUERY)
    assert len(result) == 2 + 8


# ----------------------------------------------------------------------
# bookkeeping and errors
# ----------------------------------------------------------------------
def test_duplicate_and_unknown_doc_ids(service):
    with pytest.raises(ServiceError):
        service.add_document("again", "doc0")
    with pytest.raises(ServiceError):
        service.remove_document("missing")


def test_add_annotated_document_requires_fresh_sids(service, pipeline):
    document = pipeline.annotate(
        "Paolo visited Beijing.", doc_id="pre", first_sid=service.next_sid()
    )
    service.add_annotated_document(document)
    assert "pre" in service.document_ids()
    stale = pipeline.annotate("An old one.", doc_id="stale", first_sid=0)
    with pytest.raises(ServiceError):
        service.add_annotated_document(stale)
    with pytest.raises(ServiceError):
        service.add_annotated_document(document)  # duplicate id


def test_statistics_track_live_corpus(service):
    before = service.statistics()
    document = service.add_document("Paolo visited Beijing.", "doc2")
    after = service.statistics()
    assert after.sentences == before.sentences + len(document)
    assert after.tokens == before.tokens + document.num_tokens
    removed = service.remove_document("doc2")
    assert removed is document
    restored = service.statistics()
    assert restored.sentences == before.sentences
    assert restored.tokens == before.tokens


def test_stats_snapshot_and_percentiles(service):
    for _ in range(10):
        service.query(ENTITY_QUERY)
    snapshot = service.stats.snapshot()
    assert snapshot["queries_served"] == 10
    assert snapshot["result_cache_hit_rate"] == pytest.approx(0.9)
    assert snapshot["documents_added"] == 2
    assert snapshot["ingest_tokens_per_second"] > 0
    assert 0.0 <= snapshot["p50_query_seconds"] <= snapshot["p95_query_seconds"]
    with pytest.raises(ValueError):
        service.stats.latency_percentile(0.0)


# ----------------------------------------------------------------------
# cache and lock unit tests
# ----------------------------------------------------------------------
def test_result_cache_lru_eviction_and_generations():
    cache: ResultCache[str] = ResultCache(capacity=2)
    cache.put("a", 0, "A")
    cache.put("b", 0, "B")
    assert cache.get("a", 0) == "A"  # refreshes "a"
    cache.put("c", 0, "C")  # evicts "b"
    assert cache.get("b", 0) is None
    assert cache.get("a", 1) is None  # stale generation
    assert len(cache) == 1  # stale entry was evicted too
    value, hit = cache.get_or_compute("d", 1, lambda: "D")
    assert (value, hit) == ("D", False)
    assert cache.get_or_compute("d", 1, lambda: "?") == ("D", True)


def test_plan_cache_compiles_once():
    cache = PlanCache(capacity=4)
    plan, hit = cache.get_or_compile(CITY_QUERY)
    assert not hit
    again, hit = cache.get_or_compile(CITY_QUERY)
    assert hit and again is plan
    assert len(cache) == 1


def test_read_write_lock_excludes_writers():
    lock = ReadWriteLock()
    events: list[str] = []
    with lock.read_locked():
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(), events.append("wrote"), lock.release_write())
        )
        writer.start()
        writer.join(timeout=0.05)
        assert events == []  # writer blocked while a reader holds the lock
    writer.join(timeout=2.0)
    assert events == ["wrote"]


def test_service_stats_defaults():
    stats = ServiceStats()
    assert stats.result_cache_hit_rate == 0.0
    assert stats.plan_cache_hit_rate == 0.0
    assert stats.ingest_tokens_per_second == 0.0
    assert stats.p50_query_seconds == 0.0
