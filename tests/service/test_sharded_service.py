"""Shard-count invariance and concurrency tests for the sharded service.

The load-bearing property: a service with any shard count returns
tuple-for-tuple identical results — same order, same values, same scores —
to a plain unsharded :class:`KokoEngine` over the same corpus, including
after interleaved add/remove ingestion.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.indexing.sharding import ShardedIndexSet
from repro.koko.engine import KokoEngine
from repro.nlp.types import Corpus
from repro.service import KokoService, ShardedKokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    """Full ordered tuple content, scores included (byte-identical check)."""
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


def reference_engine_for(mirror: list) -> KokoEngine:
    """An unsharded engine over the exact documents a service ingested."""
    return KokoEngine(Corpus(name="reference", documents=list(mirror)))


# ----------------------------------------------------------------------
# shard-count invariance (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize(
    "corpus_fixture,queries",
    [
        ("paper_corpus", [ENTITY_QUERY, CITY_QUERY]),
        ("cafe_corpus", ["CAFE_QUERY"]),
    ],
)
def test_sharded_service_matches_unsharded_engine(
    corpus_fixture, queries, shards, request
):
    corpus = request.getfixturevalue(corpus_fixture)
    if queries == ["CAFE_QUERY"]:
        from repro.evaluation.queries import CAFE_QUERY

        queries = [CAFE_QUERY]
    with KokoService(shards=shards) as service:
        for document in corpus:
            service.add_annotated_document(document)
        engine = KokoEngine(corpus)
        for query in queries:
            assert as_rows(service.query(query)) == as_rows(engine.execute(query))
            assert as_rows(
                service.query(query, threshold_override=0.0, keep_all_scores=True)
            ) == as_rows(
                engine.execute(query, threshold_override=0.0, keep_all_scores=True)
            )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_invariance_under_interleaved_add_remove(shards):
    """Property-style: a mixed add/remove history never breaks invariance."""
    with KokoService(shards=shards) as service:
        mirror: dict[str, object] = {}

        def add(index):
            mirror[f"doc{index}"] = service.add_document(TEXTS[index], f"doc{index}")

        def remove(index):
            service.remove_document(f"doc{index}")
            del mirror[f"doc{index}"]

        def check():
            engine = reference_engine_for(list(mirror.values()))
            for query in (ENTITY_QUERY, CITY_QUERY):
                assert as_rows(service.query(query)) == as_rows(engine.execute(query))

        for index in range(4):
            add(index)
        check()
        remove(1)
        remove(3)
        check()
        add(4)
        add(5)
        check()
        remove(0)
        check()
        # re-ingesting a removed id gets fresh sentence ids and still matches
        mirror["doc1"] = service.add_document(TEXTS[1], "doc1")
        check()


def test_sharded_sid_order_matches_ingest_order():
    """Merged tuples come back in global sentence-id (ingest) order."""
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS):
            service.add_document(text, f"doc{index}")
        result = service.query(ENTITY_QUERY)
        sids = [t.sid for t in result]
        assert sids == sorted(sids)
        assert len(result) > 0


# ----------------------------------------------------------------------
# sharded ingest/read concurrency
# ----------------------------------------------------------------------
def test_sharded_ingest_while_querying_is_safe():
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS[:2]):
            service.add_document(text, f"seed{index}")
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            while not stop.is_set():
                try:
                    service.query(ENTITY_QUERY)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for index in range(8):
                service.add_document(
                    f"Anna ate a delicious pie number {index}.", f"extra{index}"
                )
            service.remove_document("extra0")
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert errors == []
        result = service.query(ENTITY_QUERY)
        assert len(result) == 2 + 7  # both seeds match, extras minus the removed one


def test_caching_still_works_when_sharded():
    with KokoService(shards=2) as service:
        for index, text in enumerate(TEXTS[:3]):
            service.add_document(text, f"doc{index}")
        first = service.query(ENTITY_QUERY)
        second = service.query(ENTITY_QUERY)
        assert second is first  # shared generation-stamped cache entry
        service.add_document(TEXTS[3], "doc3")
        third = service.query(ENTITY_QUERY)
        assert third is not first
        assert service.stats.plan_cache_hits == 1  # the plan survived ingestion


# ----------------------------------------------------------------------
# bookkeeping, stats, lifecycle
# ----------------------------------------------------------------------
def test_sharded_bookkeeping_and_stats():
    with KokoService(shards=4) as service:
        assert service.shard_count == 4
        assert isinstance(service.indexes, ShardedIndexSet)
        for index, text in enumerate(TEXTS):
            document = service.add_document(text, f"doc{index}")
            assert service.shard_of(document.doc_id) < 4
        assert service.document_ids() == [f"doc{i}" for i in range(len(TEXTS))]
        assert len(service) == len(TEXTS)

        merged = service.statistics()
        per_shard = service.statistics_by_shard()
        assert len(per_shard) == 4
        assert merged.sentences == sum(s.sentences for s in per_shard)
        assert merged.tokens == sum(s.tokens for s in per_shard)

        service.query(ENTITY_QUERY)
        breakdown = service.stats.shard_breakdown()
        assert sum(b["documents_added"] for b in breakdown.values()) == len(TEXTS)
        assert sum(b["queries"] for b in breakdown.values()) == 4  # one per shard
        assert service.stats.snapshot()["per_shard"] == breakdown

        # per-engine access: single-engine accessors refuse on sharded services
        assert len(service.engines) == 4 and len(service.corpora) == 4
        with pytest.raises(ServiceError):
            service.engine
        with pytest.raises(ServiceError):
            service.corpus


def test_unsharded_accessors_and_defaults():
    service = KokoService()
    assert service.shard_count == 1
    assert not isinstance(service.indexes, ShardedIndexSet)
    assert service.engine is service.engines[0]
    assert service.corpus is service.corpora[0]
    service.close()  # no-op without a fan-out pool
    service.close()  # idempotent

    sharded = ShardedKokoService()
    assert sharded.shard_count == 4
    sharded.close()
    sharded.close()

    with pytest.raises(ServiceError):
        KokoService(shards=0)


def test_querying_a_closed_sharded_service_raises_service_error():
    service = KokoService(shards=2)
    service.add_document(TEXTS[0], "doc0")
    service.close()
    with pytest.raises(ServiceError, match="closed"):
        service.query(ENTITY_QUERY)


def test_duplicate_and_unknown_ids_when_sharded():
    with KokoService(shards=2) as service:
        service.add_document(TEXTS[0], "doc0")
        with pytest.raises(ServiceError):
            service.add_document("again", "doc0")
        with pytest.raises(ServiceError):
            service.remove_document("missing")
        # sid freshness checks still apply across shards
        stale = service.pipeline.annotate("An old one.", doc_id="stale", first_sid=0)
        with pytest.raises(ServiceError):
            service.add_annotated_document(stale)
