"""Durable KokoService: warm restart, crash recovery, checkpoints, stamps.

The acceptance property: ``KokoService.open(path)`` after ``close()`` — and
after a simulated crash with a torn WAL tail — yields tuple-for-tuple
identical query results to the original live service, with **zero**
re-annotation on the warm path.
"""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError, ServiceError
from repro.persistence import CheckpointPolicy, StorageLayout
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


class ExplodingPipeline:
    """A pipeline stand-in proving the warm path never re-annotates."""

    def annotate(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("warm restart must not re-run NLP annotation")


def populated_service(path, shards, texts=TEXTS):
    service = KokoService(shards=shards, storage_dir=path)
    for index, text in enumerate(texts):
        service.add_document(text, f"doc{index}")
    return service


# ----------------------------------------------------------------------
# warm restart after a clean close (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_reopen_after_close_is_tuple_identical(tmp_path, shards):
    service = populated_service(tmp_path / "svc", shards)
    service.remove_document("doc2")
    expected = {q: as_rows(service.query(q)) for q in (ENTITY_QUERY, CITY_QUERY)}
    expected_len = len(service)
    expected_generations = service.generations
    expected_sid = service.next_sid()
    service.close()

    reopened = KokoService.open(tmp_path / "svc", pipeline=ExplodingPipeline())
    try:
        assert reopened.shard_count == shards
        assert len(reopened) == expected_len
        assert reopened.generations == expected_generations
        assert reopened.next_sid() == expected_sid
        for query, rows in expected.items():
            assert as_rows(reopened.query(query)) == rows
            assert as_rows(
                reopened.query(query, threshold_override=0.0, keep_all_scores=True)
            ) == as_rows(
                reopened.query(query, threshold_override=0.0, keep_all_scores=True)
            )
        # clean close folded everything into the snapshot: nothing replayed
        assert reopened.stats.replayed_wal_records == 0
        assert not reopened.stats.recovered_torn_tail
        assert reopened.stats.recovered_documents == expected_len
    finally:
        reopened.close()


def test_reopened_service_keeps_serving_and_ingesting(tmp_path):
    service = populated_service(tmp_path / "svc", 4, TEXTS[:4])
    service.close()

    reopened = KokoService.open(tmp_path / "svc")
    reopened.add_document(TEXTS[4], "doc4")
    reopened.remove_document("doc0")
    expected = as_rows(reopened.query(ENTITY_QUERY))
    reopened.close()

    third = KokoService.open(tmp_path / "svc", pipeline=ExplodingPipeline())
    try:
        assert as_rows(third.query(ENTITY_QUERY)) == expected
        assert sorted(third.document_ids()) == ["doc1", "doc2", "doc3", "doc4"]
    finally:
        third.close()


# ----------------------------------------------------------------------
# crash recovery (kill-point: torn WAL tail)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_crash_with_torn_wal_tail_recovers_durable_prefix(tmp_path, shards):
    path = tmp_path / "svc"
    # disable auto-checkpointing so every ingest lives only in the WAL
    service = KokoService(
        shards=shards, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    for index, text in enumerate(TEXTS):
        service.add_document(text, f"doc{index}")

    # reference: the state without the final (about-to-be-torn) document
    reference = KokoService(shards=shards)
    for index, text in enumerate(TEXTS[:-1]):
        reference.add_document(text, f"doc{index}")
    expected = as_rows(reference.query(ENTITY_QUERY))
    reference.close()

    # simulated crash: no close(); tear the last WAL record mid-payload
    layout = StorageLayout(path)
    segment = layout.wal_path(layout.wal_segment_ids()[-1])
    with segment.open("r+b") as handle:
        handle.truncate(segment.stat().st_size - 11)
    del service

    recovered = KokoService.open(path, pipeline=ExplodingPipeline())
    try:
        assert recovered.stats.recovered_torn_tail
        assert recovered.stats.replayed_wal_records == len(TEXTS) - 1
        assert len(recovered) == len(TEXTS) - 1
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
    finally:
        recovered.close()


def test_crash_recovery_replays_on_top_of_latest_checkpoint(tmp_path):
    path = tmp_path / "svc"
    service = KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    for index, text in enumerate(TEXTS[:3]):
        service.add_document(text, f"doc{index}")
    assert service.checkpoint() is not None  # snapshot covers doc0..doc2
    service.add_document(TEXTS[3], "doc3")  # WAL-tail only
    service.remove_document("doc1")  # WAL-tail only
    expected = as_rows(service.query(ENTITY_QUERY))
    expected_ids = sorted(service.document_ids())
    del service  # crash: neither close nor another checkpoint

    recovered = KokoService.open(path, pipeline=ExplodingPipeline())
    try:
        assert sorted(recovered.document_ids()) == expected_ids
        assert recovered.stats.replayed_wal_records == 2
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
    finally:
        recovered.close()


def test_recovery_survives_a_corrupt_latest_snapshot(tmp_path):
    """A crash mid-snapshot falls back to the previous checkpoint + WAL."""
    path = tmp_path / "svc"
    service = KokoService(
        shards=1, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    service.add_document(TEXTS[0], "doc0")
    expected = as_rows(service.query(ENTITY_QUERY))
    service.checkpoint()
    del service

    layout = StorageLayout(path)
    latest = layout.snapshot_ids()[-1]
    corpus_file = layout.snapshot_dir(latest) / "corpus-0.pkl"
    corpus_file.write_bytes(corpus_file.read_bytes()[:-3])  # digest mismatch

    recovered = KokoService.open(path, pipeline=ExplodingPipeline())
    try:
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
        assert len(recovered) == 1
    finally:
        recovered.close()


# ----------------------------------------------------------------------
# lifecycle: idempotent close, context-managed final checkpoint
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_flushes_a_final_checkpoint(tmp_path):
    path = tmp_path / "svc"
    with KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    ) as service:
        for index, text in enumerate(TEXTS[:3]):
            service.add_document(text, f"doc{index}")
        assert service.checkpoint_id == 0  # nothing folded yet
    # __exit__ flushed the final checkpoint: nothing is left to replay
    # (the sealed segment may be retained as the fallback snapshot's log)
    from repro.persistence import read_records

    layout = StorageLayout(path)
    current = layout.read_current()
    assert current is not None and current > 0
    for segment in layout.wal_segment_ids():
        if segment > current:
            assert read_records(layout.wal_path(segment)).records == []

    service.close()  # second close is a no-op
    service.close()
    with pytest.raises(ServiceError):
        service.add_document("too late", "late")


def test_checkpoint_on_memory_only_service_raises(tmp_path):
    with KokoService() as service:
        with pytest.raises(ServiceError):
            service.checkpoint()
        assert service.storage_dir is None


def test_background_checkpoint_policy_triggers(tmp_path):
    import time

    path = tmp_path / "svc"
    with KokoService(
        shards=1,
        storage_dir=path,
        checkpoint_policy=CheckpointPolicy(min_ops=2, min_bytes=None, min_seconds=None),
        checkpoint_poll_seconds=0.02,
    ) as service:
        service.add_document(TEXTS[0], "doc0")
        service.add_document(TEXTS[1], "doc1")
        deadline = time.monotonic() + 5.0
        while service.checkpoint_id == 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert service.checkpoint_id > 0
        assert service.stats.checkpoints_completed >= 1


def test_explicit_checkpoint_is_a_noop_when_clean(tmp_path):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as service:
        service.add_document(TEXTS[0], "doc0")
        first = service.checkpoint()
        assert first is not None
        assert service.checkpoint() is None  # nothing new logged


def test_shard_count_conflict_is_rejected(tmp_path):
    path = tmp_path / "svc"
    populated_service(path, 4, TEXTS[:2]).close()
    with pytest.raises(ServiceError, match="shard"):
        KokoService(shards=2, storage_dir=path)
    # unspecified shard count adopts the persisted topology
    reopened = KokoService.open(path)
    try:
        assert reopened.shard_count == 4
    finally:
        reopened.close()


def test_newest_valid_snapshot_wins_over_stale_current_pointer(tmp_path):
    """A crash after the snapshot fsync but before CURRENT moves must not
    resurrect the older checkpoint (nor break subsequent checkpoints)."""
    path = tmp_path / "svc"
    service = KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    service.add_document(TEXTS[0], "doc0")
    sealed = service.checkpoint()
    expected = as_rows(service.query(ENTITY_QUERY))
    del service

    layout = StorageLayout(path)
    layout.write_current(sealed - 1)  # CURRENT update "lost" in the crash

    recovered = KokoService.open(path)
    try:
        assert recovered.stats.replayed_wal_records == 0  # nothing to replay
        assert recovered.checkpoint_id == sealed  # newest valid snapshot won
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
        recovered.add_document(TEXTS[1], "doc1")
        assert recovered.checkpoint() is not None  # checkpointing still works
    finally:
        recovered.close()


def test_refolding_over_a_corrupt_snapshot_directory_succeeds(tmp_path):
    """Recovery that re-seals an already-materialised checkpoint id must
    replace the (necessarily invalid) leftover directory, not crash."""
    path = tmp_path / "svc"
    service = KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    service.add_document(TEXTS[0], "doc0")
    sealed = service.checkpoint()
    expected = as_rows(service.query(ENTITY_QUERY))
    del service

    layout = StorageLayout(path)
    # corrupt the newest snapshot and drop the rotated (empty) tail segment,
    # as if the crash also lost its dirent — recovery then replays the sealed
    # segment and folds it back into the same checkpoint id
    (layout.snapshot_dir(sealed) / "manifest.json").write_text("{", encoding="utf-8")
    for segment in layout.wal_segment_ids():
        if segment > sealed:
            layout.wal_path(segment).unlink()

    recovered = KokoService.open(path, pipeline=ExplodingPipeline())
    try:
        assert recovered.stats.replayed_wal_records == 1
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
        assert recovered.checkpoint_id == sealed  # refolded over the wreck
    finally:
        recovered.close()
    reopened = KokoService.open(path, pipeline=ExplodingPipeline())
    try:
        assert as_rows(reopened.query(ENTITY_QUERY)) == expected
    finally:
        reopened.close()


def test_initialised_but_unbootstrapped_directory_gets_bootstrapped(tmp_path):
    """A crash between directory init and the first snapshot self-heals."""
    layout = StorageLayout(tmp_path / "svc")
    layout.initialise()  # simulated crash: skeleton exists, no snapshot, no WAL
    service = KokoService.open(tmp_path / "svc", shards=4)
    try:
        assert layout.read_current() == 0  # bootstrap pinned the topology
    finally:
        service.close()
    reopened = KokoService.open(tmp_path / "svc")
    try:
        assert reopened.shard_count == 4
    finally:
        reopened.close()


def test_wal_sync_false_still_recovers_after_clean_close(tmp_path):
    service = KokoService(
        shards=2,
        storage_dir=tmp_path / "svc",
        wal_sync=False,
        checkpoint_policy=CheckpointPolicy.disabled(),
    )
    service.add_document(TEXTS[0], "doc0")
    expected = as_rows(service.query(ENTITY_QUERY))
    assert service._wal.sync is False  # the knob actually reaches the log
    service.close()
    reopened = KokoService.open(tmp_path / "svc", pipeline=ExplodingPipeline())
    try:
        assert as_rows(reopened.query(ENTITY_QUERY)) == expected
    finally:
        reopened.close()


def test_wal_replay_rejects_inconsistent_records(tmp_path):
    """A remove of an unknown document in the log means corruption: fail loudly."""
    from repro.persistence import OP_REMOVE, WalRecord, WalWriter

    layout = StorageLayout(tmp_path / "svc")
    layout.initialise()
    writer = WalWriter(layout.wal_path(1))
    writer.append(WalRecord(op=OP_REMOVE, doc_id="ghost"))
    writer.close()
    with pytest.raises(PersistenceError):
        KokoService.open(tmp_path / "svc")


# ----------------------------------------------------------------------
# per-shard generation stamps (satellite)
# ----------------------------------------------------------------------
def test_ingest_bumps_exactly_one_shard_generation():
    with KokoService(shards=4) as service:
        assert service.generations == (0, 0, 0, 0)
        document = service.add_document(TEXTS[0], "doc0")
        target = service.shard_of(document.doc_id)
        expected = [0, 0, 0, 0]
        expected[target] = 1
        assert service.generations == tuple(expected)
        service.remove_document("doc0")
        expected[target] = 2
        assert service.generations == tuple(expected)
        assert service.generation == 2


def test_single_shard_ingest_reuses_other_shards_partials():
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS[:4]):
            service.add_document(text, f"doc{index}")
        first = service.query(ENTITY_QUERY)
        assert service.stats.shard_partials_computed == 4
        assert service.stats.shard_partials_reused == 0

        service.add_document(TEXTS[4], "docX")  # touches exactly one shard
        second = service.query(ENTITY_QUERY)
        assert second is not first  # full result was invalidated...
        assert service.stats.shard_partials_reused == 3  # ...but 3 shards reused
        assert service.stats.shard_partials_computed == 5

        third = service.query(ENTITY_QUERY)  # untouched stamp vector: full hit
        assert third is second
        assert service.stats.result_cache_hits == 1


def test_partial_reuse_matches_full_execution():
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS):
            service.add_document(text, f"doc{index}")
        baseline = as_rows(service.query(ENTITY_QUERY))
        service.remove_document("doc5")
        with KokoService(shards=4) as fresh:
            for index, text in enumerate(TEXTS[:5]):
                fresh.add_document(text, f"doc{index}")
            assert as_rows(service.query(ENTITY_QUERY)) == as_rows(
                fresh.query(ENTITY_QUERY)
            )
        assert service.stats.shard_partials_reused > 0
        assert baseline != as_rows(service.query(ENTITY_QUERY))


def test_generation_stamps_are_persisted(tmp_path):
    service = populated_service(tmp_path / "svc", 4, TEXTS[:4])
    service.remove_document("doc1")
    stamps = service.generations
    service.close()
    reopened = KokoService.open(tmp_path / "svc")
    try:
        assert reopened.generations == stamps
    finally:
        reopened.close()
