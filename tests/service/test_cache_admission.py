"""Cost-aware result-cache admission (``result_cache_max_entry_bytes``).

One giant result can evict many small, frequently reused cache entries;
the admission bound keeps it out of the cache entirely (the caller still
gets the computed result).  These tests cover the :class:`ResultCache`
mechanics, the service knob that wires it up, and the stats counters that
make refusals observable.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import KokoService, ResultCache

DOC_TEXTS = {
    "doc0": "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "doc1": "Anna ate some delicious cheesecake that she bought at a grocery store.",
}
QUERY = 'extract x:Entity from "t" if (/ROOT:{ a = //"ate" })'


def _service(**kwargs) -> KokoService:
    service = KokoService(use_default_vectors=False, **kwargs)
    for doc_id, text in DOC_TEXTS.items():
        service.add_document(text, doc_id)
    return service


# ----------------------------------------------------------------------
# ResultCache mechanics
# ----------------------------------------------------------------------
def test_bound_requires_an_estimator():
    with pytest.raises(ValueError, match="estimator"):
        ResultCache(max_entry_bytes=10)


def test_nonpositive_bound_rejected():
    with pytest.raises(ValueError, match="max_entry_bytes"):
        ResultCache(max_entry_bytes=0, entry_bytes=len)


def test_oversize_values_are_not_admitted():
    skips: list[int] = []
    cache: ResultCache[str] = ResultCache(
        max_entry_bytes=5,
        entry_bytes=len,
        on_admission_skip=lambda: skips.append(1),
    )
    cache.put("small", 1, "abc")
    cache.put("big", 1, "a" * 100)
    assert cache.get("small", 1) == "abc"
    assert cache.get("big", 1) is None
    assert len(cache) == 1
    assert len(skips) == 1


def test_get_or_compute_recomputes_refused_values():
    cache: ResultCache[str] = ResultCache(max_entry_bytes=5, entry_bytes=len)
    computed: list[int] = []

    def compute() -> str:
        computed.append(1)
        return "a" * 100

    value, hit = cache.get_or_compute("big", 1, compute)
    assert (value, hit) == ("a" * 100, False)
    _, hit = cache.get_or_compute("big", 1, compute)
    assert not hit  # refused on put, so the second call computes again
    assert len(computed) == 2


# ----------------------------------------------------------------------
# the service knob
# ----------------------------------------------------------------------
def test_service_rejects_nonpositive_knob():
    with pytest.raises(ServiceError, match="result_cache_max_entry_bytes"):
        KokoService(result_cache_max_entry_bytes=0)


def test_unbounded_service_serves_repeat_queries_from_cache():
    with _service() as service:
        first = [(t.doc_id, t.sid, t.values) for t in service.query(QUERY)]
        second = [(t.doc_id, t.sid, t.values) for t in service.query(QUERY)]
        assert first == second
        assert service.stats.result_cache_hits == 1
        assert service.stats.result_cache_admission_skips == 0


def test_tiny_bound_disables_caching_but_not_queries():
    # every KokoResult estimates >= 256 bytes, so a 1-byte bound refuses all
    with _service(result_cache_max_entry_bytes=1) as service:
        first = [(t.doc_id, t.sid, t.values) for t in service.query(QUERY)]
        second = [(t.doc_id, t.sid, t.values) for t in service.query(QUERY)]
        assert first == second
        assert first  # the query does match: results still flow
        assert service.stats.result_cache_hits == 0
        assert service.stats.result_cache_admission_skips >= 2


def test_sharded_partial_caches_count_their_own_refusals():
    with _service(shards=2, result_cache_max_entry_bytes=1) as service:
        service.query(QUERY)
        breakdown = service.stats.shard_cache_breakdown()
        assert sum(row["admission_skips"] for row in breakdown.values()) >= 1
