"""Service-level observability: explain traces, slow-op log, registry wiring.

The acceptance criteria of the observability work land here:

* ``explain=True`` returns tuple-identical results to a plain query at
  1 and 4 shards, with a span tree covering every pipeline stage, the
  shard fan-out, and both cache lookups;
* sampled-off tracing allocates **zero** spans (the overhead guard);
* the slow-op ring captures structured query/ingest/remove entries with
  per-stage timings and — on a durable service — WAL append/fsync spans;
* one registry exposes service, persistence, and replication-lag
  metrics together.
"""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.observability import ExplainedResult
from repro.replication import InProcessTransport, LogShipper, ReplicaService
from repro.service import KokoService

CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = {
    "doc0": "Paris is a beautiful city with many museums.",
    "doc1": "The barista in Osaka served a delicious espresso.",
    "doc2": "cities in asian countries such as Beijing and Tokyo.",
    "doc3": "Maria ate a delicious pie in Tokyo.",
}

#: every span an explain=True query tree must contain (any shard count)
REQUIRED_QUERY_SPANS = {
    "query",
    "result_cache",
    "plan_cache",
    "shard_fanout",
    "normalize",
    "dpli",
    "load",
    "extract",
    "aggregate",
}


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


def service_with_docs(**kwargs) -> KokoService:
    svc = KokoService(**kwargs)
    for doc_id, text in TEXTS.items():
        svc.add_document(text, doc_id)
    return svc


# ----------------------------------------------------------------------
# explain=True: identity + coverage (acceptance, shards 1 and 4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_explain_is_tuple_identical_and_covers_all_stages(shards):
    svc = service_with_docs(shards=shards)
    plain = svc.query(CITY_QUERY)
    explained = svc.query(CITY_QUERY, explain=True)
    assert isinstance(explained, ExplainedResult)
    assert as_rows(explained) == as_rows(plain)
    assert len(explained) == len(plain)

    names = explained.trace.names()
    assert REQUIRED_QUERY_SPANS <= names
    if shards > 1:
        assert "merge" in names
    # one shardN child per shard, even on a warm cache: explain bypasses
    # the result and partial caches so every shard runs every stage
    fanout = explained.trace.find("shard_fanout")
    assert fanout is not None
    assert {child.name for child in fanout.children} == {
        f"shard{i}" for i in range(shards)
    }
    for child in fanout.children:
        assert {"normalize", "dpli", "load", "extract", "aggregate"} <= (
            child.names()
        )
    report = explained.report()
    assert report.splitlines()[0].startswith("query")
    assert "ms" in report
    svc.close()


def test_explain_reexecutes_on_a_result_cache_hit():
    svc = service_with_docs()
    svc.query(CITY_QUERY)  # warm the result cache
    explained = svc.query(CITY_QUERY, explain=True)
    cache_span = explained.trace.find("result_cache")
    assert cache_span is not None and cache_span.attributes["hit"] is True
    # ...yet the pipeline ran: the per-stage spans exist with real timings
    assert explained.trace.find("aggregate") is not None
    svc.close()


# ----------------------------------------------------------------------
# sampling + the overhead guard
# ----------------------------------------------------------------------
def test_sampled_off_tracing_allocates_zero_spans():
    svc = service_with_docs(
        trace_sample_rate=0.0, slow_query_ms=None, slow_ingest_ms=None
    )
    for _ in range(3):
        svc.query(CITY_QUERY)
    assert svc.metrics.get("koko_traces_sampled_total").value == 0
    assert svc.metrics.get("koko_slow_ops_total").snapshot_value() == {}
    assert svc.recent_slow_ops() == []
    svc.close()


def test_sampled_on_tracing_counts_operations():
    svc = service_with_docs(
        trace_sample_rate=1.0, slow_query_ms=None, slow_ingest_ms=None
    )
    svc.query(CITY_QUERY)
    # 4 ingests + 1 query, each sampled at rate 1.0
    assert svc.metrics.get("koko_traces_sampled_total").value == 5
    svc.close()


def test_trace_and_threshold_parameters_are_validated():
    with pytest.raises(ServiceError):
        KokoService(trace_sample_rate=1.5)
    with pytest.raises(ServiceError):
        KokoService(slow_query_ms=-1.0)
    with pytest.raises(ServiceError):
        KokoService(slow_ingest_ms=-0.5)


# ----------------------------------------------------------------------
# the slow-op log
# ----------------------------------------------------------------------
def test_slow_query_entries_carry_stage_breakdown_and_cache_outcomes():
    svc = service_with_docs(slow_query_ms=0.0, slow_ingest_ms=None)
    svc.query(CITY_QUERY)
    entry = svc.recent_slow_ops(1)[0]
    assert entry["kind"] == "query"
    assert entry["duration_ms"] >= 0.0
    assert len(entry["query_sha1"]) == 12
    assert entry["cache"] == {"result_cache_hit": False, "plan_cache_hit": False}
    assert set(entry["stages_ms"]) == {
        "normalize", "dpli", "load", "gsp", "extract", "aggregate",
    }
    assert entry["tuples"] == len(svc.query(CITY_QUERY))
    svc.close()


def test_slow_ingest_entries_cover_the_durable_write_path(tmp_path):
    svc = KokoService(
        storage_dir=tmp_path / "svc",
        trace_sample_rate=1.0,
        slow_query_ms=None,
        slow_ingest_ms=0.0,
        slow_op_log_path=tmp_path / "slow.jsonl",
    )
    svc.add_document(TEXTS["doc0"], "doc0")
    svc.remove_document("doc0")
    remove_entry, ingest_entry = svc.recent_slow_ops(2)
    assert ingest_entry["kind"] == "ingest"
    assert ingest_entry["wal"]["frame_bytes"] > 0
    assert set(ingest_entry["stages_ms"]) == {"annotate", "wal", "splice"}

    def span_names(node, acc):
        acc.add(node["name"])
        for child in node.get("children", ()):
            span_names(child, acc)
        return acc

    assert {"ingest", "annotate", "wal", "wal_append", "fsync_wait", "splice"} <= (
        span_names(ingest_entry["trace"], set())
    )
    assert remove_entry["kind"] == "remove"
    assert set(remove_entry["stages_ms"]) == {"wal", "unsplice"}
    svc.close()
    assert (tmp_path / "slow.jsonl").read_text().count('"kind"') == 2


# ----------------------------------------------------------------------
# registry wiring
# ----------------------------------------------------------------------
def test_registry_exposes_service_and_durability_metrics(tmp_path):
    svc = KokoService(storage_dir=tmp_path / "svc")
    svc.add_document(TEXTS["doc0"], "doc0")
    svc.query(CITY_QUERY)
    assert svc.metrics.get("koko_last_checkpoint_unix").value == 0
    assert svc.checkpoint() is not None
    assert svc.metrics.get("koko_last_checkpoint_unix").value > 0
    assert svc.metrics.get("koko_checkpoint_in_progress").value == 0
    assert not svc.stats.checkpoint_in_progress

    text = svc.metrics.render_text()
    for name in (
        "koko_queries_served_total",
        "koko_query_latency_seconds_bucket",
        "koko_shard_queries_total",
        "koko_wal_records_appended_total",
        "koko_wal_batch_records_bucket",
        "koko_checkpoints_completed_total",
    ):
        assert name in text, name
    svc.close()


def test_one_registry_spans_service_persistence_and_replication(tmp_path):
    primary = KokoService(storage_dir=tmp_path / "svc")
    primary.add_document(TEXTS["doc0"], "doc0")
    primary.checkpoint()
    shipper = LogShipper(primary, poll_interval=0.01, heartbeat_interval=0.05)
    primary_end, replica_end = InProcessTransport.pair()
    shipper.serve(primary_end)
    replica = ReplicaService(replica_end, name="r1")
    primary.add_document(TEXTS["doc1"], "doc1")
    assert replica.wait_caught_up(primary.wal_position())

    text = primary.metrics.render_text()
    for name in (
        "koko_wal_records_appended_total",  # persistence
        "koko_shipper_sessions",  # replication, primary side
        "koko_shipper_records_shipped_total",
        "koko_shipper_snapshot_bytes_shipped_total",
    ):
        assert name in text, name
    assert primary.metrics.get("koko_shipper_sessions").value == 1
    assert primary.metrics.get("koko_shipper_records_shipped_total").value >= 1

    replica_text = replica.metrics.render_text()
    for name in (
        "koko_replication_connected",
        "koko_replication_lag_bytes",
        "koko_replication_records_applied",
        "koko_replication_apply_seconds",
    ):
        assert name in replica_text, name
    assert replica.metrics.get("koko_replication_connected").value == 1.0
    assert replica.metrics.get("koko_replication_lag_bytes").value == 0.0
    assert replica.metrics.get("koko_replication_records_applied").value >= 1.0

    replica.close()
    shipper.close()
    assert replica.metrics.get("koko_replication_connected").value == 0.0
    primary.close()


# ----------------------------------------------------------------------
# per-shard heat accounting
# ----------------------------------------------------------------------
def test_skewed_workload_heats_the_targeted_shard(tmp_path):
    """Under a write+read workload aimed at one shard, the heat report
    names that shard hottest (the split-victim-selection signal)."""
    svc = KokoService(shards=4, storage_dir=tmp_path / "svc")
    try:
        # find doc ids hashing to shard 0 vs elsewhere, then skew hard
        hot, cold = [], []
        for index in range(200):
            doc_id = f"doc{index}"
            (hot if svc.shard_of(doc_id) == 0 else cold).append(doc_id)
            if len(hot) >= 12 and len(cold) >= 2:
                break
        assert len(hot) >= 12 and len(cold) >= 2
        texts = list(TEXTS.values())
        for position, doc_id in enumerate(hot):
            svc.add_document(texts[position % len(texts)], doc_id)
        for position, doc_id in enumerate(cold[:2]):
            svc.add_document(texts[position % len(texts)], doc_id)

        report = svc.shard_heat_report()
        assert len(report) == 4
        assert report.hottest() == 0
        row = report.shard(0)
        assert row.splices == len(hot)
        assert row.splice_bytes > report.shard(svc.shard_of(cold[0])).splice_bytes
        assert row.heat_score == max(r.heat_score for r in report.shards)
        # the mirrored labeled metrics carry the same story
        text = svc.metrics.render_text()
        assert 'koko_shard_splice_bytes_total{shard="0"}' in text
        assert 'koko_shard_ewma_splice_seconds{shard="0"}' in text
    finally:
        svc.close()


def test_queries_and_candidates_feed_the_heat_report():
    svc = service_with_docs(shards=2, use_default_vectors=True)
    try:
        for step in range(3):  # distinct thresholds defeat the result cache
            svc.query(CITY_QUERY, threshold_override=0.3 + step * 0.01)
        report = svc.shard_heat_report()
        total_queries = sum(row.queries for row in report.shards)
        assert total_queries == 2 * 3  # every query fans out to both shards
        assert sum(row.skip_candidates for row in report.shards) > 0
        assert all(
            row.ewma_query_seconds > 0.0 for row in report.shards if row.queries
        )
        assert report.hottest() is not None
    finally:
        svc.close()
