"""Staged removes, ingest backpressure and per-shard cache counters."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.nlp.pipeline import Pipeline
from repro.persistence import CheckpointPolicy
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


# ----------------------------------------------------------------------
# staged removes: claim -> log off-lock -> apply
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_concurrent_staged_removes_and_adds_stay_consistent(
    tmp_path, shards, run_threads
):
    service = KokoService(shards=shards, storage_dir=tmp_path / "svc")
    for index, text in enumerate(TEXTS):
        service.add_document(text, f"doc{index}")

    def work(thread_index: int) -> None:
        if thread_index < 3:
            service.remove_document(f"doc{thread_index}")
        else:
            service.add_document(TEXTS[thread_index], f"extra{thread_index}")

    run_threads(6, work)
    expected_ids = sorted(
        [f"doc{i}" for i in range(3, 6)] + [f"extra{i}" for i in range(3, 6)]
    )
    assert sorted(service.document_ids()) == expected_ids
    expected = as_rows(service.query(ENTITY_QUERY))
    service.close()

    reopened = KokoService.open(tmp_path / "svc")
    try:
        assert sorted(reopened.document_ids()) == expected_ids
        assert as_rows(reopened.query(ENTITY_QUERY)) == expected
    finally:
        reopened.close()


def test_staged_remove_is_durable_before_visible(tmp_path):
    """A remove survives a crash that strikes right after the call returns:
    the record was fsynced off-lock before the un-splice."""
    service = KokoService(
        shards=2,
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    )
    for index, text in enumerate(TEXTS[:3]):
        service.add_document(text, f"doc{index}")
    service.remove_document("doc1")
    expected = as_rows(service.query(ENTITY_QUERY))
    del service  # crash: no close, no checkpoint — the WAL is everything

    recovered = KokoService.open(tmp_path / "svc")
    try:
        assert sorted(recovered.document_ids()) == ["doc0", "doc2"]
        assert as_rows(recovered.query(ENTITY_QUERY)) == expected
    finally:
        recovered.close()


def test_remove_conflicts_are_rejected():
    with KokoService(shards=2) as service:
        service.add_document(TEXTS[0], "doc0")
        with pytest.raises(ServiceError, match="unknown"):
            service.remove_document("ghost")
        service.remove_document("doc0")
        with pytest.raises(ServiceError, match="unknown"):
            service.remove_document("doc0")


def test_remove_does_not_hold_the_meta_lock_across_the_wal_append(tmp_path):
    """With a long group-commit linger, a remove in flight must not block
    an unrelated metadata operation (sid reservation) for the linger."""
    service = KokoService(
        shards=2,
        storage_dir=tmp_path / "svc",
        sync_interval=0.25,
        checkpoint_policy=CheckpointPolicy.disabled(),
    )
    try:
        service.add_document(TEXTS[0], "doc0")
        started = threading.Event()

        def slow_remove():
            started.set()
            service.remove_document("doc0")

        remover = threading.Thread(target=slow_remove)
        remover.start()
        started.wait()
        time.sleep(0.02)  # let the remove reach its lingering fsync
        reserve_started = time.perf_counter()
        service.reserve_sids(1)  # meta-lock op: must not wait out the linger
        reserve_seconds = time.perf_counter() - reserve_started
        remover.join()
        assert reserve_seconds < 0.2, (
            f"meta lock was held across the group commit ({reserve_seconds:.3f}s)"
        )
    finally:
        service.close()


def test_remove_of_mid_ingest_document_still_raises():
    class SlowPipeline(Pipeline):
        def annotate(self, *args, **kwargs):
            time.sleep(0.15)
            return super().annotate(*args, **kwargs)

    with KokoService(shards=1, pipeline=SlowPipeline()) as service:
        adder = threading.Thread(
            target=service.add_document, args=(TEXTS[0], "doc0")
        )
        adder.start()
        time.sleep(0.05)  # the add is annotating: claimed but not committed
        with pytest.raises(ServiceError, match="still being ingested"):
            service.remove_document("doc0")
        adder.join()
        service.remove_document("doc0")  # fine once committed


# ----------------------------------------------------------------------
# backpressure: max_inflight_ingest_bytes
# ----------------------------------------------------------------------
def test_backpressure_blocks_runaway_producers_and_drains(run_threads):
    class SlowPipeline(Pipeline):
        def annotate(self, *args, **kwargs):
            time.sleep(0.05)
            return super().annotate(*args, **kwargs)

    bound = len(TEXTS[0].encode()) + 10  # roughly one document in flight
    with KokoService(
        shards=2, pipeline=SlowPipeline(), max_inflight_ingest_bytes=bound
    ) as service:

        def work(index: int) -> None:
            service.add_document(TEXTS[index], f"doc{index}")

        run_threads(4, work)
        assert len(service) == 4
        assert service.inflight_ingest_bytes == 0  # fully drained
        assert service.stats.ingest_backpressure_waits > 0
        assert service.stats.snapshot()["ingest_backpressure_waits"] > 0


def test_oversized_document_is_admitted_alone():
    with KokoService(shards=1, max_inflight_ingest_bytes=8) as service:
        document = service.add_document(TEXTS[0], "huge")  # > bound, no deadlock
        assert document.doc_id == "huge"
        assert service.inflight_ingest_bytes == 0


def test_backpressure_rejects_nonpositive_bound():
    with pytest.raises(ServiceError, match="max_inflight_ingest_bytes"):
        KokoService(max_inflight_ingest_bytes=0)


def test_backpressure_admission_is_fifo_no_overtaking():
    """A large document blocked on the byte budget must not be overtaken
    by smaller claims arriving behind it — without FIFO ordering it could
    starve forever behind a stream of small admitted documents."""
    release = threading.Event()

    class GatedPipeline(Pipeline):
        def annotate(self, text, **kwargs):
            if kwargs.get("doc_id") == "holder":
                release.wait(10.0)  # keep the budget occupied
            return super().annotate(text, **kwargs)

    holder, big, small = TEXTS[0], TEXTS[1], TEXTS[2]
    holder_bytes = len(holder.encode())
    assert len(big.encode()) > len(small.encode()) + 1
    bound = holder_bytes + len(small.encode()) + 1  # small fits, big does not
    service = KokoService(
        shards=1, pipeline=GatedPipeline(), max_inflight_ingest_bytes=bound
    )
    threads = []
    try:
        threads.append(
            threading.Thread(target=service.add_document, args=(holder, "holder"))
        )
        threads[-1].start()
        deadline = time.monotonic() + 5.0
        while (
            service.inflight_ingest_bytes < holder_bytes
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)

        threads.append(
            threading.Thread(target=service.add_document, args=(big, "big"))
        )
        threads[-1].start()  # blocks: holder + big exceeds the bound
        while (
            service.stats.ingest_backpressure_waits < 1
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)

        threads.append(
            threading.Thread(target=service.add_document, args=(small, "small"))
        )
        threads[-1].start()  # fits the headroom, but must queue behind big
        time.sleep(0.2)
        assert "small" not in service.document_ids()  # no overtaking
    finally:
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
    try:
        assert sorted(service.document_ids()) == ["big", "holder", "small"]
        assert service.inflight_ingest_bytes == 0
    finally:
        service.close()


def test_stale_cache_entry_is_counted_exactly_once():
    """Racing (or repeated) lookups of one stale entry must record one
    stale eviction, not one per looker."""
    from repro.service.cache import ResultCache

    evictions = []
    cache = ResultCache(capacity=4, on_evict=evictions.append)
    cache.put("q", 1, "value")
    assert cache.get("q", 2) is None  # stale: evicted and counted
    assert cache.get("q", 2) is None  # already gone: plain miss
    assert evictions == [True]


# ----------------------------------------------------------------------
# per-shard result-cache counters
# ----------------------------------------------------------------------
def test_per_shard_cache_counters_track_hits_misses_and_stale_evictions():
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS[:4]):
            service.add_document(text, f"doc{index}")
        service.query(ENTITY_QUERY)  # 4 partial misses (computed)
        target = service.shard_of(service.add_document(TEXTS[4], "docX").doc_id)
        service.query(ENTITY_QUERY)  # 3 reused, 1 recomputed (stale evicted)

        breakdown = service.stats.shard_cache_breakdown()
        assert sum(b["misses"] for b in breakdown.values()) == 5
        assert sum(b["hits"] for b in breakdown.values()) == 3
        assert breakdown[target]["stale_evictions"] == 1
        assert breakdown[target]["misses"] == 2
        for shard, counters in breakdown.items():
            if shard != target:
                assert counters["stale_evictions"] == 0
        snapshot = service.stats.snapshot()
        assert snapshot["per_shard_result_cache"] == breakdown


def test_per_shard_cache_lru_evictions_are_counted():
    with KokoService(shards=2, result_cache_size=1) as service:
        for index, text in enumerate(TEXTS[:2]):
            service.add_document(text, f"doc{index}")
        queries = [ENTITY_QUERY, ENTITY_QUERY + " "]  # two distinct cache keys
        for query in queries:
            service.query(query)
        for query in queries:  # each re-execution evicts the other's entry
            service.query(query)
        breakdown = service.stats.shard_cache_breakdown()
        assert sum(b["lru_evictions"] for b in breakdown.values()) > 0


def test_full_result_cache_evictions_are_counted():
    with KokoService(shards=1, result_cache_size=1) as service:
        service.add_document(TEXTS[0], "doc0")
        service.query(ENTITY_QUERY)
        service.add_document(TEXTS[1], "doc1")  # bumps the generation
        service.query(ENTITY_QUERY)  # stale entry evicted on sight
        assert service.stats.result_cache_stale_evictions == 1
        service.query(ENTITY_QUERY + " ")  # overflows capacity 1
        assert service.stats.result_cache_lru_evictions >= 1
