"""The staged concurrent ingest pipeline: off-lock annotation, parallel splice.

The load-bearing properties:

* multi-threaded writers across shards produce **sid-stable results
  identical to serial ingest** when sid ranges are pre-planned (the
  ``first_sid`` reservation API), and a consistent, reference-identical
  corpus even when sids are assigned by arrival order;
* the doc-id claim is race-free (exactly one of N concurrent writers of
  the same id wins);
* checkpoints drain in-flight staged ingests, so a warm restart after
  heavy concurrent ingest is tuple-identical;
* the async front end (``aquery``/``aadd_document``) returns the same
  results as the blocking calls.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.errors import ServiceError
from repro.koko.engine import KokoEngine
from repro.nlp.pipeline import Pipeline
from repro.nlp.types import Corpus
from repro.persistence import CheckpointPolicy
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

BASE_TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo. The pie shop was crowded.",
    "The barista in Osaka served a delicious espresso.",
]
TEXTS = [BASE_TEXTS[i % len(BASE_TEXTS)] for i in range(18)]


def as_rows(result):
    """Full ordered tuple content, scores included (byte-identical check)."""
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


def plan_sids(service: KokoService, pipeline: Pipeline, texts) -> list[int]:
    """Pre-reserve every document's sid range in deterministic (serial) order."""
    return [
        service.reserve_sids(len(pipeline.tokenizer.split_sentences(text)))
        for text in texts
    ]


# ----------------------------------------------------------------------
# sid-stable concurrency (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_concurrent_ingest_is_tuple_identical_to_serial(shards, pipeline, run_threads):
    """4 writers with pre-planned sid ranges == serial ingest, bit for bit."""
    with KokoService(shards=shards) as serial:
        for index, text in enumerate(TEXTS):
            serial.add_document(text, f"doc{index}")
        expected = {q: as_rows(serial.query(q)) for q in (ENTITY_QUERY, CITY_QUERY)}
        expected_sid = serial.next_sid()

    with KokoService(shards=shards) as concurrent:
        bases = plan_sids(concurrent, pipeline, TEXTS)
        order = list(range(len(TEXTS)))
        random.Random(7).shuffle(order)

        def work(thread_index: int) -> None:
            for position in order:
                if position % 4 == thread_index:
                    concurrent.add_document(
                        TEXTS[position],
                        f"doc{position}",
                        first_sid=bases[position],
                    )

        run_threads(4, work)
        assert len(concurrent) == len(TEXTS)
        assert concurrent.next_sid() == expected_sid
        for query, rows in expected.items():
            assert as_rows(concurrent.query(query)) == rows


def test_concurrent_ingest_without_planned_sids_is_consistent(run_threads):
    """Arrival-order sid assignment still yields a reference-identical corpus."""
    with KokoService(shards=4) as service:
        ingested: dict[str, object] = {}
        lock = threading.Lock()

        def work(thread_index: int) -> None:
            for position in range(len(TEXTS)):
                if position % 4 == thread_index:
                    document = service.add_document(TEXTS[position], f"doc{position}")
                    with lock:
                        ingested[document.doc_id] = document

        run_threads(4, work)
        assert len(service) == len(TEXTS)
        assert sorted(service.document_ids()) == sorted(ingested)
        # sids are globally unique across all concurrent reservations
        sids = [s.sid for d in ingested.values() for s in d]
        assert len(sids) == len(set(sids))
        # results match an unsharded engine over the same documents
        documents = sorted(ingested.values(), key=lambda d: d.sentences[0].sid)
        engine = KokoEngine(Corpus(name="reference", documents=documents))
        for query in (ENTITY_QUERY, CITY_QUERY):
            assert as_rows(service.query(query)) == as_rows(engine.execute(query))


def test_duplicate_doc_id_race_admits_exactly_one_writer(run_threads):
    with KokoService(shards=2) as service:
        outcomes: list[str] = []
        lock = threading.Lock()

        def work(thread_index: int) -> None:
            try:
                service.add_document(BASE_TEXTS[0], "contested")
            except ServiceError:
                with lock:
                    outcomes.append("rejected")
            else:
                with lock:
                    outcomes.append("won")

        run_threads(6, work)
        assert outcomes.count("won") == 1
        assert outcomes.count("rejected") == 5
        assert service.document_ids() == ["contested"]


def test_stale_first_sid_is_rejected():
    with KokoService() as service:
        service.add_document(BASE_TEXTS[0], "doc0")
        with pytest.raises(ServiceError):
            service.add_document(BASE_TEXTS[1], "doc1", first_sid=0)
        # an explicit fresh reservation works and advances the counter
        base = service.next_sid() + 10
        service.add_document(BASE_TEXTS[1], "doc1", first_sid=base)
        assert service.next_sid() > base


# ----------------------------------------------------------------------
# annotation pools
# ----------------------------------------------------------------------
def test_thread_annotation_pool_matches_inline():
    with KokoService(shards=2, annotation_workers=2) as pooled:
        for index, text in enumerate(BASE_TEXTS):
            pooled.add_document(text, f"doc{index}")
        with KokoService(shards=2) as inline:
            for index, text in enumerate(BASE_TEXTS):
                inline.add_document(text, f"doc{index}")
            for query in (ENTITY_QUERY, CITY_QUERY):
                assert as_rows(pooled.query(query)) == as_rows(inline.query(query))


def test_process_annotation_pool_matches_inline():
    with KokoService(annotation_workers=2, annotation_processes=True) as pooled:
        for index, text in enumerate(BASE_TEXTS[:3]):
            pooled.add_document(text, f"doc{index}")
        with KokoService() as inline:
            for index, text in enumerate(BASE_TEXTS[:3]):
                inline.add_document(text, f"doc{index}")
            assert as_rows(pooled.query(ENTITY_QUERY)) == as_rows(
                inline.query(ENTITY_QUERY)
            )


# ----------------------------------------------------------------------
# checkpoints drain staged ingests; warm restart stays identical
# ----------------------------------------------------------------------
def test_checkpoint_during_concurrent_ingest_recovers_identically(tmp_path, run_threads):
    path = tmp_path / "svc"
    service = KokoService(
        shards=4, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    checkpoint_errors: list[BaseException] = []
    done = threading.Event()

    def checkpointer() -> None:
        while not done.is_set():
            try:
                service.checkpoint()
            except BaseException as exc:  # pragma: no cover - surfaced below
                checkpoint_errors.append(exc)
                return

    snapshotter = threading.Thread(target=checkpointer)
    snapshotter.start()
    try:
        def work(thread_index: int) -> None:
            for position in range(len(TEXTS)):
                if position % 4 == thread_index:
                    service.add_document(TEXTS[position], f"doc{position}")

        run_threads(4, work)
    finally:
        done.set()
        snapshotter.join()
    assert not checkpoint_errors
    assert len(service) == len(TEXTS)
    expected = as_rows(service.query(ENTITY_QUERY))
    service.close()

    reopened = KokoService.open(path)
    try:
        assert len(reopened) == len(TEXTS)
        assert as_rows(reopened.query(ENTITY_QUERY)) == expected
    finally:
        reopened.close()


def test_removal_of_inflight_document_is_rejected():
    """A document mid-ingest is invisible to removal until it commits."""
    with KokoService() as service:
        release = threading.Event()
        entered = threading.Event()

        class SlowPipeline(Pipeline):
            def annotate(self, *args, **kwargs):
                entered.set()
                assert release.wait(5.0)
                return super().annotate(*args, **kwargs)

        service.pipeline = SlowPipeline()
        writer = threading.Thread(
            target=service.add_document, args=(BASE_TEXTS[0], "slow")
        )
        writer.start()
        try:
            assert entered.wait(5.0)
            with pytest.raises(ServiceError, match="still being ingested"):
                service.remove_document("slow")
            assert "slow" not in service.document_ids()
        finally:
            release.set()
            writer.join()
        assert "slow" in service.document_ids()
        service.remove_document("slow")


def test_failed_splice_after_wal_append_does_not_resurrect(tmp_path):
    """A WAL-logged add whose splice fails is compensated in the log, so
    replay nets to nothing and a retried id replays cleanly."""
    import shutil

    path = tmp_path / "svc"
    service = KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    try:
        service.add_document(BASE_TEXTS[0], "good")
        original = service._splice_into_shard

        def exploding(document):
            raise RuntimeError("splice blew up")

        service._splice_into_shard = exploding
        with pytest.raises(RuntimeError):
            service.add_document(BASE_TEXTS[1], "broken")
        assert sorted(service.document_ids()) == ["good"]
        service._splice_into_shard = original
        # the same id can be retried — and the WAL now holds
        # [add good, add broken, remove broken, add broken]
        service.add_document(BASE_TEXTS[1], "broken")
        # replay that exact log (no clean-close checkpoint folding)
        crash_dir = tmp_path / "crashed"
        shutil.copytree(path, crash_dir)
    finally:
        service.close()
    reopened = KokoService.open(crash_dir)
    try:
        assert sorted(reopened.document_ids()) == ["broken", "good"]
        assert as_rows(reopened.query(ENTITY_QUERY)) is not None
    finally:
        reopened.close()


def test_close_drains_inflight_staged_ingest(tmp_path):
    """close() waits for a claimed ingest to finish instead of closing the
    WAL underneath it."""
    service = KokoService(
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    )
    release = threading.Event()
    entered = threading.Event()

    class SlowPipeline(Pipeline):
        def annotate(self, *args, **kwargs):
            entered.set()
            assert release.wait(5.0)
            return super().annotate(*args, **kwargs)

    service.pipeline = SlowPipeline()
    outcome: list[object] = []

    def writer() -> None:
        try:
            outcome.append(service.add_document(BASE_TEXTS[0], "slow"))
        except BaseException as exc:  # pragma: no cover - asserted below
            outcome.append(exc)

    thread = threading.Thread(target=writer)
    thread.start()
    assert entered.wait(5.0)
    closer = threading.Thread(target=service.close)
    closer.start()
    release.set()
    thread.join()
    closer.join()
    assert not isinstance(outcome[0], BaseException)
    reopened = KokoService.open(tmp_path / "svc")
    try:
        assert reopened.document_ids() == ["slow"]
    finally:
        reopened.close()


def test_aborted_ingest_restores_consumed_reservation():
    """A transient failure after the claim gives the planned sid range back."""
    with KokoService() as service:
        base = service.reserve_sids(1)
        blowups = [RuntimeError("annotation worker died")]

        class FlakyPipeline(Pipeline):
            def annotate(self, *args, **kwargs):
                if blowups:
                    raise blowups.pop()
                return super().annotate(*args, **kwargs)

        service.pipeline = FlakyPipeline()
        with pytest.raises(RuntimeError):
            service.add_document("Anna ate a pie.", "doc0", first_sid=base)
        # the retry consumes the restored reservation deterministically
        document = service.add_document("Anna ate a pie.", "doc0", first_sid=base)
        assert document.sentences[0].sid == base


def test_undersized_reservation_is_rejected_but_kept():
    with KokoService() as service:
        base = service.reserve_sids(1)
        two_sentence = "Anna ate a pie. Paolo ate a croissant."
        with pytest.raises(ServiceError, match="reserved 1 ids"):
            service.add_document(two_sentence, "doc0", first_sid=base)
        # the reservation survives the failed attempt and still works for
        # a document it can hold
        service.add_document("Anna ate a pie.", "doc0", first_sid=base)
        assert service.document_ids() == ["doc0"]


# ----------------------------------------------------------------------
# async front end
# ----------------------------------------------------------------------
def test_async_front_end_matches_blocking_calls():
    async def scenario(service: KokoService):
        await asyncio.gather(
            *(
                service.aadd_document(text, f"doc{index}")
                for index, text in enumerate(BASE_TEXTS)
            )
        )
        single = await service.aquery(ENTITY_QUERY)
        batch = await service.aquery_batch([ENTITY_QUERY, CITY_QUERY])
        removed = await service.aremove_document("doc0")
        after = await service.aquery(ENTITY_QUERY)
        return single, batch, removed, after

    with KokoService(shards=2) as service:
        single, batch, removed, after = asyncio.run(scenario(service))
        assert len(service) == len(BASE_TEXTS) - 1
        assert removed.doc_id == "doc0"
        assert as_rows(batch[0]) == as_rows(single)
        assert as_rows(batch[1]) == as_rows(service.query(CITY_QUERY))
        assert as_rows(after) == as_rows(service.query(ENTITY_QUERY))


def test_async_calls_after_close_raise():
    service = KokoService()
    service.close()

    async def attempt():
        await service.aquery(CITY_QUERY)

    with pytest.raises(ServiceError):
        asyncio.run(attempt())
