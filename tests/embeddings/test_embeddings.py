"""Tests for the embedding substrate: vectors, PPMI, retrofit, expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings.cooccurrence import CooccurrenceCounter
from repro.embeddings.expansion import DescriptorExpander
from repro.embeddings.ontology import DomainOntology, default_ontology
from repro.embeddings.paraphrase import CounterFitter, ParaphraseLexicon
from repro.embeddings.ppmi import PpmiSvdEmbedder
from repro.embeddings.pretrained import build_default_vectors
from repro.embeddings.vectors import VectorStore
from repro.errors import EmbeddingError


class TestVectorStore:
    def test_add_and_similarity(self):
        store = VectorStore(dimensions=4)
        store.add("a", np.array([1.0, 0, 0, 0]))
        store.add("b", np.array([1.0, 0, 0, 0]))
        store.add("c", np.array([0, 1.0, 0, 0]))
        assert store.similarity("a", "b") == pytest.approx(1.0)
        assert store.similarity("a", "c") == pytest.approx(0.0)

    def test_identical_word_similarity_is_one(self):
        store = VectorStore(dimensions=4)
        assert store.similarity("zzz", "ZZZ") == 1.0

    def test_unknown_word_backfill_deterministic(self):
        store = VectorStore(dimensions=8)
        assert np.allclose(store.vector("mystery"), store.vector("mystery"))

    def test_backfill_disabled_raises(self):
        store = VectorStore(dimensions=4, backfill_unknown=False)
        with pytest.raises(EmbeddingError):
            store.vector("unknown")

    def test_wrong_dimension_rejected(self):
        store = VectorStore(dimensions=4)
        with pytest.raises(EmbeddingError):
            store.add("a", np.ones(3))

    def test_nearest(self):
        store = VectorStore(dimensions=3)
        store.add("a", np.array([1.0, 0, 0]))
        store.add("b", np.array([0.9, 0.1, 0]))
        store.add("c", np.array([0, 0, 1.0]))
        nearest = store.nearest("a", k=1)
        assert nearest[0][0] == "b"

    def test_phrase_similarity(self):
        store = VectorStore(dimensions=3)
        store.add("serves", np.array([1.0, 0, 0]))
        store.add("coffee", np.array([0, 1.0, 0]))
        store.add("sells", np.array([1.0, 0.05, 0]))
        assert store.phrase_similarity("serves coffee", "sells coffee") > 0.9

    def test_copy_independent(self):
        store = VectorStore(dimensions=3)
        store.add("a", np.array([1.0, 0, 0]))
        clone = store.copy()
        clone.add("a", np.array([0, 1.0, 0]))
        assert store.similarity("a", "a") == 1.0
        assert abs(float(np.dot(store.vector("a"), clone.vector("a")))) < 0.01

    @given(st.text(alphabet="abcdefgh", min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_backfilled_vectors_are_unit_norm(self, word):
        store = VectorStore(dimensions=16)
        assert np.linalg.norm(store.vector(word)) == pytest.approx(1.0)


class TestCooccurrenceAndPpmi:
    SENTENCES = [
        ["the", "cafe", "serves", "coffee"],
        ["the", "cafe", "serves", "espresso"],
        ["the", "shop", "sells", "coffee"],
        ["the", "shop", "sells", "espresso"],
        ["dogs", "chase", "cats", "daily"],
    ] * 3

    def test_counts_symmetric(self):
        counts = CooccurrenceCounter(window=2, min_count=1).count_token_lists(self.SENTENCES)
        assert counts.pair_counts[("cafe", "serves")] == counts.pair_counts[("serves", "cafe")]

    def test_min_count_filters_vocabulary(self):
        counts = CooccurrenceCounter(window=2, min_count=100).count_token_lists(self.SENTENCES)
        assert counts.vocabulary == []

    def test_ppmi_svd_shapes(self):
        counts = CooccurrenceCounter(window=2, min_count=1).count_token_lists(self.SENTENCES)
        store = PpmiSvdEmbedder(dimensions=8).fit(counts)
        assert len(store) == len(counts.vocabulary)
        assert store.vector("coffee").shape == (min(8, len(counts.vocabulary)),)

    def test_ppmi_distributional_similarity(self):
        counts = CooccurrenceCounter(window=2, min_count=1).count_token_lists(self.SENTENCES)
        store = PpmiSvdEmbedder(dimensions=8).fit(counts)
        # coffee and espresso share contexts; coffee and cats do not
        assert store.similarity("coffee", "espresso") > store.similarity("coffee", "cats")

    def test_empty_vocabulary_rejected(self):
        counts = CooccurrenceCounter(min_count=5).count_token_lists([["one", "off"]])
        with pytest.raises(EmbeddingError):
            PpmiSvdEmbedder().fit(counts)


class TestParaphraseAndCounterFitting:
    def test_lexicon_synonyms(self):
        lexicon = ParaphraseLexicon()
        assert "sell" in lexicon.synonyms("serve")
        assert lexicon.are_paraphrases("employ", "hire")
        assert not lexicon.are_paraphrases("coffee", "tea")

    def test_lexicon_antonyms(self):
        lexicon = ParaphraseLexicon()
        assert lexicon.are_antonyms("happy", "sad")
        assert not lexicon.are_antonyms("happy", "glad")

    def test_counterfit_pulls_synonyms_together(self):
        store = VectorStore(dimensions=16)
        rng = np.random.default_rng(0)
        for word in ["serve", "sell", "coffee", "tea"]:
            store.add(word, rng.standard_normal(16))
        before = store.similarity("serve", "sell")
        fitted = CounterFitter(iterations=5).fit(store)
        assert fitted.similarity("serve", "sell") > before

    def test_counterfit_pushes_topical_nonparaphrases_apart(self):
        store = build_default_vectors()
        assert store.similarity("coffee", "tea") < store.similarity("coffee", "espresso")

    def test_default_vectors_city_country(self):
        store = build_default_vectors()
        assert store.similarity("tokyo", "city") > store.similarity("tokyo", "country")
        assert store.similarity("china", "country") > store.similarity("china", "city")


class TestOntologyAndExpansion:
    def test_default_ontology_groups(self):
        onto = default_ontology()
        assert "cappuccino" in onto.related("coffee")
        assert onto.group_of("espresso") == "coffee_drinks"

    def test_custom_ontology(self):
        onto = DomainOntology()
        onto.add_group("drinks", {"mead", "cider"})
        assert onto.related("mead") == {"cider"}

    def test_expansion_includes_original_first(self):
        expanded = DescriptorExpander().expand("serves coffee")
        assert expanded[0].phrase == "serves coffee"
        assert expanded[0].score == 1.0

    def test_expansion_reaches_paraphrases(self):
        phrases = {e.phrase for e in DescriptorExpander().expand("serves coffee")}
        assert any("sell" in p for p in phrases)
        assert any("espresso" in p or "cappuccino" in p for p in phrases)

    def test_expansion_avoids_tea(self):
        phrases = {e.phrase for e in DescriptorExpander().expand("serves coffee")}
        assert "serves tea" not in phrases

    def test_expansion_respects_max(self):
        expander = DescriptorExpander(max_expansions=3)
        assert len(expander.expand("serves coffee")) <= 3

    def test_expansion_scores_in_unit_interval(self):
        for expanded in DescriptorExpander().expand("employs baristas"):
            assert 0.0 <= expanded.score <= 1.0

    def test_empty_descriptor(self):
        assert DescriptorExpander().expand("") == []

    def test_expansion_with_vectors_scores_by_similarity(self):
        vectors = build_default_vectors()
        expander = DescriptorExpander(vectors=vectors)
        expanded = {e.phrase: e.score for e in expander.expand("serves coffee")}
        assert expanded["serves coffee"] == 1.0
        others = [s for p, s in expanded.items() if p != "serves coffee"]
        assert others and all(s <= 1.0 for s in others)
