"""Property test: the columnar backend is observationally invisible.

For randomly generated corpora, the columnar and object-backed backends
must agree on everything a caller can see:

* the index sets themselves — identical posting sets, hierarchy paths and
  statistics (the shared equivalence assertion of ``tests/conftest.py``);
* full query answers through :class:`~repro.service.KokoService`, at both
  1 and 4 shards — identical result tuples, in the same order.

Corpora are drawn from the same word pool as the incremental-maintenance
property test, so the trees exercise repeated shapes (the merge-memo hit
path) as well as fresh ones.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing.koko_index import KokoIndexSet
from repro.nlp.pipeline import Pipeline
from repro.service import KokoService

QUERIES = (
    'extract e:Entity, d:Str from "t" if '
    '(/ROOT:{ a = //verb, b = a/dobj, d = (b.subtree) })',
    'extract x:Entity from "t" if (/ROOT:{ a = //"ate" })',
    'extract x:Entity from "t" if ()',
)

_WORDS = [
    "Anna", "ate", "delicious", "cheesecake", "the", "cafe", "in", "Tokyo",
    "serves", "coffee", "Paolo", "visited", "Beijing", "and", "pie",
]

_sentences = st.lists(st.sampled_from(_WORDS), min_size=3, max_size=8).map(
    lambda words: " ".join(words) + "."
)
_documents = st.lists(_sentences, min_size=1, max_size=3).map(" ".join)
_corpora = st.lists(_documents, min_size=1, max_size=4)

_PIPELINE = Pipeline()


def _rows(result):
    return [(t.doc_id, t.sid, t.values) for t in result]


@settings(max_examples=8, deadline=None)
@given(texts=_corpora)
def test_columnar_and_object_backends_agree(texts, assert_equivalent_indexes):
    corpus = _PIPELINE.annotate_corpus(texts, name="random")
    assert_equivalent_indexes(
        KokoIndexSet(columnar=True).build(corpus), KokoIndexSet().build(corpus)
    )
    for shards in (1, 4):
        expected = None
        for columnar in (False, True):
            with KokoService(
                shards=shards, columnar=columnar, use_default_vectors=False
            ) as service:
                for document in corpus.documents:
                    service.add_annotated_document(document)
                rows = [_rows(service.query(query)) for query in QUERIES]
            if expected is None:
                expected = rows
            else:
                assert rows == expected
