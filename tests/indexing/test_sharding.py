"""Tests for hash-partitioned index storage (indexing/sharding.py)."""

from __future__ import annotations

import pytest

from repro.indexing.koko_index import IndexStatistics, KokoIndexSet
from repro.indexing.sharding import ShardedIndexSet, shard_of
from repro.storage.database import Database


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_shard_of_is_stable_and_in_range(self):
        for doc_id in ("doc0", "doc1", "a-very-long-identifier", ""):
            for n in (1, 2, 4, 8):
                first = shard_of(doc_id, n)
                assert 0 <= first < n
                assert shard_of(doc_id, n) == first  # deterministic

    def test_shard_of_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            shard_of("doc0", 0)
        with pytest.raises(ValueError):
            ShardedIndexSet(0)

    def test_routing_spreads_documents(self):
        counts = [0, 0, 0, 0]
        for index in range(200):
            counts[shard_of(f"doc{index}", 4)] += 1
        assert all(count > 0 for count in counts)  # no empty shard at 200 docs

    def test_shard_for_matches_shard_id(self):
        sharded = ShardedIndexSet(4)
        assert len(sharded) == 4 and sharded.num_shards == 4
        for doc_id in ("a", "b", "c"):
            assert sharded.shard_for(doc_id) is sharded.shards[sharded.shard_id(doc_id)]


# ----------------------------------------------------------------------
# incremental maintenance per shard
# ----------------------------------------------------------------------
class TestShardedMaintenance:
    def test_build_routes_every_document_once(self, cafe_corpus):
        sharded = ShardedIndexSet(4).build(cafe_corpus)
        merged = sharded.statistics()
        unsharded = KokoIndexSet().build(cafe_corpus).statistics()
        assert merged.sentences == unsharded.sentences
        assert merged.tokens == unsharded.tokens
        assert merged.word_postings == unsharded.word_postings
        assert merged.entity_postings == unsharded.entity_postings
        # partitioning can only reduce cross-document node merging
        assert merged.pl_nodes >= unsharded.pl_nodes
        assert merged.pos_nodes >= unsharded.pos_nodes

    def test_incremental_add_equals_build(self, cafe_corpus, assert_equivalent_indexes):
        built = ShardedIndexSet(3).build(cafe_corpus)
        incremental = ShardedIndexSet(3)
        for document in cafe_corpus:
            incremental.add_document(document)
        for shard_built, shard_incremental in zip(built.shards, incremental.shards):
            assert_equivalent_indexes(shard_incremental, shard_built)

    def test_remove_restores_prior_state(self, cafe_corpus, assert_equivalent_indexes):
        documents = cafe_corpus.documents
        reference = ShardedIndexSet(2)
        for document in documents[:-1]:
            reference.add_document(document)
        mutated = ShardedIndexSet(2)
        for document in documents:
            mutated.add_document(document)
        touched = mutated.remove_document(documents[-1])
        assert touched is mutated.shard_for(documents[-1].doc_id)
        for shard_reference, shard_mutated in zip(reference.shards, mutated.shards):
            assert_equivalent_indexes(shard_mutated, shard_reference)

    def test_statistics_by_shard_and_bytes(self, paper_corpus):
        sharded = ShardedIndexSet(2).build(paper_corpus)
        per_shard = sharded.statistics_by_shard()
        assert len(per_shard) == 2
        assert sum(s.sentences for s in per_shard) == sharded.statistics().sentences
        assert sharded.approximate_bytes() == sum(
            s.approximate_bytes for s in per_shard
        )


# ----------------------------------------------------------------------
# statistics merging
# ----------------------------------------------------------------------
class TestMergedStatistics:
    def test_merged_recomputes_compression_from_totals(self):
        parts = [
            IndexStatistics(
                sentences=2, tokens=100, build_seconds=0.5, word_postings=100,
                entity_postings=5, pl_nodes=10, pos_nodes=20,
                pl_compression=0.9, pos_compression=0.8, approximate_bytes=1000,
            ),
            IndexStatistics(
                sentences=3, tokens=300, build_seconds=0.25, word_postings=300,
                entity_postings=7, pl_nodes=30, pos_nodes=60,
                pl_compression=0.9, pos_compression=0.8, approximate_bytes=3000,
            ),
        ]
        merged = IndexStatistics.merged(parts)
        assert merged.sentences == 5 and merged.tokens == 400
        assert merged.word_postings == 400 and merged.entity_postings == 12
        assert merged.build_seconds == pytest.approx(0.75)
        assert merged.pl_compression == pytest.approx(1.0 - 40 / 400)
        assert merged.pos_compression == pytest.approx(1.0 - 80 / 400)
        assert merged.approximate_bytes == 4000

    def test_merged_of_empty_parts_is_zero(self):
        merged = IndexStatistics.merged([])
        assert merged.tokens == 0
        assert merged.pl_compression == 0.0 and merged.pos_compression == 0.0


# ----------------------------------------------------------------------
# materialisation
# ----------------------------------------------------------------------
def test_to_database_writes_suffixed_relations(paper_corpus):
    sharded = ShardedIndexSet(2).build(paper_corpus)
    database = sharded.to_database(Database("sharded"))
    for shard_index in range(2):
        for relation in ("W", "E", "PL", "POS"):
            assert f"{relation}.{shard_index}" in database


def test_from_database_inverts_the_suffixed_layout(paper_corpus):
    sharded = ShardedIndexSet(2).build(paper_corpus)
    database = sharded.to_database(Database("sharded"))
    documents_by_shard = [
        [d for d in paper_corpus if sharded.shard_id(d.doc_id) == i] for i in range(2)
    ]
    restored = ShardedIndexSet.from_database(
        database, 2, documents_by_shard=documents_by_shard
    )
    assert restored.num_shards == 2
    for original, rebuilt in zip(sharded.shards, restored.shards):
        assert rebuilt.word_index.vocabulary() == original.word_index.vocabulary()
        for word in original.word_index.vocabulary():
            assert rebuilt.word_index.lookup(word) == original.word_index.lookup(word)
        assert sorted(rebuilt.entity_index.all_postings()) == sorted(
            original.entity_index.all_postings()
        )
        steps = [("/", "root"), ("//", "*")]
        assert rebuilt.pl_index.lookup_path(steps) == original.pl_index.lookup_path(steps)
    merged_original = sharded.statistics()
    merged_restored = restored.statistics()
    assert (merged_restored.sentences, merged_restored.tokens) == (
        merged_original.sentences,
        merged_original.tokens,
    )
