"""Tests for path decomposition, DPLI-style lookup, and the baseline indexes."""

from __future__ import annotations

import pytest

from repro.indexing.baselines import (
    AdvInvertedIndex,
    InvertedIndex,
    KokoMultiIndex,
    SubtreeIndex,
    UnsupportedQueryError,
    all_index_designs,
)
from repro.indexing.decompose import (
    candidate_sentences_for_query,
    decompose_path,
    lookup_decomposed,
)
from repro.indexing.exact import (
    count_extractions,
    match_path_in_sentence,
    matching_sentences,
    sentence_matches_query,
)
from repro.indexing.query_ir import (
    CHILD,
    DESCENDANT,
    KIND_ANY,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePatternQuery,
    path,
    step,
)
from repro.evaluation.metrics import index_effectiveness

# //verb/dobj//"delicious" — the running example path of Section 4.2
DELICIOUS_PATH = path(
    step(DESCENDANT, "verb", KIND_POS),
    step(CHILD, "dobj", KIND_PARSE_LABEL),
    step(DESCENDANT, "delicious", KIND_WORD),
)
DELICIOUS_QUERY = TreePatternQuery(name="delicious", paths=[DELICIOUS_PATH])


class TestDecomposition:
    def test_example_4_2(self):
        """The decomposition of Example 4.2: PL, POS and word views."""
        decomposed = decompose_path(DELICIOUS_PATH)
        assert decomposed.parse_label_path.render() == "//*/dobj//*"
        assert decomposed.pos_path.render() == "//verb/*//*"
        assert [w for w, _ in decomposed.word_steps] == ["delicious"]

    def test_word_chain_gaps(self):
        p = path(
            step(DESCENDANT, "ate", KIND_WORD),
            step(CHILD, "*", KIND_ANY),
            step(DESCENDANT, "delicious", KIND_WORD),
        )
        decomposed = decompose_path(p)
        assert decomposed.word_steps == (("ate", 0), ("delicious", 2))

    def test_lookup_decomposed_matches_exact(self, paper_corpus, paper_indexes):
        postings = lookup_decomposed(paper_indexes, DELICIOUS_PATH)
        exact_sids = matching_sentences(paper_corpus, DELICIOUS_QUERY)
        assert {p.sid for p in postings} == exact_sids
        assert {p.word for p in postings} == {"delicious"}

    def test_lookup_word_final_step(self, paper_indexes):
        p = path(step(DESCENDANT, "ate", KIND_WORD))
        postings = lookup_decomposed(paper_indexes, p)
        assert len(postings) == 3

    def test_lookup_pos_final_step_under_word(self, paper_indexes):
        # //"ate"/dobj — dobj children under the word "ate"
        p = path(
            step(DESCENDANT, "ate", KIND_WORD),
            step(CHILD, "dobj", KIND_PARSE_LABEL),
        )
        postings = lookup_decomposed(paper_indexes, p)
        assert {p_.word for p_ in postings} >= {"cream", "cheesecake"}

    def test_candidate_sentences_completeness(self, happy_corpus):
        """Index candidates must be a superset of the truly matching sentences."""
        from repro.corpora.synthetic_queries import generate_tree_benchmark

        indexes = KokoMultiIndex().build(happy_corpus)
        for benchmark_query in generate_tree_benchmark(happy_corpus, queries_per_setting=1)[:40]:
            truth = matching_sentences(happy_corpus, benchmark_query.query)
            candidates = indexes.candidate_sentences(benchmark_query.query)
            assert truth <= candidates, benchmark_query.query.render()


class TestExactMatching:
    def test_match_path_in_sentence(self, paper_sentence_1):
        matches = match_path_in_sentence(paper_sentence_1, DELICIOUS_PATH)
        assert matches == [9]

    def test_root_anchored_path(self, paper_sentence_2):
        p = path(step(CHILD, "root", KIND_PARSE_LABEL), step(CHILD, "dobj", KIND_PARSE_LABEL))
        assert match_path_in_sentence(paper_sentence_2, p) == [4]

    def test_no_match(self, paper_sentence_2):
        p = path(step(DESCENDANT, "zebra", KIND_WORD))
        assert match_path_in_sentence(paper_sentence_2, p) == []

    def test_sentence_matches_query_all_paths(self, paper_sentence_1):
        query = TreePatternQuery(
            name="q",
            paths=[
                path(step(DESCENDANT, "verb", KIND_POS)),
                path(step(DESCENDANT, "zebra", KIND_WORD)),
            ],
        )
        assert not sentence_matches_query(paper_sentence_1, query)

    def test_count_extractions(self, paper_corpus):
        assert count_extractions(paper_corpus, DELICIOUS_QUERY) == 2


class TestBaselineIndexes:
    def test_all_designs_listed(self):
        names = [cls().name for cls in all_index_designs()]
        assert names == ["INVERTED", "ADVINVERTED", "SUBTREE", "KOKO"]

    def test_inverted_ignores_structure(self, paper_corpus):
        index = InvertedIndex().build(paper_corpus)
        # both sentences contain "ate" + dobj + delicious labels somewhere,
        # so the structure-agnostic index returns both
        candidates = index.candidate_sentences(DELICIOUS_QUERY)
        assert candidates == {0, 1}

    def test_advinverted_checks_structure(self, paper_corpus):
        index = AdvInvertedIndex().build(paper_corpus)
        truth = matching_sentences(paper_corpus, DELICIOUS_QUERY)
        assert index.candidate_sentences(DELICIOUS_QUERY) == truth

    def test_subtree_rejects_words_and_wildcards(self, paper_corpus):
        index = SubtreeIndex().build(paper_corpus)
        assert not index.supports(DELICIOUS_QUERY)
        with pytest.raises(UnsupportedQueryError):
            index.candidate_sentences(DELICIOUS_QUERY)

    def test_subtree_supports_label_only_queries(self, paper_corpus):
        index = SubtreeIndex().build(paper_corpus)
        query = TreePatternQuery(
            name="labels",
            paths=[path(step(CHILD, "root", KIND_PARSE_LABEL), step(CHILD, "dobj", KIND_PARSE_LABEL))],
        )
        assert index.supports(query)
        assert index.candidate_sentences(query) == {0, 1}

    def test_koko_adapter_matches_exact_on_paper_query(self, paper_corpus):
        index = KokoMultiIndex().build(paper_corpus)
        truth = matching_sentences(paper_corpus, DELICIOUS_QUERY)
        assert index.candidate_sentences(DELICIOUS_QUERY) == truth

    def test_size_ordering_matches_paper(self, happy_corpus):
        """Figure 6(b): KOKO smallest, INVERTED < ADVINVERTED < SUBTREE."""
        sizes = {
            cls().name: cls().build(happy_corpus).approximate_bytes()
            for cls in all_index_designs()
        }
        assert sizes["KOKO"] < sizes["INVERTED"]
        assert sizes["INVERTED"] < sizes["ADVINVERTED"]
        assert sizes["ADVINVERTED"] < sizes["SUBTREE"]

    def test_effectiveness_ordering_matches_paper(self, happy_corpus):
        """Figures 7-8 (b): KOKO ~ ADVINVERTED ~ 1.0 > INVERTED."""
        from repro.corpora.synthetic_queries import generate_tree_benchmark

        queries = generate_tree_benchmark(happy_corpus, queries_per_setting=1)[:30]
        indexes = {cls().name: cls().build(happy_corpus) for cls in all_index_designs()}
        effectiveness = {name: [] for name in indexes}
        for benchmark_query in queries:
            truth = matching_sentences(happy_corpus, benchmark_query.query)
            for name, index in indexes.items():
                if not index.supports(benchmark_query.query):
                    continue
                candidates = index.candidate_sentences(benchmark_query.query)
                effectiveness[name].append(index_effectiveness(candidates, truth))
        mean = {n: sum(v) / len(v) for n, v in effectiveness.items() if v}
        assert mean["KOKO"] >= 0.95
        assert mean["ADVINVERTED"] >= 0.95
        assert mean["INVERTED"] < mean["KOKO"]

    def test_build_records_time(self, paper_corpus):
        index = InvertedIndex().build(paper_corpus)
        assert index.build_seconds >= 0.0
