"""Tests for postings, the word/entity indexes, and the hierarchy indexes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing.entity_index import EntityIndex
from repro.indexing.hierarchy import parse_label_index, pos_tag_index
from repro.indexing.koko_index import KokoIndexSet
from repro.indexing.postings import (
    Posting,
    ancestor_of,
    join_ancestor,
    join_same_token,
    parent_of,
    posting_for_token,
    union,
)
from repro.indexing.word_index import WordIndex
from repro.storage.database import Database


class TestPostings:
    def test_posting_for_token_matches_paper_example(self, paper_sentence_2):
        # Example 3.2: ate in sentence 1 -> (1,1,0-12,0)
        posting = posting_for_token(paper_sentence_2, 1)
        assert (posting.tid, posting.left, posting.right, posting.depth) == (1, 0, 12, 0)

    def test_delicious_posting(self, paper_sentence_1):
        posting = posting_for_token(paper_sentence_1, 9)
        assert posting.word == "delicious"
        assert posting.depth >= 2

    def test_parent_of_rule(self, paper_sentence_2):
        ate = posting_for_token(paper_sentence_2, 1)
        cheesecake = posting_for_token(paper_sentence_2, 4)
        assert parent_of(ate, cheesecake)
        assert not parent_of(cheesecake, ate)

    def test_ancestor_of_with_gap(self, paper_sentence_1):
        ate = posting_for_token(paper_sentence_1, 1)
        delicious = posting_for_token(paper_sentence_1, 9)
        assert ancestor_of(ate, delicious, min_gap=2)
        assert not ancestor_of(ate, delicious, min_gap=5)

    def test_union_deduplicates_and_sorts(self):
        a = Posting(0, 1, 0, 5, 0)
        b = Posting(0, 1, 0, 5, 0)
        c = Posting(1, 0, 0, 0, 1)
        merged = union([[a], [b, c]])
        assert merged == [a, c]

    def test_comparisons_ignore_word(self):
        """Regression: ``word`` is a display annotation, not identity —
        identical quintuples with different surface case (original token
        text vs a restored lower-cased W key) must compare and hash equal,
        so sort order never depends on posting provenance."""
        a = Posting(0, 1, 0, 5, 0, "Ate")
        b = Posting(0, 1, 0, 5, 0, "ate")
        assert a == b
        assert hash(a) == hash(b)
        assert not (a < b) and not (b < a)
        # and ordering is driven purely by the quintuple fields
        c = Posting(0, 0, 0, 5, 0, "zzz")
        assert sorted([a, c]) == [c, a]

    def test_join_same_token(self):
        a = Posting(0, 3, 3, 3, 2, "x")
        b = Posting(0, 3, 3, 3, 2, "y")
        c = Posting(0, 4, 4, 4, 2)
        assert join_same_token([a, c], [b]) == [a]

    def test_join_ancestor_example_4_4(self, paper_corpus):
        """Example 4.4: join 'ate' and 'delicious' postings with gap 2."""
        index = WordIndex()
        index.add_corpus(paper_corpus)
        ate = index.lookup("ate")
        delicious = index.lookup("delicious")
        joined = join_ancestor(ate, delicious, min_gap=2)
        assert {(p.sid, p.word) for p in joined} == {(0, "delicious"), (1, "delicious")}

    @given(
        st.integers(0, 5), st.integers(0, 20), st.integers(0, 20), st.integers(0, 6),
        st.integers(0, 5), st.integers(0, 20), st.integers(0, 20), st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_parent_implies_ancestor(self, s1, l1, r1, d1, s2, l2, r2, d2):
        if r1 < l1 or r2 < l2:
            return
        p = Posting(s1, l1, l1, r1, d1)
        c = Posting(s2, l2, l2, r2, d2)
        if parent_of(p, c):
            assert ancestor_of(p, c)


class TestWordAndEntityIndexes:
    def test_word_index_lookup_case_insensitive(self, paper_corpus):
        index = WordIndex()
        index.add_corpus(paper_corpus)
        assert len(index.lookup("ATE")) == 3  # twice in sentence 0, once in sentence 1

    def test_word_index_vocabulary(self, paper_corpus):
        index = WordIndex()
        index.add_corpus(paper_corpus)
        assert "delicious" in index
        assert "zebra" not in index

    def test_word_index_materialisation(self, paper_corpus):
        index = WordIndex()
        index.add_corpus(paper_corpus)
        table = index.to_table(Database(), "W")
        assert len(table) == len(index)
        assert table.has_index("by_word")

    def test_entity_index_by_text_and_type(self, paper_corpus):
        index = EntityIndex()
        index.add_corpus(paper_corpus)
        assert len(index.lookup_text("cheesecake")) == 1
        assert len(index.lookup_type("Entity")) == len(index)
        assert all(p.etype == "PERSON" for p in index.lookup_type("Person"))

    def test_entity_index_example_3_2(self, paper_corpus):
        index = EntityIndex()
        index.add_corpus(paper_corpus)
        chunk = index.lookup_text("chocolate ice cream")
        assert len(chunk) == 1
        assert (chunk[0].left, chunk[0].right) == (3, 5)

    def test_entity_index_materialisation(self, paper_corpus):
        index = EntityIndex()
        index.add_corpus(paper_corpus)
        table = index.to_table(Database(), "E")
        assert len(table) == len(index)


class TestHierarchyIndexes:
    def test_merging_reduces_nodes(self, happy_corpus):
        index = parse_label_index()
        index.add_corpus(happy_corpus)
        assert index.node_count < index.token_count
        assert 0.0 < index.compression_ratio() < 1.0

    def test_pl_index_has_single_root_child(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        top_labels = {
            node.label for node in index.nodes() if node.depth == 0
        }
        assert top_labels == {"root"}

    def test_example_3_3_merged_postings(self, paper_corpus):
        """/root/dobj posting list contains cheesecake and cream (Example 3.3)."""
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        postings = index.lookup_path([("/", "root"), ("/", "dobj")])
        words = {p.word for p in postings}
        assert {"cream", "cheesecake"} <= words

    def test_wildcard_lookup(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        all_tokens = index.lookup_path([("//", "*")])
        assert len(all_tokens) == paper_corpus.num_tokens

    def test_missing_path_returns_empty(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        assert index.lookup_path([("/", "root"), ("/", "xcomp"), ("/", "xcomp")]) == []

    def test_pos_index_lookup(self, paper_corpus):
        index = pos_tag_index()
        index.add_corpus(paper_corpus)
        verbs = index.lookup_path([("//", "VERB")])
        assert {p.word.lower() for p in verbs} >= {"ate", "was", "bought"}

    def test_node_id_recorded_per_token(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        sentence = paper_corpus.documents[0].sentences[0]
        for token in sentence:
            assert index.node_id_of(sentence.sid, token.index) >= 0

    def test_closure_table_export(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        closure = index.to_closure_table()
        assert len(closure) == index.node_count + 1  # + dummy

    def test_unique_paths(self, paper_corpus):
        index = parse_label_index()
        index.add_corpus(paper_corpus)
        paths = [node.path() for node in index.nodes()]
        assert len(paths) == len(set(paths))


class TestKokoIndexSet:
    def test_statistics(self, paper_indexes):
        stats = paper_indexes.statistics()
        assert stats.sentences == 2
        assert stats.tokens == 30
        assert stats.word_postings == 30
        assert stats.pl_nodes > 0
        assert stats.approximate_bytes > 0

    def test_word_index_carries_hierarchy_node_ids(self, paper_indexes):
        plid, posid = paper_indexes.word_index.node_ids(0, 1)
        assert plid >= 0 and posid >= 0
        assert paper_indexes.pl_index.node_by_id(plid).label == "root"

    def test_materialise_all_relations(self, paper_indexes):
        db = Database()
        paper_indexes.to_database(db)
        for name in ("W", "E", "PL", "POS"):
            assert db.has_table(name)
