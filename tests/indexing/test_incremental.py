"""Incremental index maintenance: add/remove must match from-scratch builds.

The service layer relies on two equivalences:

* **add** — ``KokoIndexSet().build(corpus)`` and a sequence of
  ``add_document`` calls over the same documents produce identical postings,
  hierarchy nodes and statistics (bit-for-bit, including node ids);
* **remove** — removing documents leaves the index set equivalent (same
  postings and same hierarchy *paths*; node ids may differ because pruning
  frees ids that a fresh build never allocates) to an add-only build over
  the surviving documents.

The equivalence assertion itself lives in ``tests/conftest.py``
(:func:`assert_index_sets_equivalent`), shared with the service tests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing.koko_index import KokoIndexSet
from repro.nlp.pipeline import Pipeline
from repro.nlp.types import Corpus


def _incremental_build(corpus: Corpus) -> KokoIndexSet:
    index_set = KokoIndexSet()
    for document in corpus:
        index_set.add_document(document)
    return index_set


# ----------------------------------------------------------------------
# add-path equivalence (two real corpora, per the acceptance criteria)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("corpus_fixture", ["paper_corpus", "cafe_corpus"])
def test_add_document_matches_build(corpus_fixture, request, assert_equivalent_indexes):
    corpus = request.getfixturevalue(corpus_fixture)
    built = KokoIndexSet().build(corpus)
    incremental = _incremental_build(corpus)
    assert_equivalent_indexes(incremental, built)
    # identical insertion order means even node ids coincide
    assert {
        n.node_id for n in incremental.pl_index.nodes()
    } == {n.node_id for n in built.pl_index.nodes()}


# ----------------------------------------------------------------------
# remove path
# ----------------------------------------------------------------------
def test_remove_document_matches_add_only_of_survivors(
    paper_corpus, pipeline, assert_equivalent_indexes
):
    extra = pipeline.annotate(
        "cities in asian countries such as Beijing and Tokyo.",
        doc_id="extra",
        first_sid=paper_corpus.num_sentences,
    )
    full = _incremental_build(paper_corpus)
    full.add_document(extra)
    full.remove_document(paper_corpus.documents[0])

    survivors = KokoIndexSet()
    for document in paper_corpus.documents[1:]:
        survivors.add_document(document)
    survivors.add_document(extra)
    assert_equivalent_indexes(full, survivors)


def test_remove_everything_leaves_empty_indexes(paper_corpus):
    index_set = _incremental_build(paper_corpus)
    for document in paper_corpus:
        index_set.remove_document(document)
    stats = index_set.statistics()
    assert stats.sentences == 0
    assert stats.tokens == 0
    assert stats.word_postings == 0
    assert stats.entity_postings == 0
    assert stats.pl_nodes == 0
    assert stats.pos_nodes == 0
    assert index_set.word_index.vocabulary() == []


# ----------------------------------------------------------------------
# property-style: random corpora, random removals
# ----------------------------------------------------------------------
_WORDS = [
    "Anna", "ate", "delicious", "cheesecake", "the", "cafe", "in", "Tokyo",
    "serves", "coffee", "Paolo", "visited", "Beijing", "and", "pie",
]

_sentences = st.lists(st.sampled_from(_WORDS), min_size=3, max_size=8).map(
    lambda words: " ".join(words) + "."
)
_documents = st.lists(_sentences, min_size=1, max_size=3).map(" ".join)
_corpora = st.lists(_documents, min_size=1, max_size=4)

_PIPELINE = Pipeline()


@settings(max_examples=15, deadline=None)
@given(texts=_corpora, data=st.data())
def test_random_corpora_add_remove_equivalence(texts, data, assert_equivalent_indexes):
    corpus = _PIPELINE.annotate_corpus(texts, name="random")
    built = KokoIndexSet().build(corpus)
    incremental = _incremental_build(corpus)
    assert_equivalent_indexes(incremental, built)

    # remove a random subset; the survivors must match an add-only build
    doomed = data.draw(
        st.sets(st.sampled_from(range(len(corpus.documents)))), label="doomed"
    )
    for position in doomed:
        incremental.remove_document(corpus.documents[position])
    survivors = KokoIndexSet()
    for position, document in enumerate(corpus.documents):
        if position not in doomed:
            survivors.add_document(document)
    assert_equivalent_indexes(incremental, survivors)
