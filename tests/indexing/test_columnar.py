"""Tests for the columnar postings engine.

Three layers, mirroring ``src/repro/indexing/columnar.py``:

* :class:`ColumnarPostings` — the delta/main store itself (append order,
  compaction, sid removal, identity keys);
* the ``join_*_block`` vectorized posting algebra, compared against the
  object-backed joins of ``repro.indexing.postings``;
* backend equivalence — ``KokoIndexSet(columnar=True)`` must be
  observationally identical to the object-backed build (postings,
  hierarchy paths, node ids, statistics) across batch builds, incremental
  adds, removals, single-sentence splices and ``to_columnar`` conversion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexing.columnar import (
    ColumnarPostings,
    PostingBlock,
    StringInterner,
    join_ancestor_block,
    join_same_token_block,
    parent_of_block,
)
from repro.indexing.hierarchy import parse_label_index
from repro.indexing.koko_index import KokoIndexSet
from repro.indexing.postings import (
    Posting,
    join_ancestor,
    join_same_token,
    parent_of,
    posting_for_token,
)
from repro.indexing.word_index import WordIndex


def _int(values):
    return np.asarray(list(values), np.int64)


def _block(postings: list[Posting], interner: StringInterner) -> PostingBlock:
    ordered = sorted(postings)  # join blocks require ascending sentence ids
    return PostingBlock(
        _int(p.sid for p in ordered),
        _int(p.tid for p in ordered),
        _int(p.left for p in ordered),
        _int(p.right for p in ordered),
        _int(p.depth for p in ordered),
        _int(interner.intern(p.word) for p in ordered),
        interner,
    )


class TestStringInterner:
    def test_intern_many_matches_intern(self):
        a, b = StringInterner(), StringInterner()
        texts = ["ate", "pie", "ate", "Anna", "pie"]
        assert a.intern_many(texts) == [b.intern(t) for t in texts]
        assert [a.text(i) for i in range(len(a))] == ["ate", "pie", "Anna"]


class TestColumnarPostings:
    def test_first_column_must_be_sid(self):
        with pytest.raises(ValueError, match="sid"):
            ColumnarPostings(("tid", "sid"))

    def test_per_key_rows_keep_insertion_order_across_compaction(self):
        store = ColumnarPostings(("sid", "tid"))
        kid_a = store.intern_key("a")
        kid_b = store.intern_key("b")
        store.append_batch([kid_a, kid_b, kid_a], ([0, 0, 1], [3, 1, 2]))
        before = tuple(col.tolist() for col in store.arrays_for_key(kid_a))
        store.compact()
        after = tuple(col.tolist() for col in store.arrays_for_key(kid_a))
        assert before == after == ([0, 1], [3, 2])
        # appends after compaction land in the delta and still read back
        store.append_batch([kid_a], ([2], [7]))
        assert store.arrays_for_key(kid_a)[1].tolist() == [3, 2, 7]
        assert store.arrays_for_key(kid_b)[1].tolist() == [1]

    def test_remove_sid_drops_rows_for_every_key(self):
        store = ColumnarPostings(("sid", "tid"))
        kids = [store.intern_key(k) for k in ("a", "b", "a")]
        store.append_batch(kids, ([0, 0, 1], [0, 1, 2]))
        store.remove_sid(0)
        assert store.total_rows == 1
        assert store.arrays_for_key(kids[0])[0].tolist() == [1]
        assert store.key_count(kids[1]) == 0
        assert store.live_key_ids() == [kids[0]]

    def test_identity_keys(self):
        store = ColumnarPostings(("sid",), identity_keys=True)
        with pytest.raises(ValueError, match="non-negative"):
            store.intern_key(-1)
        store.ensure_key_capacity(5)
        store.append_batch([4, 2], ([0], [1]))
        assert store.key_id(4) == 4
        assert store.key_id(7) is None
        assert store.key_of(2) == 2

    def test_large_batches_trigger_automatic_compaction(self):
        store = ColumnarPostings(("sid", "tid"))
        kid = store.intern_key("a")
        rows = 5000  # past the 4096-row delta threshold
        store.append_batch([kid] * rows, (list(range(rows)), [0] * rows))
        assert store.total_rows == rows
        assert not store._delta_kid  # the delta was folded into main
        assert store.arrays_for_key(kid)[0].tolist() == list(range(rows))


class TestBlockAlgebra:
    def test_join_ancestor_block_matches_object(self, paper_corpus):
        index = WordIndex()
        index.add_corpus(paper_corpus)
        interner = StringInterner()
        ate = index.lookup("ate")
        delicious = index.lookup("delicious")
        for gap in (1, 2, 5):
            expected = sorted(join_ancestor(ate, delicious, min_gap=gap))
            got = join_ancestor_block(
                _block(ate, interner), _block(delicious, interner), min_gap=gap
            ).materialize()
            assert sorted(got) == expected

    def test_join_same_token_block_matches_object(self):
        interner = StringInterner()
        left = [Posting(0, 3, 3, 3, 2, "x"), Posting(0, 4, 4, 4, 2), Posting(1, 3, 3, 3, 1)]
        right = [Posting(0, 3, 3, 3, 2, "y"), Posting(1, 0, 0, 5, 0)]
        expected = sorted(join_same_token(left, right))
        got = join_same_token_block(
            _block(left, interner), _block(right, interner)
        ).materialize()
        assert sorted(got) == expected

    def test_parent_of_block_matches_object(self, paper_sentence_2):
        interner = StringInterner()
        postings = [posting_for_token(paper_sentence_2, t) for t in range(len(paper_sentence_2))]
        ate = [posting_for_token(paper_sentence_2, 1)]
        mask = parent_of_block(_block(ate, interner), _block(postings, interner))
        block = _block(postings, interner)
        for kept, child in zip(mask.tolist(), block.materialize()):
            assert kept == parent_of(ate[0], child)


class TestBackendEquivalence:
    @pytest.mark.parametrize("corpus_fixture", ["paper_corpus", "happy_corpus"])
    def test_build_matches_object_backend(
        self, corpus_fixture, request, assert_equivalent_indexes
    ):
        corpus = request.getfixturevalue(corpus_fixture)
        columnar = KokoIndexSet(columnar=True).build(corpus)
        object_backed = KokoIndexSet().build(corpus)
        assert_equivalent_indexes(columnar, object_backed)
        # the columnar trie walk reproduces the recursive merge order, so
        # even the hierarchy node ids coincide
        assert {n.node_id for n in columnar.pl_index.nodes()} == {
            n.node_id for n in object_backed.pl_index.nodes()
        }

    def test_incremental_add_matches_batch_build(
        self, paper_corpus, assert_equivalent_indexes
    ):
        incremental = KokoIndexSet(columnar=True)
        for document in paper_corpus:
            incremental.add_document(document)
        assert_equivalent_indexes(
            incremental, KokoIndexSet(columnar=True).build(paper_corpus)
        )

    def test_sentence_splice_matches_batch_build(
        self, paper_corpus, assert_equivalent_indexes
    ):
        """The single-sentence splice is the batch splice of one sentence."""
        one_by_one = KokoIndexSet(columnar=True)
        for _, sentence in paper_corpus.all_sentences():
            one_by_one.add_sentence(sentence)
        assert_equivalent_indexes(
            one_by_one, KokoIndexSet(columnar=True).build(paper_corpus)
        )

    def test_remove_matches_add_only_survivors(
        self, paper_corpus, assert_equivalent_indexes
    ):
        full = KokoIndexSet(columnar=True).build(paper_corpus)
        full.remove_document(paper_corpus.documents[0])
        survivors = KokoIndexSet(columnar=True)
        for document in paper_corpus.documents[1:]:
            survivors.add_document(document)
        assert_equivalent_indexes(full, survivors)

    def test_to_columnar_conversion_is_equivalent(
        self, paper_corpus, assert_equivalent_indexes
    ):
        converted = KokoIndexSet().build(paper_corpus).to_columnar()
        assert converted.columnar
        assert_equivalent_indexes(
            converted, KokoIndexSet(columnar=True).build(paper_corpus)
        )

    def test_database_round_trip(self, paper_corpus, assert_equivalent_indexes):
        from repro.storage.database import Database

        columnar = KokoIndexSet(columnar=True).build(paper_corpus)
        database = columnar.to_database(Database())
        restored = KokoIndexSet.from_database(
            database, documents=paper_corpus.documents
        )
        assert_equivalent_indexes(restored.to_columnar(), columnar)


class TestMergeMemo:
    def test_identical_tree_shapes_share_the_walk(self):
        index = parse_label_index(columnar=True)
        children = ((1, 2), (), ())
        labels = ["root", "nsubj", "dobj"]
        first = index.merge_tree(0, children, labels)
        second = index.merge_tree(0, children, labels)
        assert second is first  # memo hit returns the cached list itself
        assert index.merge_tree(0, children, ["root", "dobj", "nsubj"]) != first

    def test_remove_clears_the_memo(self, paper_corpus):
        indexes = KokoIndexSet(columnar=True).build(paper_corpus)
        assert indexes.pl_index._merge_memo
        indexes.remove_document(paper_corpus.documents[0])
        assert not indexes.pl_index._merge_memo
        assert not indexes.pos_index._merge_memo

    def test_readd_after_remove_matches_fresh_build(
        self, paper_corpus, assert_equivalent_indexes
    ):
        """Node pruning invalidates memoised ids; re-merging must rebuild."""
        indexes = KokoIndexSet(columnar=True).build(paper_corpus)
        indexes.remove_document(paper_corpus.documents[0])
        indexes.add_document(paper_corpus.documents[0])
        assert_equivalent_indexes(
            indexes, KokoIndexSet(columnar=True).build(paper_corpus)
        )
