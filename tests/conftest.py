"""Shared fixtures for the test suite.

Expensive objects (the pipeline, annotated corpora, index sets, engines) are
session scoped so the suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.corpora.cafe_blogs import BARISTAMAG, generate_cafe_corpus
from repro.corpora.happydb import generate_happydb_corpus
from repro.corpora.wikipedia import generate_wikipedia_corpus
from repro.indexing.koko_index import KokoIndexSet
from repro.koko.engine import KokoEngine
from repro.nlp.pipeline import Pipeline

# The two running-example sentences of the paper (Figure 1 / Example 3.1).
PAPER_SENTENCE_1 = (
    "I ate a chocolate ice cream, which was delicious, and also ate a pie."
)
PAPER_SENTENCE_2 = (
    "Anna ate some delicious cheesecake that she bought at a grocery store."
)


@pytest.fixture(scope="session")
def pipeline() -> Pipeline:
    return Pipeline()


@pytest.fixture(scope="session")
def paper_corpus(pipeline):
    """The two sentences of the paper's running example, annotated."""
    return pipeline.annotate_corpus(
        {"doc0": PAPER_SENTENCE_1, "doc1": PAPER_SENTENCE_2}, name="paper"
    )


@pytest.fixture(scope="session")
def paper_sentence_1(paper_corpus):
    return paper_corpus.documents[0].sentences[0]


@pytest.fixture(scope="session")
def paper_sentence_2(paper_corpus):
    return paper_corpus.documents[1].sentences[0]


@pytest.fixture(scope="session")
def paper_indexes(paper_corpus) -> KokoIndexSet:
    return KokoIndexSet().build(paper_corpus)


@pytest.fixture(scope="session")
def paper_engine(paper_corpus) -> KokoEngine:
    return KokoEngine(paper_corpus)


@pytest.fixture(scope="session")
def happy_corpus(pipeline):
    """A small HappyDB-like corpus for index / benchmark-generator tests."""
    return generate_happydb_corpus(moments=120, pipeline=pipeline)


@pytest.fixture(scope="session")
def wiki_corpus(pipeline):
    """A small Wikipedia-like corpus."""
    return generate_wikipedia_corpus(articles=40, pipeline=pipeline)


@pytest.fixture(scope="session")
def cafe_corpus(pipeline):
    """A small BARISTAMAG-like cafe corpus with gold labels."""
    return generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=12)


@pytest.fixture(scope="session")
def cafe_engine(cafe_corpus) -> KokoEngine:
    return KokoEngine(cafe_corpus)


# ----------------------------------------------------------------------
# index-set equivalence (shared by incremental-index and service tests)
# ----------------------------------------------------------------------
def _hierarchy_shape(hierarchy):
    """Map node path -> sorted postings (id-independent node identity)."""
    return {node.path(): sorted(node.postings) for node in hierarchy.nodes()}


def _word_shape(index_set):
    """Word postings plus each occurrence's PL/POS node *paths*."""
    shape = {}
    for word in index_set.word_index.vocabulary():
        rows = []
        for posting in sorted(index_set.word_index.lookup(word)):
            node_ids = index_set.word_index.node_ids(posting.sid, posting.tid)
            paths = (None, None)
            if node_ids is not None:
                plid, posid = node_ids
                paths = (
                    index_set.pl_index.node_by_id(plid).path(),
                    index_set.pos_index.node_by_id(posid).path(),
                )
            rows.append((posting, paths))
        shape[word] = rows
    return shape


def assert_index_sets_equivalent(actual: KokoIndexSet, expected: KokoIndexSet) -> None:
    """Same postings, hierarchy paths and statistics (build time aside)."""
    assert _word_shape(actual) == _word_shape(expected)
    assert sorted(actual.entity_index.all_postings()) == sorted(
        expected.entity_index.all_postings()
    )
    assert _hierarchy_shape(actual.pl_index) == _hierarchy_shape(expected.pl_index)
    assert _hierarchy_shape(actual.pos_index) == _hierarchy_shape(expected.pos_index)
    actual_stats = dataclasses.replace(actual.statistics(), build_seconds=0.0)
    expected_stats = dataclasses.replace(expected.statistics(), build_seconds=0.0)
    assert actual_stats == expected_stats


@pytest.fixture(scope="session")
def assert_equivalent_indexes():
    """The index-set equivalence assertion, as an injectable fixture."""
    return assert_index_sets_equivalent


@pytest.fixture
def run_threads():
    """Run ``work(thread_index)`` on N threads behind a start barrier.

    Used by the concurrency tests (staged ingest, WAL group commit):
    threads start together, and the first raised exception is re-raised
    in the test thread after every thread joined.
    """
    import threading

    def _run(count: int, work) -> None:
        errors: list[BaseException] = []
        barrier = threading.Barrier(count)

        def runner(index: int) -> None:
            try:
                barrier.wait()
                work(index)
            except BaseException as exc:  # pragma: no cover - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    return _run
