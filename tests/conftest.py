"""Shared fixtures for the test suite.

Expensive objects (the pipeline, annotated corpora, index sets, engines) are
session scoped so the suite stays fast; tests must not mutate them.
"""

from __future__ import annotations

import dataclasses
import signal
import socket
import threading
import time
from typing import NamedTuple

import pytest

from repro.corpora.cafe_blogs import BARISTAMAG, generate_cafe_corpus
from repro.corpora.happydb import generate_happydb_corpus
from repro.corpora.wikipedia import generate_wikipedia_corpus
from repro.indexing.koko_index import KokoIndexSet
from repro.koko.engine import KokoEngine
from repro.nlp.pipeline import Pipeline

# The two running-example sentences of the paper (Figure 1 / Example 3.1).
PAPER_SENTENCE_1 = (
    "I ate a chocolate ice cream, which was delicious, and also ate a pie."
)
PAPER_SENTENCE_2 = (
    "Anna ate some delicious cheesecake that she bought at a grocery store."
)


@pytest.fixture(scope="session")
def pipeline() -> Pipeline:
    return Pipeline()


@pytest.fixture(scope="session")
def paper_corpus(pipeline):
    """The two sentences of the paper's running example, annotated."""
    return pipeline.annotate_corpus(
        {"doc0": PAPER_SENTENCE_1, "doc1": PAPER_SENTENCE_2}, name="paper"
    )


@pytest.fixture(scope="session")
def paper_sentence_1(paper_corpus):
    return paper_corpus.documents[0].sentences[0]


@pytest.fixture(scope="session")
def paper_sentence_2(paper_corpus):
    return paper_corpus.documents[1].sentences[0]


@pytest.fixture(scope="session")
def paper_indexes(paper_corpus) -> KokoIndexSet:
    return KokoIndexSet().build(paper_corpus)


@pytest.fixture(scope="session")
def paper_engine(paper_corpus) -> KokoEngine:
    return KokoEngine(paper_corpus)


@pytest.fixture(scope="session")
def happy_corpus(pipeline):
    """A small HappyDB-like corpus for index / benchmark-generator tests."""
    return generate_happydb_corpus(moments=120, pipeline=pipeline)


@pytest.fixture(scope="session")
def wiki_corpus(pipeline):
    """A small Wikipedia-like corpus."""
    return generate_wikipedia_corpus(articles=40, pipeline=pipeline)


@pytest.fixture(scope="session")
def cafe_corpus(pipeline):
    """A small BARISTAMAG-like cafe corpus with gold labels."""
    return generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=12)


@pytest.fixture(scope="session")
def cafe_engine(cafe_corpus) -> KokoEngine:
    return KokoEngine(cafe_corpus)


# ----------------------------------------------------------------------
# index-set equivalence (shared by incremental-index and service tests)
# ----------------------------------------------------------------------
def _hierarchy_shape(hierarchy):
    """Map node path -> sorted postings (id-independent node identity)."""
    return {node.path(): sorted(node.postings) for node in hierarchy.nodes()}


def _word_shape(index_set):
    """Word postings plus each occurrence's PL/POS node *paths*."""
    shape = {}
    for word in index_set.word_index.vocabulary():
        rows = []
        for posting in sorted(index_set.word_index.lookup(word)):
            node_ids = index_set.word_index.node_ids(posting.sid, posting.tid)
            paths = (None, None)
            if node_ids is not None:
                plid, posid = node_ids
                paths = (
                    index_set.pl_index.node_by_id(plid).path(),
                    index_set.pos_index.node_by_id(posid).path(),
                )
            rows.append((posting, paths))
        shape[word] = rows
    return shape


def assert_index_sets_equivalent(actual: KokoIndexSet, expected: KokoIndexSet) -> None:
    """Same postings, hierarchy paths and statistics (build time aside)."""
    assert _word_shape(actual) == _word_shape(expected)
    assert sorted(actual.entity_index.all_postings()) == sorted(
        expected.entity_index.all_postings()
    )
    assert _hierarchy_shape(actual.pl_index) == _hierarchy_shape(expected.pl_index)
    assert _hierarchy_shape(actual.pos_index) == _hierarchy_shape(expected.pos_index)
    actual_stats = dataclasses.replace(actual.statistics(), build_seconds=0.0)
    expected_stats = dataclasses.replace(expected.statistics(), build_seconds=0.0)
    assert actual_stats == expected_stats


@pytest.fixture(scope="session")
def assert_equivalent_indexes():
    """The index-set equivalence assertion, as an injectable fixture."""
    return assert_index_sets_equivalent


# ----------------------------------------------------------------------
# per-test timeout (hand-rolled: pytest-timeout is not in the image)
# ----------------------------------------------------------------------
_DEFAULT_TEST_TIMEOUT = 120.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Abort any single test body that runs past its timeout.

    A wedged network test (listener never accepting, replica never
    catching up) fails with a ``TimeoutError`` traceback pointing at the
    stuck line instead of hanging the whole suite.  Override per test
    with ``@pytest.mark.timeout(seconds)``.  SIGALRM only fires on the
    main thread of Unix platforms; elsewhere this is a no-op.
    """
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else _DEFAULT_TEST_TIMEOUT
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:g}s timeout (see the traceback "
            "for the line it was stuck on)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# network helpers (ephemeral ports + listener readiness)
# ----------------------------------------------------------------------
def wait_for_listen(host: str, port: int, timeout: float = 10.0) -> tuple[str, int]:
    """Block until ``host:port`` accepts TCP connections; returns the pair.

    The companion to the bind-port-0 idiom every listener in this repo
    uses: the server picks an ephemeral port and returns it, and tests
    call this before dialing so a slow-starting accept loop cannot turn
    into a flaky connect failure.  The probe connection carries no bytes
    and is closed immediately.
    """
    deadline = time.monotonic() + timeout
    last_error: OSError | None = None
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return host, port
        except OSError as exc:
            last_error = exc
            time.sleep(0.01)
    raise TimeoutError(
        f"nothing listening on {host}:{port} after {timeout:g}s: {last_error}"
    )


class ExplodingPipeline:
    """A pipeline stub proving a code path never re-runs NLP annotation."""

    def annotate(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("this path must never re-annotate")


class TcpCluster(NamedTuple):
    """One primary + one caught-up TCP replica (+ router), for e2e tests."""

    primary: object
    shipper: object
    replica: object
    router: object
    host: str
    port: int


@pytest.fixture
def make_tcp_cluster(tmp_path):
    """Factory for the canonical e2e cluster: primary + TCP replica + router.

    ``make_tcp_cluster(shards=..., texts=[...])`` ingests *texts* as
    ``doc0..docN`` on the primary, ships them to a TCP replica behind an
    ephemeral port (``wait_for_listen`` guarded), waits for catch-up, and
    wraps both in a ``ReplicaSet`` router.  Everything is torn down in
    reverse order at test exit.  Call it multiple times for multi-cluster
    tests; each call gets its own storage directory.
    """
    from repro.replication import LogShipper, ReplicaService, connect_tcp
    from repro.replication.router import ReplicaSet
    from repro.service import KokoService

    clusters: list[TcpCluster] = []

    def _make(
        shards: int = 2,
        texts=(),
        heartbeat_interval: float = 0.05,
        auth_token=None,
        **service_kwargs,
    ) -> TcpCluster:
        primary = KokoService(
            shards=shards,
            storage_dir=tmp_path / f"cluster{len(clusters)}",
            **service_kwargs,
        )
        for index, text in enumerate(texts):
            primary.add_document(text, f"doc{index}")
        shipper = LogShipper(primary, heartbeat_interval=heartbeat_interval)
        host, port = shipper.listen(auth_token=auth_token)
        wait_for_listen(host, port)
        replica = ReplicaService(
            connect_tcp(host, port, auth_token=auth_token),
            pipeline=ExplodingPipeline(),
            name="tcp-replica",
        )
        assert replica.wait_caught_up(primary.wal_position(), timeout=30)
        router = ReplicaSet(primary, [replica])
        cluster = TcpCluster(primary, shipper, replica, router, host, port)
        clusters.append(cluster)
        return cluster

    try:
        yield _make
    finally:
        for cluster in reversed(clusters):
            cluster.replica.close()
            cluster.shipper.close()
            cluster.primary.close()


@pytest.fixture
def tcp_cluster(make_tcp_cluster):
    """The default e2e cluster: two shards, no documents preloaded."""
    return make_tcp_cluster()


@pytest.fixture(scope="session")
def listen_ready():
    """The :func:`wait_for_listen` helper, as an injectable fixture."""
    return wait_for_listen


@pytest.fixture
def run_threads():
    """Run ``work(thread_index)`` on N threads behind a start barrier.

    Used by the concurrency tests (staged ingest, WAL group commit):
    threads start together, and the first raised exception is re-raised
    in the test thread after every thread joined.
    """
    import threading

    def _run(count: int, work) -> None:
        errors: list[BaseException] = []
        barrier = threading.Barrier(count)

        def runner(index: int) -> None:
            try:
                barrier.wait()
                work(index)
            except BaseException as exc:  # pragma: no cover - re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=runner, args=(i,)) for i in range(count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    return _run
