"""Tier-1 guard for the documentation lint (`scripts/check_docs.py`).

Keeps the docs-and-docstring bar enforced locally, not only in CI: every
module under ``src/repro/service`` and ``src/repro/persistence`` must
carry a module docstring, ``__all__``, and docstrings on public
classes/functions/methods — and every relative markdown link in
``README.md``, ``docs/*.md`` and ``benchmarks/README.md`` must resolve.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docstrings_and_markdown_links_are_clean():
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, (
        "documentation lint failed:\n" + completed.stdout + completed.stderr
    )
