"""End-to-end tests of the KOKO engine on the paper's examples."""

from __future__ import annotations

import pytest

from repro.koko.engine import KokoEngine
from repro.koko.results import ExtractionTuple, KokoResult, StageTimings

EXAMPLE_2_1 = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""


class TestExample21:
    def test_paper_output(self, paper_engine):
        result = paper_engine.execute(EXAMPLE_2_1)
        values = {t.as_dict()["e"]: t.as_dict()["d"] for t in result.tuples}
        assert values["chocolate ice cream"] == "a chocolate ice cream, which was delicious"
        assert "cheesecake" in values

    def test_timings_recorded(self, paper_engine):
        result = paper_engine.execute(EXAMPLE_2_1)
        timings = result.timings.as_dict()
        assert set(timings) == {"Normalize", "DPLI", "LoadArticle", "GSP", "extract", "satisfying"}
        assert result.timings.total >= 0
        assert result.candidate_sentences >= 1


class TestExample22Similarity:
    """Example 2.2: similarTo distinguishes cities from countries."""

    @pytest.fixture(scope="class")
    def ex22_engine(self, pipeline):
        corpus = pipeline.annotate_corpus(
            {
                "s1": "cities in asian countries such as China and Japan.",
                "s2": "cities in asian countries such as Beijing and Tokyo.",
            },
            name="ex22",
        )
        return KokoEngine(corpus)

    def test_city_query_returns_cities_only(self, ex22_engine):
        result = ex22_engine.execute(
            'extract a:GPE from "input.txt" if () satisfying a '
            '(a SimilarTo "city" {1.0}) with threshold 0.3'
        )
        assert result.distinct_values("a") == {"Beijing", "Tokyo"}
        assert {t.doc_id for t in result.tuples} == {"s2"}

    def test_country_query_returns_countries_only(self, ex22_engine):
        result = ex22_engine.execute(
            'extract a:GPE from "input.txt" if () satisfying a '
            '(a SimilarTo "country" {1.0}) with threshold 0.3'
        )
        assert result.distinct_values("a") == {"China", "Japan"}
        assert {t.doc_id for t in result.tuples} == {"s1"}

    def test_scores_attached(self, ex22_engine):
        result = ex22_engine.execute(
            'extract a:GPE from "input.txt" if () satisfying a '
            '(a SimilarTo "city" {1.0}) with threshold 0.3'
        )
        for extraction in result.tuples:
            score = extraction.score("a")
            assert score is not None and 0.3 <= score <= 1.0


class TestCafeQueryOnGeneratedCorpus:
    def test_extracts_gold_cafes(self, cafe_engine, cafe_corpus):
        from repro.evaluation.queries import CAFE_QUERY

        result = cafe_engine.execute(CAFE_QUERY)
        predicted = result.values_by_document("x")
        gold = cafe_corpus.gold["cafe"]
        hits = sum(
            1
            for doc_id, names in gold.items()
            for name in names
            if name.lower() in {p.lower() for p in predicted.get(doc_id, set())}
        )
        total_gold = sum(len(v) for v in gold.values())
        assert hits / total_gold > 0.4

    def test_excluding_clause_removes_machine_brands(self, cafe_engine):
        from repro.evaluation.queries import CAFE_QUERY

        result = cafe_engine.execute(CAFE_QUERY)
        values = {v.lower() for v in result.distinct_values("x")}
        assert "la marzocco" not in values

    def test_keep_all_scores_supersets_passing(self, cafe_engine):
        from repro.evaluation.queries import CAFE_QUERY

        passing = cafe_engine.execute(CAFE_QUERY)
        everything = cafe_engine.execute(CAFE_QUERY, keep_all_scores=True)
        assert len(everything) >= len(passing)

    def test_threshold_override_monotone(self, cafe_engine):
        from repro.evaluation.queries import CAFE_QUERY

        low = cafe_engine.execute(CAFE_QUERY, threshold_override=0.2)
        high = cafe_engine.execute(CAFE_QUERY, threshold_override=0.9)
        assert len(low.distinct_values("x")) >= len(high.distinct_values("x"))


class TestEngineBehaviour:
    def test_provably_empty_query(self, paper_engine):
        result = paper_engine.execute(
            'extract x:Entity from "t" if (/ROOT:{ a = //"zebra" })'
        )
        assert len(result) == 0

    def test_accepts_pre_parsed_query(self, paper_engine):
        from repro.koko.parser import parse_query

        result = paper_engine.execute(parse_query(EXAMPLE_2_1))
        assert len(result) == 2

    def test_nogsp_engine_same_answers(self, paper_corpus):
        from repro.baselines.nogsp import NoGspEngine

        fast = KokoEngine(paper_corpus).execute(EXAMPLE_2_1)
        slow = NoGspEngine(paper_corpus).execute(EXAMPLE_2_1)
        assert {t.values for t in fast.tuples} == {t.values for t in slow.tuples}

    def test_result_helpers(self):
        result = KokoResult(
            tuples=[
                ExtractionTuple("d1", 0, (("x", "A"),), (("x", 0.7),)),
                ExtractionTuple("d1", 1, (("x", "B"),), (("x", 0.9),)),
                ExtractionTuple("d2", 2, (("x", "A"),), (("x", 0.2),)),
            ]
        )
        assert result.distinct_values("x") == {"A", "B"}
        assert result.values_by_document("x") == {"d1": {"A", "B"}, "d2": {"A"}}
        assert result.selectivity == {"d1": 2, "d2": 1}
        assert result.tuples[0].score("x") == 0.7
        with pytest.raises(KeyError):
            result.tuples[0].value("zzz")

    def test_stage_timings_total(self):
        timings = StageTimings(normalize=1, dpli=2, load_articles=3, gsp=4, extract=5, satisfying=6)
        assert timings.total == 21
