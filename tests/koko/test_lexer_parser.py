"""Tests for the KOKO lexer and parser."""

from __future__ import annotations

import pytest

from repro.errors import KokoSemanticError, KokoSyntaxError
from repro.koko.ast import (
    AdjacencyCondition,
    DescriptorCondition,
    Elastic,
    EntityBinding,
    InDictCondition,
    NearCondition,
    PathExpr,
    SimilarToCondition,
    SpanExpr,
    StrCondition,
    SubtreeRef,
    VarRef,
)
from repro.koko.lexer import STRING, SYMBOL, tokenize
from repro.koko.parser import parse_query

EXAMPLE_2_1 = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""

EXAMPLE_2_3 = """
extract x:Entity from "input.txt" if ()
satisfying x
(str(x) contains "Cafe" {1}) or
(str(x) contains "Roasters" {1}) or
(x ", a cafe" {1}) or
(x [["serves coffee"]] {0.5}) or
(x [["employs baristas"]] {0.5})
with threshold 0.8
excluding (str(x) matches "[Ll]a Marzocco")
"""

EXAMPLE_4_1 = """
extract a:Str,b:Str,c:Str from input.txt if (
/ROOT:{
a = Entity, b = //verb[text="ate"],
c = b/dobj, d = c//"delicious",
e = a + ^ + b + ^ + c })
"""


class TestLexer:
    def test_symbols_and_strings(self):
        tokens = tokenize('a = //verb[text="ate"]')
        kinds = [(t.type, t.text) for t in tokens[:8]]
        assert (SYMBOL, "//") in kinds
        assert any(t.type == STRING and t.text == "ate" for t in tokens)

    def test_descriptor_brackets(self):
        tokens = tokenize('(x [["serves coffee"]] {0.5})')
        texts = [t.text for t in tokens]
        assert "[[" in texts and "]]" in texts

    def test_unicode_wedge_and_quotes_normalised(self):
        tokens = tokenize("e = a + ∧ + b and “delicious”")
        texts = [t.text for t in tokens]
        assert "^" in texts
        assert "delicious" in texts

    def test_numbers(self):
        tokens = tokenize("with threshold 0.8")
        assert tokens[2].text == "0.8"

    def test_unterminated_string(self):
        with pytest.raises(KokoSyntaxError):
            tokenize('x = "oops')

    def test_comment_skipped(self):
        tokens = tokenize("a = //verb # the verb variable\n")
        assert all("the" != t.text for t in tokens)


class TestParserExamples:
    def test_example_2_1_structure(self):
        query = parse_query(EXAMPLE_2_1)
        assert [o.name for o in query.outputs] == ["e", "d"]
        assert query.source == "input.txt"
        assert query.declared_names() == ["a", "b", "c", "d"]
        assert query.constraints[0].left == "b"
        assert query.constraints[0].op == "in"
        c_decl = query.declaration("c")
        assert isinstance(c_decl.expr, PathExpr)
        assert c_decl.expr.base_var == "b"
        assert c_decl.expr.steps[0].is_word
        d_decl = query.declaration("d")
        assert isinstance(d_decl.expr, SpanExpr)
        assert isinstance(d_decl.expr.atoms[0], SubtreeRef)

    def test_example_2_3_satisfying(self):
        query = parse_query(EXAMPLE_2_3)
        clause = query.satisfying[0]
        assert clause.variable == "x"
        assert clause.threshold == 0.8
        kinds = [type(w.condition) for w in clause.conditions]
        assert kinds.count(StrCondition) == 2
        assert AdjacencyCondition in kinds
        assert DescriptorCondition in kinds
        weights = [w.weight for w in clause.conditions]
        assert weights == [1, 1, 1, 0.5, 0.5]
        assert isinstance(query.excluding.conditions[0], StrCondition)

    def test_example_4_1_span_and_entity(self):
        query = parse_query(EXAMPLE_4_1)
        assert isinstance(query.declaration("a").expr, EntityBinding)
        b_decl = query.declaration("b")
        assert b_decl.expr.steps[0].conditions[0].attribute == "text"
        e_decl = query.declaration("e")
        atoms = e_decl.expr.atoms
        assert isinstance(atoms[0], VarRef) and atoms[0].name == "a"
        assert isinstance(atoms[1], Elastic)
        assert len(atoms) == 5

    def test_similar_to_and_near_and_dict(self):
        query = parse_query(
            'extract a:GPE from "t" if () satisfying a '
            '(a SimilarTo "city" {1.0}) or (a near "coffee" {0.5}) '
            "with threshold 0.3 "
            'excluding (str(a) in dict("Location"))'
        )
        conditions = [w.condition for w in query.satisfying[0].conditions]
        assert isinstance(conditions[0], SimilarToCondition)
        assert isinstance(conditions[1], NearCondition)
        assert isinstance(query.excluding.conditions[0], InDictCondition)

    def test_tilde_similarity(self):
        query = parse_query(
            'extract c:Entity from w if (/ROOT:{ v = //verb }) satisfying v (str(v) ~ "is" {1})'
        )
        condition = query.satisfying[0].conditions[0].condition
        assert isinstance(condition, SimilarToCondition)
        assert condition.concept == "is"

    def test_descriptor_before_variable(self):
        query = parse_query(
            'extract x:Entity from t if () satisfying x ([["went to"]] x {0.8})'
        )
        condition = query.satisfying[0].conditions[0].condition
        assert isinstance(condition, DescriptorCondition)
        assert condition.side == "before"

    def test_bare_label_declaration(self):
        query = parse_query("extract a:Person from w if (/ROOT:{ v = verb })")
        v_decl = query.declaration("v")
        assert isinstance(v_decl.expr, PathExpr)
        assert v_decl.expr.steps[0].label == "verb"


class TestParserErrors:
    def test_missing_extract(self):
        with pytest.raises(KokoSyntaxError):
            parse_query('select x from "y"')

    def test_unbalanced_parens(self):
        with pytest.raises(KokoSyntaxError):
            parse_query('extract x:Entity from "t" if ( /ROOT:{ a = //verb }')

    def test_constraint_on_undeclared_variable(self):
        with pytest.raises(KokoSemanticError):
            parse_query('extract x:Entity from "t" if ( /ROOT:{ a = //verb } (zz) in (x))')

    def test_satisfying_undeclared_variable(self):
        with pytest.raises(KokoSemanticError):
            parse_query('extract x:Entity from "t" if () satisfying q (q "vs" {1})')

    def test_duplicate_declaration(self):
        with pytest.raises(KokoSemanticError):
            parse_query('extract x:Str from "t" if (/ROOT:{ x = //verb, x = //noun })')

    def test_trailing_garbage(self):
        with pytest.raises(KokoSyntaxError):
            parse_query('extract x:Entity from "t" if () nonsense trailing')

    def test_near_requires_string(self):
        with pytest.raises(KokoSyntaxError):
            parse_query('extract x:Entity from "t" if () satisfying x (x near coffee {1})')
