"""Tests for the stage-pipeline execution core (koko/stages.py)."""

from __future__ import annotations

import pytest

import repro.koko.evaluator as evaluator_module
from repro.koko.engine import KokoEngine, compile_query
from repro.koko.results import KokoResult, StageTimings, merge_results
from repro.koko.stages import (
    DEFAULT_STAGES,
    AggregateStage,
    DpliStage,
    ExtractStage,
    LoadStage,
    NormalizeStage,
    StagePipeline,
)

EXAMPLE_2_1 = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""

EMPTY_QUERY = 'extract x:Entity from "t" if (/ROOT:{ a = //"zebra" })'


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


# ----------------------------------------------------------------------
# stage-by-stage execution
# ----------------------------------------------------------------------
class TestStagesIndividually:
    def test_stages_fill_context_incrementally(self, paper_engine):
        ctx = paper_engine.make_context(EXAMPLE_2_1)
        assert ctx.parsed is None and ctx.dpli is None

        NormalizeStage().run(ctx)
        assert ctx.parsed is not None and ctx.normalized is not None
        assert ctx.result.timings.normalize > 0.0

        DpliStage().run(ctx)
        assert ctx.dpli is not None and not ctx.finished
        assert ctx.result.timings.dpli > 0.0

        LoadStage().run(ctx)
        assert len(ctx.documents) == 2  # both paper sentences are candidates
        assert ctx.result.timings.load_articles > 0.0

        ExtractStage().run(ctx)
        assert ctx.result.candidate_sentences == 2
        assert ctx.result.evaluated_sentences == 2
        assert any(tuples for _, tuples in ctx.candidates)
        assert ctx.result.timings.extract > 0.0

        AggregateStage().run(ctx)
        assert len(ctx.result) == 2
        assert ctx.result.timings.satisfying > 0.0

    def test_normalize_stage_reuses_compiled_plan(self, paper_engine):
        plan = compile_query(EXAMPLE_2_1)
        ctx = paper_engine.make_context(plan)
        NormalizeStage().run(ctx)
        assert ctx.parsed is plan.parsed
        assert ctx.normalized is plan.normalized

    def test_dpli_stage_short_circuits_provably_empty(self, paper_engine):
        ctx = paper_engine.make_context(EMPTY_QUERY)
        result = StagePipeline().run(ctx)
        assert ctx.finished
        assert ctx.documents == [] and ctx.candidates == []
        assert len(result) == 0
        # the post-DPLI stages never ran
        assert result.timings.load_articles == 0.0
        assert result.timings.extract == 0.0


# ----------------------------------------------------------------------
# the pipeline as a whole
# ----------------------------------------------------------------------
class TestStagePipeline:
    def test_default_stage_order(self):
        assert [type(s) for s in DEFAULT_STAGES] == [
            NormalizeStage,
            DpliStage,
            LoadStage,
            ExtractStage,
            AggregateStage,
        ]

    def test_pipeline_matches_engine_execute(self, paper_engine):
        via_pipeline = StagePipeline().run(paper_engine.make_context(EXAMPLE_2_1))
        via_engine = paper_engine.execute(EXAMPLE_2_1)
        assert as_rows(via_pipeline) == as_rows(via_engine)

    def test_skip_plan_generated_exactly_once_per_sentence(
        self, paper_engine, monkeypatch
    ):
        """The GSP stage is timed as a by-product — no dry re-planning."""
        calls = {"count": 0}
        real = evaluator_module.generate_skip_plan

        def counting(*args, **kwargs):
            calls["count"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(evaluator_module, "generate_skip_plan", counting)
        result = paper_engine.execute(EXAMPLE_2_1)
        assert result.evaluated_sentences == 2
        assert calls["count"] == 2  # one plan per evaluated sentence, not two
        assert result.timings.gsp > 0.0

    def test_timings_partition_extract_and_gsp(self, paper_engine):
        result = paper_engine.execute(EXAMPLE_2_1)
        timings = result.timings
        assert timings.gsp >= 0.0 and timings.extract >= 0.0
        assert timings.total == pytest.approx(
            timings.normalize
            + timings.dpli
            + timings.load_articles
            + timings.gsp
            + timings.extract
            + timings.satisfying
        )


# ----------------------------------------------------------------------
# result merging (used by the sharded service)
# ----------------------------------------------------------------------
class TestMergeResults:
    def test_merge_orders_by_sid_and_sums_metrics(self):
        from repro.koko.results import ExtractionTuple

        a = KokoResult(
            tuples=[ExtractionTuple("d2", 5, (("x", "B"),))],
            candidate_sentences=2,
            evaluated_sentences=1,
        )
        a.timings.dpli = 0.5
        b = KokoResult(
            tuples=[
                ExtractionTuple("d1", 1, (("x", "A"),)),
                ExtractionTuple("d1", 1, (("x", "A2"),)),
            ],
            candidate_sentences=3,
            evaluated_sentences=2,
        )
        b.timings.dpli = 0.25
        merged = merge_results([a, b])
        assert [t.sid for t in merged] == [1, 1, 5]
        # stable: same-sid tuples keep their within-shard order
        assert [t.value("x") for t in merged] == ["A", "A2", "B"]
        assert merged.candidate_sentences == 5
        assert merged.evaluated_sentences == 3
        assert merged.timings.dpli == pytest.approx(0.75)

    def test_merge_of_nothing_is_empty(self):
        merged = merge_results([])
        assert len(merged) == 0 and merged.timings.total == 0.0

    def test_stage_timings_accumulate(self):
        total = StageTimings()
        total.accumulate(StageTimings(normalize=1, gsp=2))
        total.accumulate(StageTimings(dpli=3, gsp=1))
        assert (total.normalize, total.dpli, total.gsp) == (1, 3, 3)
        assert total.total == 7


# ----------------------------------------------------------------------
# engine fixes riding along with the refactor
# ----------------------------------------------------------------------
class TestEngineHygiene:
    def test_engine_does_not_mutate_caller_dictionaries(self, paper_corpus):
        dictionaries = {"custom": {"Foo"}}
        engine = KokoEngine(
            paper_corpus, dictionaries=dictionaries, use_default_vectors=False
        )
        assert dictionaries == {"custom": {"Foo"}}  # no 'location' injected
        assert "location" in engine.resources.dictionaries
        assert engine.resources.dictionaries["custom"] == {"foo"}
