"""Tests for the sentence evaluator and the satisfying/excluding conditions."""

from __future__ import annotations

import pytest

from repro.embeddings.expansion import DescriptorExpander
from repro.embeddings.pretrained import build_default_vectors
from repro.koko.aggregate import EvidenceAggregator
from repro.koko.ast import (
    AdjacencyCondition,
    DescriptorCondition,
    InDictCondition,
    NearCondition,
    SimilarToCondition,
    StrCondition,
)
from repro.koko.conditions import ConditionScorer, EvidenceResources, find_occurrences
from repro.koko.dpli import run_dpli
from repro.koko.evaluator import SentenceEvaluator
from repro.koko.normalize import normalize
from repro.koko.parser import parse_query


@pytest.fixture(scope="module")
def scorer():
    return ConditionScorer(
        EvidenceResources(
            expander=DescriptorExpander(),
            vectors=build_default_vectors(),
            dictionaries={"location": {"portland", "london"}},
        )
    )


@pytest.fixture(scope="module")
def cafe_doc(pipeline):
    text = (
        "Velvet Fox Collective opened on a quiet corner of Portland. "
        "Velvet Fox Collective pours a remarkably silky espresso all day. "
        "The shop also sells seasonal cappuccinos and little pastries. "
        "La Marzocco machines gleam behind the bar."
    )
    return pipeline.annotate(text, doc_id="cafe")


def _evaluate(query_text, corpus, indexes, sentence, use_gsp=True):
    normalized = normalize(parse_query(query_text))
    dpli = run_dpli(normalized, indexes)
    return SentenceEvaluator(normalized, use_gsp=use_gsp).evaluate(sentence, dpli)


class TestSentenceEvaluator:
    def test_example_2_1_bindings(self, paper_corpus, paper_indexes, paper_sentence_1):
        query = """
        extract e:Entity, d:Str from input.txt if
        (/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))
        """
        assignments = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_1)
        assert len(assignments) == 1
        assignment = assignments[0]
        assert paper_sentence_1.span_text(
            assignment["e"].start, assignment["e"].end
        ) == "chocolate ice cream"
        assert paper_sentence_1.span_text(
            assignment["d"].start, assignment["d"].end
        ) == "a chocolate ice cream, which was delicious"

    def test_example_4_1_span_alignment(self, paper_corpus, paper_indexes, paper_sentence_2):
        query = """
        extract a:Str,b:Str,c:Str from input.txt if (
        /ROOT:{ a = Entity, b = //verb[text="ate"], c = b/dobj, d = c//"delicious",
        e = a + ^ + b + ^ + c })
        """
        assignments = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_2)
        values = {
            (
                paper_sentence_2.span_text(a["a"].start, a["a"].end),
                paper_sentence_2.span_text(a["b"].start, a["b"].end),
                paper_sentence_2.span_text(a["c"].start, a["c"].end),
            )
            for a in assignments
        }
        assert ("Anna", "ate", "cheesecake") in values

    def test_gsp_and_nogsp_agree(self, paper_corpus, paper_indexes, paper_sentence_2):
        query = """
        extract a:Str,b:Str,c:Str from input.txt if (
        /ROOT:{ a = Entity, b = //verb[text="ate"], c = b/dobj,
        e = a + ^ + b + ^ + c })
        """
        with_gsp = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_2, True)
        without = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_2, False)
        key = lambda a: (a["a"].start, a["b"].start, a["c"].start, a["e"].start, a["e"].end)
        assert {key(a) for a in with_gsp} <= {key(a) for a in without}
        assert with_gsp

    def test_constraint_failure_prunes(self, paper_corpus, paper_indexes, paper_sentence_1):
        # (a) in (e): the verb "ate" is never inside an entity span
        query = """
        extract e:Entity from input.txt if
        (/ROOT:{ a = //verb[text="ate"] } (a) in (e))
        """
        assignments = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_1)
        assert assignments == []

    def test_token_sequence_atom(self, paper_corpus, paper_indexes, paper_sentence_2):
        query = """
        extract s:Str from input.txt if (
        /ROOT:{ s = "grocery store" })
        """
        assignments = _evaluate(query, paper_corpus, paper_indexes, paper_sentence_2)
        assert len(assignments) == 1
        binding = assignments[0]["s"]
        assert paper_sentence_2.span_text(binding.start, binding.end) == "grocery store"

    def test_empty_sentence_no_assignments(self, paper_corpus, paper_indexes, pipeline):
        sentence = pipeline.annotate_sentence("", sid=99)
        query = 'extract x:Entity from "t" if ()'
        assert _evaluate(query, paper_corpus, paper_indexes, sentence) == []


class TestConditions:
    def test_str_contains_word_level(self, scorer, cafe_doc):
        # Section 4.4.1: "chocolate ice cream" contains "ice", mentions "choc",
        # but does not contain "choc"
        assert scorer.score(StrCondition("x", "contains", "ice"), "chocolate ice cream", [], cafe_doc) == 1.0
        assert scorer.score(StrCondition("x", "contains", "choc"), "chocolate ice cream", [], cafe_doc) == 0.0
        assert scorer.score(StrCondition("x", "mentions", "choc"), "chocolate ice cream", [], cafe_doc) == 1.0

    def test_str_matches_regex(self, scorer, cafe_doc):
        assert scorer.score(StrCondition("x", "matches", "[Ll]a Marzocco"), "La Marzocco", [], cafe_doc) == 1.0

    def test_in_dict(self, scorer, cafe_doc):
        assert scorer.score(InDictCondition("x", "Location"), "Portland", [], cafe_doc) == 1.0
        assert scorer.score(InDictCondition("x", "Location"), "Velvet Fox", [], cafe_doc) == 0.0

    def test_adjacency_after(self, scorer, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "Velvet Fox Collective")
        condition = AdjacencyCondition("x", "opened", side="after")
        assert scorer.score(condition, "Velvet Fox Collective", occurrences, cafe_doc) == 1.0

    def test_adjacency_before(self, scorer, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "Portland")
        condition = AdjacencyCondition("x", "corner of", side="before")
        assert scorer.score(condition, "Portland", occurrences, cafe_doc) == 1.0

    def test_near_score_decreases_with_distance(self, scorer, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "Velvet Fox Collective")
        near_espresso = scorer.score(NearCondition("x", "espresso"), "Velvet Fox Collective", occurrences, cafe_doc)
        near_opened = scorer.score(NearCondition("x", "opened"), "Velvet Fox Collective", occurrences, cafe_doc)
        assert 0 < near_espresso < 1
        assert near_opened == 1.0

    def test_descriptor_matches_paraphrase_with_gaps(self, scorer, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "Velvet Fox Collective")
        condition = DescriptorCondition("x", "serves espresso", side="after")
        score = scorer.score(condition, "Velvet Fox Collective", occurrences, cafe_doc)
        assert score > 0.0

    def test_descriptor_no_evidence(self, scorer, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "La Marzocco")
        condition = DescriptorCondition("x", "employs baristas", side="after")
        assert scorer.score(condition, "La Marzocco", occurrences, cafe_doc) == 0.0

    def test_similar_to(self, scorer, cafe_doc):
        assert scorer.score(SimilarToCondition("x", "city"), "Tokyo", [], cafe_doc) > 0.4
        assert scorer.score(SimilarToCondition("x", "city"), "Japan", [], cafe_doc) < 0.3

    def test_find_occurrences_counts_every_mention(self, cafe_doc):
        occurrences = find_occurrences(cafe_doc, "Velvet Fox Collective")
        assert len(occurrences) == 2


class TestAggregation:
    def test_weighted_sum_and_threshold(self, scorer, cafe_doc):
        query = parse_query(
            'extract x:Entity from "t" if () satisfying x '
            '(str(x) contains "Collective" {0.4}) or '
            '(x [["pours espresso"]] {0.4}) '
            "with threshold 0.5"
        )
        aggregator = EvidenceAggregator(scorer)
        outcome = aggregator.evaluate_clause(
            query.satisfying[0], "Velvet Fox Collective", cafe_doc
        )
        assert outcome.score > 0.5
        assert outcome.passed

    def test_threshold_override(self, scorer, cafe_doc):
        query = parse_query(
            'extract x:Entity from "t" if () satisfying x '
            '(str(x) contains "Collective" {0.4}) with threshold 0.9'
        )
        aggregator = EvidenceAggregator(scorer)
        assert not aggregator.evaluate_clause(query.satisfying[0], "Velvet Fox Collective", cafe_doc).passed
        assert aggregator.evaluate_clause(
            query.satisfying[0], "Velvet Fox Collective", cafe_doc, threshold_override=0.3
        ).passed

    def test_excluding(self, scorer, cafe_doc):
        query = parse_query(
            'extract x:Entity from "t" if () satisfying x (str(x) contains "a" {1}) '
            'excluding (str(x) matches "[Ll]a Marzocco")'
        )
        aggregator = EvidenceAggregator(scorer)
        assert aggregator.is_excluded(query.excluding, "La Marzocco", cafe_doc)
        assert not aggregator.is_excluded(query.excluding, "Velvet Fox Collective", cafe_doc)
