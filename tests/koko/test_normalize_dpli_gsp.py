"""Tests for query normalisation, path dominance, DPLI and GSP."""

from __future__ import annotations

import pytest

from repro.errors import KokoSemanticError
from repro.koko.ast import Elastic, VarConstraint
from repro.koko.dpli import run_dpli
from repro.koko.gsp import (
    estimate_cost,
    generate_skip_plan,
    generate_skip_plans_batch,
)
from repro.koko.normalize import normalize
from repro.koko.parser import parse_query
from repro.koko.paths import dominant_paths, is_dominated, label_kind, to_tree_path

EXAMPLE_4_1 = """
extract a:Str,b:Str,c:Str from input.txt if (
/ROOT:{
a = Entity, b = //verb[text="ate"],
c = b/dobj, d = c//"delicious",
e = a + ^ + b + ^ + c })
"""

EXAMPLE_2_1 = """
extract e:Entity, d:Str from input.txt if
(/ROOT:{
a = //verb,
b = a/dobj,
c = b//"delicious",
d = (b.subtree)
} (b) in (e))
"""


class TestNormalization:
    def test_paths_expanded_to_absolute(self):
        normalized = normalize(parse_query(EXAMPLE_2_1))
        assert normalized.absolute_paths["b"].render() == "//verb/dobj"
        assert normalized.absolute_paths["c"].render() == '//verb/dobj//"delicious"'

    def test_derived_structural_constraints(self):
        normalized = normalize(parse_query(EXAMPLE_2_1))
        assert VarConstraint("a", "parentOf", "b") in normalized.constraints
        assert VarConstraint("b", "ancestorOf", "c") in normalized.constraints

    def test_example_4_1_constraints(self):
        """Example 4.1: leftOf constraints and generated elastic variables."""
        normalized = normalize(parse_query(EXAMPLE_4_1))
        left_of = [c for c in normalized.constraints if c.op == "leftOf"]
        assert len(left_of) == 4
        elastic_vars = [
            name for name, atom in normalized.atom_vars.items() if isinstance(atom, Elastic)
        ]
        assert len(elastic_vars) == 2
        condition = normalized.horizontal_conditions[0]
        assert condition.target == "e"
        assert len(condition.atom_vars) == 5

    def test_entity_output_gets_implicit_binding(self):
        normalized = normalize(parse_query(EXAMPLE_2_1))
        assert normalized.entity_vars["e"].lower() == "entity"

    def test_str_output_without_declaration_rejected(self):
        with pytest.raises(KokoSemanticError):
            normalize(parse_query('extract z:Str from "t" if (/ROOT:{ a = //verb })'))

    def test_unknown_base_variable_rejected(self):
        with pytest.raises(KokoSemanticError):
            normalize(parse_query('extract x:Entity from "t" if (/ROOT:{ b = q/dobj })'))


class TestDominance:
    def test_example_4_1_dominant_path(self):
        """d is the only dominant path among b, c, d of Example 4.1."""
        normalized = normalize(parse_query(EXAMPLE_4_1))
        dominant = dominant_paths(normalized.absolute_paths)
        assert set(dominant) == {"d"}
        assert normalized.dominant_for["b"] == "d"
        assert normalized.dominant_for["c"] == "d"

    def test_dominance_requires_matching_conditions(self):
        q = parse_query(
            'extract x:Entity from "t" if (/ROOT:{ a = //verb, b = //verb[text="ate"]/dobj })'
        )
        normalized = normalize(q)
        # a (= //verb, no condition) is NOT dominated by b (//verb[text=ate]/dobj)
        dominant = dominant_paths(normalized.absolute_paths)
        assert set(dominant) == {"a", "b"}

    def test_is_dominated_prefix_rule(self):
        q = parse_query('extract x:Entity from "t" if (/ROOT:{ a = //verb, b = a/dobj })')
        normalized = normalize(q)
        assert is_dominated(normalized.absolute_paths["a"], normalized.absolute_paths["b"])
        assert not is_dominated(
            normalized.absolute_paths["b"], normalized.absolute_paths["a"]
        )


class TestLabelKinds:
    def test_label_kind_resolution(self):
        q = parse_query(
            'extract x:Entity from "t" if (/ROOT:{ a = //verb/dobj//"delicious"/* })'
        )
        steps = normalize(q).tree_paths["a"].steps
        assert [s.kind for s in steps] == ["pos", "label", "word", "any"]

    def test_text_condition_strengthens_to_word(self):
        q = parse_query('extract x:Entity from "t" if (/ROOT:{ a = //verb[text="ate"] })')
        tree_path = normalize(q).tree_paths["a"]
        assert tree_path.steps[0].kind == "word"
        assert tree_path.steps[0].label == "ate"


class TestDpli:
    def test_bindings_and_candidates(self, paper_indexes):
        normalized = normalize(parse_query(EXAMPLE_2_1))
        result = run_dpli(normalized, paper_indexes)
        assert not result.provably_empty
        assert result.candidate_sids == {0, 1}
        # all three path variables are served by the dominant path's postings
        assert result.path_bindings["b"] == result.path_bindings["c"]
        assert {p.word for p in result.path_bindings["c"]} == {"delicious"}
        assert len(result.entity_bindings["e"]) > 0

    def test_provably_empty_query(self, paper_indexes):
        normalized = normalize(
            parse_query('extract x:Entity from "t" if (/ROOT:{ a = //"zebra" })')
        )
        result = run_dpli(normalized, paper_indexes)
        assert result.provably_empty
        assert result.candidate_sids == set()

    def test_empty_extract_clause_means_all_sentences(self, paper_indexes):
        normalized = normalize(parse_query('extract x:Entity from "t" if ()'))
        result = run_dpli(normalized, paper_indexes)
        assert result.candidate_sids is not None  # entity postings constrain
        assert result.bindings_count("x", 0) > 0


class TestGsp:
    def test_elastic_atoms_are_skipped(self, paper_indexes):
        normalized = normalize(parse_query(EXAMPLE_4_1))
        dpli = run_dpli(normalized, paper_indexes)
        plan = generate_skip_plan(normalized, dpli, sid=0, sentence_tokens=17)
        skipped = plan.skipped("e")
        elastic_vars = {
            name for name, atom in normalized.atom_vars.items() if isinstance(atom, Elastic)
        }
        assert elastic_vars <= skipped

    def test_adjacent_atoms_not_both_skipped(self, paper_indexes):
        normalized = normalize(parse_query(EXAMPLE_4_1))
        dpli = run_dpli(normalized, paper_indexes)
        plan = generate_skip_plan(normalized, dpli, sid=0, sentence_tokens=17)
        atom_vars = normalized.horizontal_conditions[0].atom_vars
        skipped = plan.skipped("e")
        for left, right in zip(atom_vars, atom_vars[1:]):
            assert not (left in skipped and right in skipped)

    def test_elastic_cost_is_quadratic(self, paper_indexes):
        normalized = normalize(parse_query(EXAMPLE_4_1))
        dpli = run_dpli(normalized, paper_indexes)
        elastic_var = next(
            name for name, atom in normalized.atom_vars.items() if isinstance(atom, Elastic)
        )
        cost = estimate_cost(elastic_var, normalized, dpli, sid=0, sentence_tokens=20)
        assert cost == 20 * 21 / 2

    @pytest.mark.parametrize("query", [EXAMPLE_2_1, EXAMPLE_4_1])
    def test_batch_plans_match_per_sentence_plans(self, query, paper_indexes):
        """The vectorized Algorithm 2 is bit-for-bit the scalar one."""
        normalized = normalize(parse_query(query))
        dpli = run_dpli(normalized, paper_indexes)
        sids, token_counts = [0, 1], [17, 13]
        batch = generate_skip_plans_batch(normalized, dpli, sids, token_counts)
        assert set(batch) == set(sids)
        for sid, tokens in zip(sids, token_counts):
            assert batch[sid] == generate_skip_plan(normalized, dpli, sid, tokens)
        assert generate_skip_plans_batch(normalized, dpli, [], []) == {}

    def test_single_atom_condition_never_skips(self, paper_indexes):
        normalized = normalize(
            parse_query('extract x:Entity from "t" if (/ROOT:{ s = //verb })')
        )
        dpli = run_dpli(normalized, paper_indexes)
        plan = generate_skip_plan(normalized, dpli, sid=0, sentence_tokens=17)
        assert plan.total_skipped() == 0
