"""ReplicaSet routing: round-robin, read-your-writes tokens, lag bounds,
failover — unit-tested against stub replicas, plus one live integration."""

from __future__ import annotations

import time

import pytest

from repro.persistence import WalPosition
from repro.replication import InProcessTransport, LogShipper, ReplicaService, ReplicaSet
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Paolo visited Beijing and ate a delicious croissant.",
]


class StubReplica:
    """The replica surface the router consumes, fully scriptable."""

    def __init__(
        self,
        name: str,
        applied: WalPosition | None = WalPosition(1, 100),
        lag_bytes: int | None = 0,
        connected: bool = True,
    ) -> None:
        self.name = name
        self.applied_position = applied
        self.lag_bytes = lag_bytes
        self.connected = connected
        self.restart_requested = False
        self.queries = 0
        self.fail_next = False

    def caught_up_to(self, token):
        if token is None:
            return True
        return self.applied_position is not None and self.applied_position >= token

    def query(self, query, **kwargs):
        if self.fail_next:
            raise RuntimeError(f"{self.name} exploded")
        self.queries += 1
        return f"{self.name}:{query}"


class StubPrimary:
    """A primary stand-in exposing the bits the router touches."""

    def __init__(self, position=WalPosition(1, 100)) -> None:
        self._position = position
        self.queries = 0

    def wal_position(self):
        return self._position

    def query(self, query, **kwargs):
        self.queries += 1
        return f"primary:{query}"


def test_round_robin_spreads_reads_across_replicas():
    primary = StubPrimary()
    replicas = [StubReplica(f"r{i}") for i in range(3)]
    router = ReplicaSet(primary, replicas)
    for _ in range(9):
        router.query("q")
    assert [r.queries for r in replicas] == [3, 3, 3]
    assert primary.queries == 0
    assert router.stats.snapshot()["replica_queries"] == {"r0": 3, "r1": 3, "r2": 3}


def test_read_your_writes_token_gates_stale_replicas():
    primary = StubPrimary(position=WalPosition(1, 200))
    fresh = StubReplica("fresh", applied=WalPosition(1, 200))
    stale = StubReplica("stale", applied=WalPosition(1, 50))
    router = ReplicaSet(primary, [stale, fresh])
    token = WalPosition(1, 150)
    for _ in range(4):
        router.query("q", read_your_writes=token)
    assert fresh.queries == 4 and stale.queries == 0
    assert router.stats.snapshot()["read_your_writes_rejections"] >= 2

    # a token beyond every replica routes to the primary
    assert router.query("q", read_your_writes=WalPosition(2, 0)) == "primary:q"
    assert primary.queries == 1


def test_max_lag_bound_rejects_laggards():
    primary = StubPrimary()
    near = StubReplica("near", lag_bytes=10)
    far = StubReplica("far", lag_bytes=10_000)
    unknown = StubReplica("unknown", lag_bytes=None)
    router = ReplicaSet(primary, [far, unknown, near], max_lag_bytes=100)
    for _ in range(3):
        router.query("q")
    assert near.queries == 3
    assert far.queries == 0 and unknown.queries == 0
    assert router.stats.snapshot()["lag_rejections"] >= 2

    # per-query override loosens the bound
    router.query("q", max_lag_bytes=None)
    assert far.queries + unknown.queries == 1


def test_disconnected_and_restarting_replicas_are_skipped():
    primary = StubPrimary()
    dead = StubReplica("dead", connected=False)
    rebooting = StubReplica("rebooting")
    rebooting.restart_requested = True
    live = StubReplica("live")
    router = ReplicaSet(primary, [dead, rebooting, live])
    for _ in range(3):
        router.query("q")
    assert live.queries == 3
    assert dead.queries == 0 and rebooting.queries == 0
    assert router.stats.snapshot()["health_rejections"] >= 3


def test_failover_on_query_error_falls_back_and_suspends():
    primary = StubPrimary()
    flaky = StubReplica("flaky")
    flaky.fail_next = True
    router = ReplicaSet(primary, [flaky])
    assert router.query("q") == "primary:q"  # routed around the failure
    stats = router.stats.snapshot()
    assert stats["failovers"] == 1 and stats["primary_queries"] == 1
    # benched: stays out of rotation while the suspension lasts
    assert router.query("q") == "primary:q"
    assert flaky.queries == 0
    flaky.fail_next = False
    flaky.applied_position = WalPosition(1, 101)  # progress lifts the bench
    assert router.query("q") == "flaky:q"


def test_suspension_expires_without_apply_progress():
    """On a write-idle primary the applied position never moves, so the
    bench must expire on its own — one transient error must not remove a
    replica from rotation permanently."""
    primary = StubPrimary()
    flaky = StubReplica("flaky")
    flaky.fail_next = True
    router = ReplicaSet(primary, [flaky], suspend_seconds=0.05)
    assert router.query("q") == "primary:q"  # failure → benched
    flaky.fail_next = False
    assert router.query("q") == "primary:q"  # still benched
    time.sleep(0.1)  # bench expires; applied position unchanged
    assert router.query("q") == "flaky:q"


def test_stuck_replica_fails_over_after_timeout():
    primary = StubPrimary(position=WalPosition(1, 500))
    stuck = StubReplica("stuck", applied=WalPosition(1, 100))
    router = ReplicaSet(primary, [stuck], failover_seconds=0.05)
    assert router.query("q") == "stuck:q"  # first sighting: grace period
    time.sleep(0.1)  # no apply progress while the primary is ahead
    assert router.query("q") == "primary:q"
    # progress brings it back
    stuck.applied_position = WalPosition(1, 500)
    assert router.query("q") == "stuck:q"


def test_query_errors_propagate_without_suspending_replicas():
    """A malformed query is the query's fault: it must raise, not bench
    the replica that faithfully reported it."""
    from repro.errors import KokoSyntaxError

    class StrictReplica(StubReplica):
        def query(self, query, **kwargs):
            raise KokoSyntaxError("bad query")

    primary = StubPrimary()
    replica = StrictReplica("strict")
    router = ReplicaSet(primary, [replica])
    with pytest.raises(KokoSyntaxError):
        router.query("extract !!")
    assert router.stats.snapshot()["failovers"] == 0
    # the replica is still in rotation for well-formed queries
    healthy = StubReplica("strict2")
    router.add_replica(healthy)
    router.remove_replica(replica)
    assert router.query("q") == "strict2:q"


def test_prefer_primary_bypasses_replicas():
    primary = StubPrimary()
    replica = StubReplica("r0")
    router = ReplicaSet(primary, [replica])
    assert router.query("q", prefer_primary=True) == "primary:q"
    assert replica.queries == 0


def test_membership_add_remove():
    primary = StubPrimary()
    router = ReplicaSet(primary)
    assert len(router) == 0
    assert router.query("q") == "primary:q"  # no replicas: primary serves
    replica = StubReplica("r0")
    router.add_replica(replica)
    assert router.query("q") == "r0:q"
    router.remove_replica(replica)
    assert len(router) == 0
    assert router.query("q") == "primary:q"


# ----------------------------------------------------------------------
# live integration: tokens issued by writes gate real replicas
# ----------------------------------------------------------------------
def test_router_with_live_replicas_and_write_tokens(tmp_path):
    def as_rows(result):
        return [(t.doc_id, t.sid, t.values) for t in result]

    with KokoService(shards=2, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        ends = [InProcessTransport.pair() for _ in range(2)]
        for primary_end, _ in ends:
            shipper.serve(primary_end)
        replicas = [
            ReplicaService(replica_end, name=f"r{i}")
            for i, (_, replica_end) in enumerate(ends)
        ]
        router = ReplicaSet(primary, replicas)
        try:
            document, token = router.add_document(TEXTS[1], "doc1")
            assert document.doc_id == "doc1"
            assert token is not None
            # read-your-writes: whoever answers must already have doc1
            result = router.query(ENTITY_QUERY, read_your_writes=token)
            assert as_rows(result) == as_rows(primary.query(ENTITY_QUERY))
            for replica in replicas:
                assert replica.wait_caught_up(token)
            # once caught up, replicas take the (tokenless) read traffic
            for _ in range(4):
                router.query(ENTITY_QUERY)
            routed = router.stats.snapshot()["replica_queries"]
            assert sum(routed.values()) >= 2

            removed, remove_token = router.remove_document("doc0")
            assert removed.doc_id == "doc0"
            assert remove_token > token
            assert as_rows(
                router.query(ENTITY_QUERY, read_your_writes=remove_token)
            ) == as_rows(primary.query(ENTITY_QUERY))
            assert "routing" in router.routing_stats()
        finally:
            for replica in replicas:
                replica.close()
            shipper.close()
