"""End-to-end cluster telemetry: primary + TCP replica + scraped /cluster.

The PR's acceptance scenario: both nodes expose ``/metrics`` over HTTP,
the primary's ``/cluster`` document reports the replica's byte lag and
applied position, and the primary's ``/readyz`` flips unhealthy when the
replica stalls past the lag bound.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.observability import (
    ClusterTelemetry,
    TelemetryServer,
    http_get_json,
    scrape,
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
]


@pytest.fixture()
def cluster(make_tcp_cluster, listen_ready):
    """Primary + caught-up TCP replica, telemetry on both, /cluster wired.

    The primary/shipper/replica trio comes from the shared
    ``make_tcp_cluster`` fixture (torn down by it, after the telemetry
    servers built here).
    """
    primary, shipper, replica, _router, _host, _port = make_tcp_cluster(texts=TEXTS)

    replica_telemetry = TelemetryServer(replica, name="tcp-replica")
    listen_ready(*replica_telemetry.start())
    telemetry = ClusterTelemetry(
        primary=primary, shipper=shipper, max_lag_bytes=1024, poll_interval=0.05
    )
    telemetry.add_peer("tcp-replica", *replica_telemetry.address)
    primary_telemetry = TelemetryServer(primary, name="primary", cluster=telemetry)
    listen_ready(*primary_telemetry.start())
    telemetry.scrape_once()
    try:
        yield primary, replica, primary_telemetry, replica_telemetry, telemetry
    finally:
        telemetry.close()
        primary_telemetry.close()
        replica_telemetry.close()


def test_both_nodes_expose_metrics_over_http(cluster):
    _, _, primary_telemetry, replica_telemetry, _ = cluster
    for server in (primary_telemetry, replica_telemetry):
        status, body = scrape(*server.address, "/metrics")
        assert status == 200
        assert b"# TYPE koko_documents_added_total counter" in body


def test_cluster_document_reports_replica_lag_and_position(cluster):
    primary, replica, primary_telemetry, _, _ = cluster
    status, document = http_get_json(*primary_telemetry.address, "/cluster")
    assert status == 200
    assert document["ready"] is True
    assert document["primary"]["wal_position"] == str(primary.wal_position())
    (node,) = document["nodes"]
    assert node["name"] == "tcp-replica"
    assert node["scrape_ok"] and node["ready"]
    assert node["lag_bytes"] == 0
    assert node["applied_position"] == str(replica.applied_position)
    (session,) = document["shipper_sessions"]
    assert session["alive"] and not session["stalled"]


def test_replica_stats_and_readyz_cover_replication_state(cluster):
    _, replica, _, replica_telemetry, _ = cluster
    status, stats = http_get_json(*replica_telemetry.address, "/stats")
    assert status == 200
    assert stats["node"]["kind"] == "replica"
    assert stats["replication"]["connected"] is True
    status, ready = http_get_json(*replica_telemetry.address, "/readyz")
    assert status == 200
    assert ready["checks"]["connected"] is True


def test_primary_readyz_flips_when_the_replica_stalls_past_the_bound(cluster):
    primary, replica, primary_telemetry, _, telemetry = cluster
    status, _ = http_get_json(*primary_telemetry.address, "/readyz")
    assert status == 200

    # wedge the replica's apply path, then write past the 1 KiB lag bound
    gate = threading.Event()
    original = replica.service.apply_replicated

    def blocked(*args, **kwargs):
        gate.wait()
        return original(*args, **kwargs)

    replica.service.apply_replicated = blocked
    try:
        for index in range(12):
            primary.add_document(
                TEXTS[index % len(TEXTS)] + f" variation {index}", f"stall{index}"
            )
        deadline = time.monotonic() + 30
        flipped = False
        while time.monotonic() < deadline:
            telemetry.scrape_once()
            status, body = http_get_json(*primary_telemetry.address, "/readyz")
            if status == 503:
                assert body["checks"]["cluster_ready"] is False
                assert body["detail"]["cluster"]["problems"]
                flipped = True
                break
            time.sleep(0.1)
        assert flipped, "primary /readyz never flipped while the replica stalled"
    finally:
        gate.set()
        replica.service.apply_replicated = original


def test_scraped_health_feeds_replica_set_routing():
    """ReplicaSet consults an attached health source for routing."""
    from repro.replication.router import ReplicaSet

    class FakeReplica:
        name = "r1"
        connected = True
        restart_requested = False
        applied_position = None
        lag_bytes = None  # in-process lag unknown -> scraped lag stands in

        def caught_up_to(self, token):
            return True

        def query(self, query, **kwargs):
            return f"served {query}"

    class FakePrimary:
        def wal_position(self):
            return None

        def query(self, query, **kwargs):
            return f"primary {query}"

    class StubSource:
        def __init__(self):
            self.view = {"scrape_ok": True, "ready": True, "lag_bytes": 10}

        def replica_health(self, name):
            return self.view if name == "r1" else None

    replica = FakeReplica()
    router = ReplicaSet(FakePrimary(), [replica], max_lag_bytes=100)
    source = StubSource()
    router.attach_health_source(source)

    # healthy + scraped lag under the bound -> the replica serves
    assert router.query("q") == "served q"

    # scraped lag over the bound -> rejected for staleness, primary serves
    source.view = {"scrape_ok": True, "ready": True, "lag_bytes": 5000}
    assert router.query("q") == "primary q"
    assert router.stats.lag_rejections >= 1

    # scraped un-readiness (e.g. wedged checkpoint) -> health rejection
    source.view = {"scrape_ok": True, "ready": False, "lag_bytes": 0}
    assert router.query("q") == "primary q"
    assert router.stats.health_rejections >= 1

    # a failed scrape is not evidence against the replica
    source.view = {"scrape_ok": False}
    router.max_lag_bytes = None
    assert router.query("q") == "served q"

    # detaching restores pure in-process behaviour
    source.view = {"scrape_ok": True, "ready": False}
    router.attach_health_source(None)
    assert router.query("q") == "served q"
