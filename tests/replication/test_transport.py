"""Transport contract: ordering, timeouts, close semantics, TCP framing."""

from __future__ import annotations

import threading

import pytest

from repro.replication import InProcessTransport, TcpTransport, TransportClosed, connect_tcp


def test_in_process_pair_delivers_in_order():
    a, b = InProcessTransport.pair()
    for i in range(5):
        a.send(("msg", i))
    assert [b.recv(timeout=1.0)[1] for _ in range(5)] == list(range(5))
    b.send(("reply", "ok"))
    assert a.recv(timeout=1.0) == ("reply", "ok")


def test_in_process_recv_timeout_returns_none():
    a, b = InProcessTransport.pair()
    assert b.recv(timeout=0.01) is None
    assert a.recv(timeout=0.0) is None


def test_in_process_close_wakes_both_ends():
    a, b = InProcessTransport.pair()
    a.send(("queued", 1))
    a.close()
    assert b.recv(timeout=1.0) == ("queued", 1)  # queued data still drains
    with pytest.raises(TransportClosed):
        b.recv(timeout=1.0)
    with pytest.raises(TransportClosed):
        a.send(("late", 2))


def test_in_process_close_wakes_a_blocked_receiver():
    a, b = InProcessTransport.pair()
    outcome = []

    def blocked_recv():
        try:
            b.recv(timeout=30.0)
        except TransportClosed:
            outcome.append("closed")

    thread = threading.Thread(target=blocked_recv)
    thread.start()
    b.close()
    thread.join(timeout=5.0)
    assert outcome == ["closed"]


def tcp_pair():
    import socket

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    client = connect_tcp(host, port)
    server_sock, _ = listener.accept()
    listener.close()
    return TcpTransport(server_sock), client


def test_tcp_roundtrip_and_large_payload():
    server, client = tcp_pair()
    try:
        client.send(("hello", {"resume": None}))
        assert server.recv(timeout=5.0) == ("hello", {"resume": None})
        blob = b"x" * (3 * 1024 * 1024)  # bigger than one socket buffer
        server.send(("snapshot", blob))
        kind, received = client.recv(timeout=10.0)
        assert kind == "snapshot" and received == blob
    finally:
        server.close()
        client.close()


def test_tcp_zero_timeout_polls_without_breaking_the_stream():
    server, client = tcp_pair()
    try:
        assert server.recv(timeout=0.0) is None  # must not raise / close
        client.send(("still", "alive"))
        assert server.recv(timeout=5.0) == ("still", "alive")
    finally:
        server.close()
        client.close()


def test_tcp_peer_close_raises_transport_closed():
    server, client = tcp_pair()
    client.close()
    with pytest.raises(TransportClosed):
        while True:  # may need one recv to observe EOF
            server.recv(timeout=5.0)
    server.close()
