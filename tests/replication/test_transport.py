"""Transport contract: ordering, timeouts, close semantics, TCP framing."""

from __future__ import annotations

import threading

import pytest

from repro.replication import InProcessTransport, TcpTransport, TransportClosed, connect_tcp


def test_in_process_pair_delivers_in_order():
    a, b = InProcessTransport.pair()
    for i in range(5):
        a.send(("msg", i))
    assert [b.recv(timeout=1.0)[1] for _ in range(5)] == list(range(5))
    b.send(("reply", "ok"))
    assert a.recv(timeout=1.0) == ("reply", "ok")


def test_in_process_recv_timeout_returns_none():
    a, b = InProcessTransport.pair()
    assert b.recv(timeout=0.01) is None
    assert a.recv(timeout=0.0) is None


def test_in_process_close_wakes_both_ends():
    a, b = InProcessTransport.pair()
    a.send(("queued", 1))
    a.close()
    assert b.recv(timeout=1.0) == ("queued", 1)  # queued data still drains
    with pytest.raises(TransportClosed):
        b.recv(timeout=1.0)
    with pytest.raises(TransportClosed):
        a.send(("late", 2))


def test_in_process_close_wakes_a_blocked_receiver():
    a, b = InProcessTransport.pair()
    outcome = []

    def blocked_recv():
        try:
            b.recv(timeout=30.0)
        except TransportClosed:
            outcome.append("closed")

    thread = threading.Thread(target=blocked_recv)
    thread.start()
    b.close()
    thread.join(timeout=5.0)
    assert outcome == ["closed"]


def tcp_pair():
    import socket

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    client = connect_tcp(host, port)
    server_sock, _ = listener.accept()
    listener.close()
    return TcpTransport(server_sock), client


def test_tcp_roundtrip_and_large_payload():
    server, client = tcp_pair()
    try:
        client.send(("hello", {"resume": None}))
        assert server.recv(timeout=5.0) == ("hello", {"resume": None})
        blob = b"x" * (3 * 1024 * 1024)  # bigger than one socket buffer
        server.send(("snapshot", blob))
        kind, received = client.recv(timeout=10.0)
        assert kind == "snapshot" and received == blob
    finally:
        server.close()
        client.close()


def test_tcp_zero_timeout_polls_without_breaking_the_stream():
    server, client = tcp_pair()
    try:
        assert server.recv(timeout=0.0) is None  # must not raise / close
        client.send(("still", "alive"))
        assert server.recv(timeout=5.0) == ("still", "alive")
    finally:
        server.close()
        client.close()


def test_tcp_peer_close_raises_transport_closed():
    server, client = tcp_pair()
    client.close()
    with pytest.raises(TransportClosed):
        while True:  # may need one recv to observe EOF
            server.recv(timeout=5.0)
    server.close()


def test_tcp_recv_timeout_never_leaks_into_send():
    """A timed-out recv must not leave a timeout on the socket: the next
    large send on the same transport has to survive the kernel buffer
    filling up while the peer reads slowly (regression: a leaked
    sub-millisecond timeout made sendall raise mid-frame)."""
    server, client = tcp_pair()
    try:
        assert server.recv(timeout=0.0) is None  # the old code leaked here
        assert server._sock.gettimeout() is None

        blob = b"x" * (16 * 1024 * 1024)  # far beyond any socket buffer
        received = []

        def slow_reader():
            import time

            time.sleep(0.3)  # let the sender hit a full buffer first
            received.append(client.recv(timeout=30.0))

        reader = threading.Thread(target=slow_reader)
        reader.start()
        server.send(("records", blob))  # must block, not raise
        reader.join(timeout=30.0)
        assert received == [("records", blob)]
    finally:
        server.close()
        client.close()


def _auth_socket_pair():
    import socket

    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    dialer = socket.create_connection((host, port), timeout=5.0)
    dialer.settimeout(5.0)
    accepted, _ = listener.accept()
    accepted.settimeout(5.0)
    listener.close()
    return dialer, accepted


def test_auth_challenge_accepts_matching_token_and_rejects_others():
    from repro.replication.transport import (
        answer_auth_challenge,
        issue_auth_challenge,
    )

    for client_token, expected in (("s3cret", True), ("wrong", False)):
        dialer, accepted = _auth_socket_pair()
        outcomes = []

        def dial(dialer=dialer, token=client_token):
            try:
                answer_auth_challenge(dialer, token)
                outcomes.append("authed")
            except TransportClosed:
                outcomes.append("rejected")

        try:
            answered = threading.Thread(target=dial)
            answered.start()
            assert issue_auth_challenge(accepted, "s3cret") is expected
        finally:
            accepted.close()  # a real listener hangs up on a mismatch
            answered.join(timeout=5.0)
            dialer.close()
        assert outcomes == (["authed"] if expected else ["rejected"])


def test_auth_is_mutual_dialer_rejects_a_listener_without_the_token():
    """A replica misdirected at the wrong endpoint must not proceed to
    unpickling frames: the listener has to prove token knowledge too."""
    import os

    from repro.replication.transport import answer_auth_challenge

    dialer, accepted = _auth_socket_pair()

    def impostor_listener():
        # looks like a challenge, but the 'listener' has no token: its
        # proof can only be garbage
        accepted.sendall(os.urandom(16))
        accepted.recv(64)
        accepted.sendall(os.urandom(32))

    impostor = threading.Thread(target=impostor_listener)
    impostor.start()
    try:
        with pytest.raises(TransportClosed, match="listener failed"):
            answer_auth_challenge(dialer, "s3cret")
    finally:
        impostor.join(timeout=5.0)
        dialer.close()
        accepted.close()
