"""Acceptance: one ingest's trace assembles across primary and replica.

The tentpole's end-to-end claim: an ingest sent through ``RpcClient``
against a primary with a TCP replica yields — via the primary's
``/cluster/traces/<id>`` — a single assembled trace containing the
client call's server fragment, the primary's WAL append / fsync wait /
splice spans, the shipper's ship-latency span, and the replica's apply
span, with fragments from at least two distinct nodes.
"""

from __future__ import annotations

import time

import pytest

from repro.observability import ClusterTelemetry, TelemetryServer, http_get_json
from repro.rpc import RpcClient, RpcServer

TEXT = "I ate a chocolate ice cream, which was delicious, and also ate a pie."


def _span_names(node, out):
    out.add(node["name"])
    for child in node.get("children", ()):
        _span_names(child, out)
    return out


def _walk(fragment, fragments, names):
    fragments.append(fragment)
    _span_names(fragment["root"], names)
    for child in fragment["children"]:
        _walk(child, fragments, names)


@pytest.mark.parametrize("shards", [1, 4])
def test_cross_node_trace_assembles_from_both_nodes(
    make_tcp_cluster, listen_ready, shards
):
    primary, shipper, replica, _router, _host, _port = make_tcp_cluster(
        shards=shards
    )
    rpc = RpcServer(primary)
    rpc_host, rpc_port = listen_ready(*rpc.start())
    client = RpcClient(
        rpc_host, rpc_port, client_id="e2e", trace_sample_rate=1.0
    )
    cluster = ClusterTelemetry(primary=primary, shipper=shipper)
    primary_telemetry = TelemetryServer(
        primary, name="primary", cluster=cluster, rpc_server=rpc
    )
    listen_ready(*primary_telemetry.start())
    replica_telemetry = TelemetryServer(replica, name="tcp-replica")
    listen_ready(*replica_telemetry.start())
    cluster.add_peer("primary", *primary_telemetry.address)
    cluster.add_peer("tcp-replica", *replica_telemetry.address)
    try:
        client.add_document(TEXT, doc_id="traced0", wait_durable=True)
        assert replica.wait_caught_up(primary.wal_position(), timeout=30)

        (summary,) = client.traces.recent()
        trace_id = summary["trace_id"]

        # scrape views (captures the replica's heartbeat clock offset)
        cluster.scrape_once()

        # the replica's apply fragment lands from its applier thread;
        # poll its /traces/<id> until it shows up
        deadline = time.monotonic() + 15
        status = None
        while time.monotonic() < deadline:
            status, _ = http_get_json(
                *replica_telemetry.address, f"/traces/{trace_id}"
            )
            if status == 200:
                break
            time.sleep(0.05)
        assert status == 200, "replica never recorded its apply fragment"

        status, assembled = http_get_json(
            *primary_telemetry.address, f"/cluster/traces/{trace_id}"
        )
        assert status == 200
        assert assembled["trace_id"] == trace_id
        assert "errors" not in assembled
        assert len(assembled["nodes"]) >= 2

        fragments: list[dict] = []
        names: set[str] = set()
        for root in assembled["roots"]:
            _walk(root, fragments, names)
        kinds = {f["kind"] for f in fragments}

        # one connected tree: the rpc.server fragment is the only root
        # (the true root, the client's rpc.call span, lives client-side)
        (root,) = assembled["roots"]
        assert root["root"]["name"] == "rpc.server"

        # spans from every hop of the write path
        assert {"rpc", "ingest", "ship", "apply"} <= kinds
        assert {"rpc.server", "ingest", "wal.ship", "replica.apply"} <= names
        assert {"wal_append", "fsync_wait", "splice"} <= names

        # both nodes contributed fragments
        contributing = {f["node"] for f in fragments}
        assert {primary.name, "tcp-replica"} <= contributing

        # the replica fragment parents under the primary's ingest fragment
        by_kind = {f["kind"]: f for f in fragments}
        assert by_kind["apply"]["parent_span_id"] == by_kind["ingest"]["span_id"]
        assert by_kind["ship"]["parent_span_id"] == by_kind["ingest"]["span_id"]
    finally:
        client.close()
        rpc.close()
        cluster.close()
        primary_telemetry.close()
        replica_telemetry.close()


def test_untraced_ingest_ships_no_fragments(make_tcp_cluster, listen_ready):
    """Sampling off end to end: no node records anything for the write."""
    primary, _shipper, replica, _router, _host, _port = make_tcp_cluster(shards=1)
    rpc = RpcServer(primary)
    rpc_host, rpc_port = listen_ready(*rpc.start())
    client = RpcClient(rpc_host, rpc_port)  # sampling defaults to 0
    try:
        client.add_document(TEXT, doc_id="plain0", wait_durable=True)
        assert replica.wait_caught_up(primary.wal_position(), timeout=30)
        assert len(client.traces) == 0
        assert len(primary.trace_store) == 0
        assert len(replica.service.trace_store) == 0
        assert primary.wal_traces_logged == 0
    finally:
        client.close()
        rpc.close()
