"""Shipping + replica acceptance: a follower restored from snapshot plus
shipped WAL tail returns tuple-identical results to the primary, with zero
re-annotation, across checkpoint rotations and follower restarts."""

from __future__ import annotations

import threading
import time

import pytest

from repro.persistence import CheckpointPolicy, WalPosition
from repro.replication import (
    InProcessTransport,
    LogShipper,
    ReplicaService,
    connect_tcp,
)
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


class ExplodingPipeline:
    """Proves the replica's apply path never re-runs NLP annotation."""

    def annotate(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("replicas must never re-annotate")


def attach_replica(shipper, **kwargs) -> ReplicaService:
    primary_end, replica_end = InProcessTransport.pair()
    shipper.serve(primary_end)
    kwargs.setdefault("pipeline", ExplodingPipeline())
    return ReplicaService(replica_end, **kwargs)


def assert_identical(primary, replica):
    assert replica.wait_caught_up(primary.wal_position()), (
        replica.replication_stats()
    )
    assert len(replica) == len(primary)
    assert sorted(replica.document_ids()) == sorted(primary.document_ids())
    assert replica.generations == primary.generations
    for query in (ENTITY_QUERY, CITY_QUERY):
        assert as_rows(replica.query(query)) == as_rows(primary.query(query))


# ----------------------------------------------------------------------
# acceptance: tuple-identical at shards 1 and 4, zero re-annotation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_replica_is_tuple_identical_after_bootstrap_and_tail(tmp_path, shards):
    with KokoService(shards=shards, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:3]):
            primary.add_document(text, f"doc{index}")
        primary.checkpoint()  # part of the state arrives via snapshot...
        primary.add_document(TEXTS[3], "doc3")  # ...and part via the tail
        primary.remove_document("doc0")

        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert_identical(primary, replica)
            assert replica.lag_bytes == 0
            # and the replica keeps converging as the primary keeps writing
            primary.add_document(TEXTS[4], "doc4")
            assert_identical(primary, replica)
        finally:
            replica.close()
            shipper.close()


def test_replica_rejects_writes(tmp_path):
    from repro.errors import ReplicationError

    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            with pytest.raises(ReplicationError):
                replica.add_document("nope", "x")
            with pytest.raises(ReplicationError):
                replica.remove_document("doc0")
        finally:
            replica.close()
            shipper.close()


# ----------------------------------------------------------------------
# checkpoint rotation mid-tail: shipping must never lose records
# ----------------------------------------------------------------------
def test_replica_survives_checkpoint_rotations_mid_tail(tmp_path):
    with KokoService(
        shards=2,
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    ) as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            # rotate repeatedly while the follower tails; every record must
            # arrive even though the segments it reads keep getting sealed
            for round_index, text in enumerate(TEXTS[1:5], start=1):
                primary.add_document(text, f"doc{round_index}")
                assert primary.checkpoint() is not None
            primary.remove_document("doc2")
            assert_identical(primary, replica)
            # the shipped-from segments were pinned, not pruned mid-read
            assert replica.records_applied == 6
        finally:
            replica.close()
            shipper.close()


def test_prune_waits_for_the_shipping_pin(tmp_path):
    """While a session is attached, checkpoints must retain the segments it
    still needs; once it detaches, the next checkpoint may collect them."""
    with KokoService(
        shards=1,
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    ) as primary:
        shipper = LogShipper(primary)
        layout = primary._layout
        replica = attach_replica(shipper)
        try:
            primary.add_document(TEXTS[0], "doc0")
            assert replica.wait_caught_up(primary.wal_position())
            first_segment = min(layout.wal_segment_ids())
            session = shipper.sessions[0]
            pinned = session.pin()
            assert pinned is not None and pinned >= first_segment
        finally:
            replica.close()
            shipper.close()
        # the session is gone: pins released, pruning proceeds normally
        deadline = time.monotonic() + 5.0
        while shipper.sessions and time.monotonic() < deadline:
            time.sleep(0.01)
        primary.add_document(TEXTS[1], "doc1")
        primary.checkpoint()
        primary.add_document(TEXTS[2], "doc2")
        primary.checkpoint()
        assert min(layout.wal_segment_ids()) > first_segment


# ----------------------------------------------------------------------
# follower restart: fresh bootstrap catches up to the live end
# ----------------------------------------------------------------------
def test_follower_restart_catches_up_from_fresh_snapshot(tmp_path):
    with KokoService(shards=2, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:2]):
            primary.add_document(text, f"doc{index}")
        shipper = LogShipper(primary)
        first = attach_replica(shipper)
        try:
            assert_identical(primary, first)
        finally:
            first.close()  # the follower "dies"

        # the primary keeps ingesting and checkpointing meanwhile
        for index, text in enumerate(TEXTS[2:5], start=2):
            primary.add_document(text, f"doc{index}")
        primary.checkpoint()

        second = attach_replica(shipper)  # restart = fresh bootstrap
        try:
            assert_identical(primary, second)
            # restart bootstrapped from the newer checkpoint, not the log
            # from genesis: far fewer records replayed than ever written
            assert second.records_applied <= 2
        finally:
            second.close()
            shipper.close()


def test_reconnect_resumes_without_rebootstrap(tmp_path):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        primary_end, replica_end = InProcessTransport.pair()
        shipper.serve(primary_end)
        replica = ReplicaService(replica_end, pipeline=ExplodingPipeline())
        try:
            assert replica.wait_caught_up(primary.wal_position())
            replica_end.close()  # connection drops
            deadline = time.monotonic() + 5.0
            while replica.connected and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not replica.connected

            primary.add_document(TEXTS[1], "doc1")  # written while detached
            new_primary_end, new_replica_end = InProcessTransport.pair()
            shipper.serve(new_primary_end)
            resumed = replica.reconnect(new_replica_end)
            assert resumed  # position still on disk: stream continued
            assert_identical(primary, replica)
        finally:
            replica.close()
            shipper.close()


# ----------------------------------------------------------------------
# TCP transport end to end
# ----------------------------------------------------------------------
def test_tcp_shipping_end_to_end(tmp_path, listen_ready):
    with KokoService(shards=2, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:3]):
            primary.add_document(text, f"doc{index}")
        shipper = LogShipper(primary)
        host, port = listen_ready(*shipper.listen())
        replica = ReplicaService(
            connect_tcp(host, port), pipeline=ExplodingPipeline(), name="tcp-replica"
        )
        try:
            assert_identical(primary, replica)
            primary.add_document(TEXTS[3], "doc3")
            assert_identical(primary, replica)
            sessions = shipper.stats()["sessions"]
            assert len(sessions) == 1 and sessions[0]["peer"].startswith("tcp/")
        finally:
            replica.close()
            shipper.close()


def test_idle_caught_up_follower_never_goes_stalled(tmp_path):
    """An idle-but-healthy follower keeps acking off heartbeats, so its WAL
    retention pin survives ingest-quiet periods longer than stall_timeout."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary, heartbeat_interval=0.05, stall_timeout=0.4)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            time.sleep(0.8)  # two stall_timeouts of pure silence
            session = shipper.sessions[0]
            assert not session.stalled
            assert session.pin() is not None
        finally:
            replica.close()
            shipper.close()


def test_dead_applier_closes_its_session(tmp_path):
    """When the applier thread dies, the primary-side session must end too
    (nothing keeps shipping into a queue nobody drains)."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            # make the next apply explode: applier dies on this poisoned state
            replica.service.close()
            primary.add_document(TEXTS[1], "doc1")
            deadline = time.monotonic() + 5.0
            while (replica.connected or shipper.sessions) and (
                time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert not replica.connected
            assert shipper.sessions == []  # session ended with the applier
        finally:
            replica.close()
            shipper.close()


def test_shipper_requires_a_durable_primary():
    from repro.errors import ReplicationError

    with KokoService(shards=1) as memory_only:
        with pytest.raises(ReplicationError, match="durable"):
            LogShipper(memory_only)


# ----------------------------------------------------------------------
# shipping-port authentication
# ----------------------------------------------------------------------
def test_tcp_listener_with_auth_token_serves_matching_followers(
    tmp_path, listen_ready
):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        host, port = listen_ready(*shipper.listen(auth_token="s3cret"))
        replica = ReplicaService(
            connect_tcp(host, port, auth_token="s3cret"),
            pipeline=ExplodingPipeline(),
        )
        try:
            assert_identical(primary, replica)
        finally:
            replica.close()
            shipper.close()


def test_tcp_listener_rejects_wrong_auth_token(tmp_path, listen_ready):
    from repro.errors import ReplicationError

    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        host, port = listen_ready(*shipper.listen(auth_token="s3cret"))
        try:
            with pytest.raises(ReplicationError):
                ReplicaService(
                    connect_tcp(host, port, auth_token="wrong"),
                    pipeline=ExplodingPipeline(),
                )
            # the listener is still healthy for properly keyed followers
            replica = ReplicaService(
                connect_tcp(host, port, auth_token="s3cret"),
                pipeline=ExplodingPipeline(),
            )
            try:
                assert_identical(primary, replica)
            finally:
                replica.close()
        finally:
            shipper.close()


def test_non_loopback_listen_requires_auth_token_or_explicit_opt_out(tmp_path):
    from repro.errors import ReplicationError

    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        shipper = LogShipper(primary)
        try:
            with pytest.raises(ReplicationError, match="unauthenticated"):
                shipper.listen("0.0.0.0")
            # the explicit opt-out still binds
            host, port = shipper.listen("0.0.0.0", allow_unauthenticated=True)
            assert port > 0
        finally:
            shipper.close()


# ----------------------------------------------------------------------
# bootstrap vs stall_timeout: the retention pin must survive a slow ship
# ----------------------------------------------------------------------
class _SlowBootstrapTransport:
    """Primary-side transport stub whose snapshot send blocks until released
    (a follower on a slow link, mid-bootstrap)."""

    def __init__(self):
        import queue

        self.release = threading.Event()
        self.name = "slow-bootstrap"
        self._inbox = queue.Queue()
        self._inbox.put(("subscribe", {"resume": None}))

    def recv(self, timeout=None):
        import queue

        try:
            return self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None

    def send(self, message):
        if message[0] == "snapshot":
            self.release.wait()

    def close(self):
        self.release.set()


def test_bootstrap_longer_than_stall_timeout_keeps_the_pin(tmp_path):
    """A session mid-snapshot has no acks yet by design; it must keep its
    WAL retention pin past stall_timeout (regression: the pin dropped and a
    concurrent checkpoint could prune the fresh follower's tail)."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary, stall_timeout=0.05)
        transport = _SlowBootstrapTransport()
        session = shipper.serve(transport)
        try:
            deadline = time.monotonic() + 5.0
            while session.position is None and time.monotonic() < deadline:
                time.sleep(0.01)  # wait for bootstrap to claim its position
            time.sleep(0.2)  # several stall_timeouts into the snapshot ship
            assert not session.stalled
            assert session.pin() is not None
        finally:
            session.close()
            shipper.close()


class _SilentResumeTransport:
    """Subscribes with a valid resume position, then never acks."""

    def __init__(self, resume):
        self.name = "silent-resume"
        self._pending = [("subscribe", {"resume": resume})]

    def recv(self, timeout=None):
        if self._pending:
            return self._pending.pop()
        if timeout:
            time.sleep(min(timeout, 0.02))
        return None

    def send(self, message):
        pass

    def close(self):
        pass


def test_resumed_session_uses_the_ordinary_stall_clock(tmp_path):
    """A granted resume ships no snapshot: the follower has live state and
    can ack immediately, so it gets stall_timeout — not the much longer
    bootstrap grace (a silently dead resumed follower must not pin the
    log for bootstrap_timeout)."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary, stall_timeout=0.05, bootstrap_timeout=600.0)
        end = primary.wal_position()
        session = shipper.serve(
            _SilentResumeTransport(WalPosition(end.segment_id, 0))
        )
        try:
            deadline = time.monotonic() + 5.0
            while not session.resumed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert session.resumed
            time.sleep(0.2)  # past stall_timeout, nowhere near bootstrap_timeout
            assert session.stalled
            assert session.pin() is None
        finally:
            session.close()
            shipper.close()


def test_wait_caught_up_false_when_primary_end_never_learned():
    """A replica that disconnected before the first batch/heartbeat has no
    target to be caught up to: it must not report itself in sync."""
    replica = ReplicaService.__new__(ReplicaService)  # state only, no handshake
    replica._lock = threading.Lock()
    replica._applied = None
    replica._primary_end = None
    replica._connected = False
    assert replica.wait_caught_up(timeout=0.05) is False


def test_bootstrap_pin_expires_after_bootstrap_timeout(tmp_path):
    """The exemption is bounded: a follower wedged inside bootstrap counts
    as stalled after bootstrap_timeout, so it cannot pin the log forever."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary, stall_timeout=60.0, bootstrap_timeout=0.05)
        transport = _SlowBootstrapTransport()
        session = shipper.serve(transport)
        try:
            deadline = time.monotonic() + 5.0
            while session.position is None and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.2)
            assert session.stalled
            assert session.pin() is None
        finally:
            session.close()
            shipper.close()


# ----------------------------------------------------------------------
# handshake failures must not leak the transport
# ----------------------------------------------------------------------
def test_unexpected_handshake_mode_raises_and_closes_the_transport():
    from repro.errors import ReplicationError
    from repro.persistence import WalPosition

    class ResumeOnFreshTransport:
        """A (buggy/hostile) primary answering a fresh subscribe with a
        resume instead of a snapshot bootstrap."""

        closed = False

        def send(self, message):
            pass

        def recv(self, timeout=None):
            return ("hello", {"mode": "resume", "start": WalPosition(1, 0)})

        def close(self):
            self.closed = True

    transport = ResumeOnFreshTransport()
    with pytest.raises(ReplicationError, match="snapshot"):
        ReplicaService(transport)
    assert transport.closed
