"""Shipping + replica acceptance: a follower restored from snapshot plus
shipped WAL tail returns tuple-identical results to the primary, with zero
re-annotation, across checkpoint rotations and follower restarts."""

from __future__ import annotations

import time

import pytest

from repro.persistence import CheckpointPolicy
from repro.replication import (
    InProcessTransport,
    LogShipper,
    ReplicaService,
    connect_tcp,
)
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


class ExplodingPipeline:
    """Proves the replica's apply path never re-runs NLP annotation."""

    def annotate(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("replicas must never re-annotate")


def attach_replica(shipper, **kwargs) -> ReplicaService:
    primary_end, replica_end = InProcessTransport.pair()
    shipper.serve(primary_end)
    kwargs.setdefault("pipeline", ExplodingPipeline())
    return ReplicaService(replica_end, **kwargs)


def assert_identical(primary, replica):
    assert replica.wait_caught_up(primary.wal_position()), (
        replica.replication_stats()
    )
    assert len(replica) == len(primary)
    assert sorted(replica.document_ids()) == sorted(primary.document_ids())
    assert replica.generations == primary.generations
    for query in (ENTITY_QUERY, CITY_QUERY):
        assert as_rows(replica.query(query)) == as_rows(primary.query(query))


# ----------------------------------------------------------------------
# acceptance: tuple-identical at shards 1 and 4, zero re-annotation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_replica_is_tuple_identical_after_bootstrap_and_tail(tmp_path, shards):
    with KokoService(shards=shards, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:3]):
            primary.add_document(text, f"doc{index}")
        primary.checkpoint()  # part of the state arrives via snapshot...
        primary.add_document(TEXTS[3], "doc3")  # ...and part via the tail
        primary.remove_document("doc0")

        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert_identical(primary, replica)
            assert replica.lag_bytes == 0
            # and the replica keeps converging as the primary keeps writing
            primary.add_document(TEXTS[4], "doc4")
            assert_identical(primary, replica)
        finally:
            replica.close()
            shipper.close()


def test_replica_rejects_writes(tmp_path):
    from repro.errors import ReplicationError

    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            with pytest.raises(ReplicationError):
                replica.add_document("nope", "x")
            with pytest.raises(ReplicationError):
                replica.remove_document("doc0")
        finally:
            replica.close()
            shipper.close()


# ----------------------------------------------------------------------
# checkpoint rotation mid-tail: shipping must never lose records
# ----------------------------------------------------------------------
def test_replica_survives_checkpoint_rotations_mid_tail(tmp_path):
    with KokoService(
        shards=2,
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    ) as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            # rotate repeatedly while the follower tails; every record must
            # arrive even though the segments it reads keep getting sealed
            for round_index, text in enumerate(TEXTS[1:5], start=1):
                primary.add_document(text, f"doc{round_index}")
                assert primary.checkpoint() is not None
            primary.remove_document("doc2")
            assert_identical(primary, replica)
            # the shipped-from segments were pinned, not pruned mid-read
            assert replica.records_applied == 6
        finally:
            replica.close()
            shipper.close()


def test_prune_waits_for_the_shipping_pin(tmp_path):
    """While a session is attached, checkpoints must retain the segments it
    still needs; once it detaches, the next checkpoint may collect them."""
    with KokoService(
        shards=1,
        storage_dir=tmp_path / "svc",
        checkpoint_policy=CheckpointPolicy.disabled(),
    ) as primary:
        shipper = LogShipper(primary)
        layout = primary._layout
        replica = attach_replica(shipper)
        try:
            primary.add_document(TEXTS[0], "doc0")
            assert replica.wait_caught_up(primary.wal_position())
            first_segment = min(layout.wal_segment_ids())
            session = shipper.sessions[0]
            pinned = session.pin()
            assert pinned is not None and pinned >= first_segment
        finally:
            replica.close()
            shipper.close()
        # the session is gone: pins released, pruning proceeds normally
        deadline = time.monotonic() + 5.0
        while shipper.sessions and time.monotonic() < deadline:
            time.sleep(0.01)
        primary.add_document(TEXTS[1], "doc1")
        primary.checkpoint()
        primary.add_document(TEXTS[2], "doc2")
        primary.checkpoint()
        assert min(layout.wal_segment_ids()) > first_segment


# ----------------------------------------------------------------------
# follower restart: fresh bootstrap catches up to the live end
# ----------------------------------------------------------------------
def test_follower_restart_catches_up_from_fresh_snapshot(tmp_path):
    with KokoService(shards=2, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:2]):
            primary.add_document(text, f"doc{index}")
        shipper = LogShipper(primary)
        first = attach_replica(shipper)
        try:
            assert_identical(primary, first)
        finally:
            first.close()  # the follower "dies"

        # the primary keeps ingesting and checkpointing meanwhile
        for index, text in enumerate(TEXTS[2:5], start=2):
            primary.add_document(text, f"doc{index}")
        primary.checkpoint()

        second = attach_replica(shipper)  # restart = fresh bootstrap
        try:
            assert_identical(primary, second)
            # restart bootstrapped from the newer checkpoint, not the log
            # from genesis: far fewer records replayed than ever written
            assert second.records_applied <= 2
        finally:
            second.close()
            shipper.close()


def test_reconnect_resumes_without_rebootstrap(tmp_path):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        primary_end, replica_end = InProcessTransport.pair()
        shipper.serve(primary_end)
        replica = ReplicaService(replica_end, pipeline=ExplodingPipeline())
        try:
            assert replica.wait_caught_up(primary.wal_position())
            replica_end.close()  # connection drops
            deadline = time.monotonic() + 5.0
            while replica.connected and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not replica.connected

            primary.add_document(TEXTS[1], "doc1")  # written while detached
            new_primary_end, new_replica_end = InProcessTransport.pair()
            shipper.serve(new_primary_end)
            resumed = replica.reconnect(new_replica_end)
            assert resumed  # position still on disk: stream continued
            assert_identical(primary, replica)
        finally:
            replica.close()
            shipper.close()


# ----------------------------------------------------------------------
# TCP transport end to end
# ----------------------------------------------------------------------
def test_tcp_shipping_end_to_end(tmp_path):
    with KokoService(shards=2, storage_dir=tmp_path / "svc") as primary:
        for index, text in enumerate(TEXTS[:3]):
            primary.add_document(text, f"doc{index}")
        shipper = LogShipper(primary)
        host, port = shipper.listen()
        replica = ReplicaService(
            connect_tcp(host, port), pipeline=ExplodingPipeline(), name="tcp-replica"
        )
        try:
            assert_identical(primary, replica)
            primary.add_document(TEXTS[3], "doc3")
            assert_identical(primary, replica)
            sessions = shipper.stats()["sessions"]
            assert len(sessions) == 1 and sessions[0]["peer"].startswith("tcp/")
        finally:
            replica.close()
            shipper.close()


def test_idle_caught_up_follower_never_goes_stalled(tmp_path):
    """An idle-but-healthy follower keeps acking off heartbeats, so its WAL
    retention pin survives ingest-quiet periods longer than stall_timeout."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary, heartbeat_interval=0.05, stall_timeout=0.4)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            time.sleep(0.8)  # two stall_timeouts of pure silence
            session = shipper.sessions[0]
            assert not session.stalled
            assert session.pin() is not None
        finally:
            replica.close()
            shipper.close()


def test_dead_applier_closes_its_session(tmp_path):
    """When the applier thread dies, the primary-side session must end too
    (nothing keeps shipping into a queue nobody drains)."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXTS[0], "doc0")
        shipper = LogShipper(primary)
        replica = attach_replica(shipper)
        try:
            assert replica.wait_caught_up(primary.wal_position())
            # make the next apply explode: applier dies on this poisoned state
            replica.service.close()
            primary.add_document(TEXTS[1], "doc1")
            deadline = time.monotonic() + 5.0
            while (replica.connected or shipper.sessions) and (
                time.monotonic() < deadline
            ):
                time.sleep(0.01)
            assert not replica.connected
            assert shipper.sessions == []  # session ended with the applier
        finally:
            replica.close()
            shipper.close()


def test_shipper_requires_a_durable_primary():
    from repro.errors import ReplicationError

    with KokoService(shards=1) as memory_only:
        with pytest.raises(ReplicationError, match="durable"):
            LogShipper(memory_only)
