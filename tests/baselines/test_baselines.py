"""Tests for the extraction baselines: CRF, IKE, NELL, Odin."""

from __future__ import annotations

import pytest

from repro.baselines.crf import AveragedPerceptronCrf, CrfEntityExtractor, TaggedSentence
from repro.baselines.crf_features import sentence_features, token_features
from repro.baselines.ike import IkeExtractor, IkePattern
from repro.baselines.nell import NellBootstrapper
from repro.baselines.odin import OdinMatcher, OdinRule
from repro.indexing.query_ir import CHILD, DESCENDANT, KIND_PARSE_LABEL, KIND_POS, KIND_WORD, TreePath, TreeStep


class TestCrfFeatures:
    def test_core_features_present(self):
        features = token_features(["Blue", "Bottle", "serves", "coffee"], 0)
        assert "w=blue" in features
        assert "w.istitle=True" in features
        assert "BOS" in features
        assert "w+1=bottle" in features
        assert any(f.startswith("prefix3=") for f in features)
        assert any(f.startswith("suffix3=") for f in features)

    def test_digit_features(self):
        features = token_features(["1900"], 0)
        assert "w.all_digits=True" in features

    def test_sentence_features_length(self):
        tokens = ["a", "b", "c"]
        assert len(sentence_features(tokens)) == 3


class TestAveragedPerceptronCrf:
    def _instances(self):
        return [
            TaggedSentence(["Velvet", "Fox", "serves", "coffee"], ["B-ENT", "I-ENT", "O", "O"]),
            TaggedSentence(["Copper", "Owl", "serves", "espresso"], ["B-ENT", "I-ENT", "O", "O"]),
            TaggedSentence(["people", "drink", "coffee"], ["O", "O", "O"]),
        ] * 4

    def test_learns_training_data(self):
        crf = AveragedPerceptronCrf(epochs=5)
        crf.train(self._instances())
        assert crf.predict(["Velvet", "Fox", "serves", "coffee"])[:2] == ["B-ENT", "I-ENT"]

    def test_generalises_to_similar_pattern(self):
        crf = AveragedPerceptronCrf(epochs=5)
        crf.train(self._instances())
        predicted = crf.predict(["Silver", "Heron", "serves", "coffee"])
        assert predicted[0] == "B-ENT"

    def test_empty_sentence(self):
        crf = AveragedPerceptronCrf()
        crf.train(self._instances())
        assert crf.predict([]) == []

    def test_extractor_end_to_end(self, cafe_corpus):
        extractor = CrfEntityExtractor(epochs=2)
        doc_ids = [d.doc_id for d in cafe_corpus]
        extractor.train(cafe_corpus, "cafe", set(doc_ids[: len(doc_ids) // 2]))
        predictions = extractor.extract_all(cafe_corpus)
        assert set(predictions) == set(doc_ids)

    def test_bio_labelling_of_gold(self, cafe_corpus):
        extractor = CrfEntityExtractor()
        doc = cafe_corpus.documents[0]
        instances = extractor.build_instances(cafe_corpus, "cafe", {doc.doc_id})
        labels = {label for inst in instances for label in inst.labels}
        assert "B-ENT" in labels


class TestIke:
    def test_pattern_after(self, pipeline):
        doc = pipeline.annotate("The owners announced a new cafe called Velvet Fox Collective.", doc_id="d")
        extractor = IkeExtractor([IkePattern(context="cafe called", np_side="after", window=3)])
        assert "Velvet Fox Collective" in extractor.extract(doc)

    def test_pattern_before(self, pipeline):
        doc = pipeline.annotate("Velvet Fox Collective serves coffee from local farms.", doc_id="d")
        extractor = IkeExtractor([IkePattern(context="serves coffee", np_side="before", window=10)])
        assert "Velvet Fox Collective" in extractor.extract(doc)

    def test_contiguity_requirement(self, pipeline):
        """Gapped phrasings are invisible to IKE (unlike KOKO descriptors)."""
        doc = pipeline.annotate("Velvet Fox Collective serves carefully sourced coffee.", doc_id="d")
        extractor = IkeExtractor([IkePattern(context="serves coffee", np_side="before", window=10)])
        assert extractor.extract(doc) == set()

    def test_expansion_reaches_paraphrase(self, pipeline):
        doc = pipeline.annotate("Velvet Fox Collective sells coffee to regulars.", doc_id="d")
        extractor = IkeExtractor(
            [IkePattern(context="serves coffee", np_side="before", window=10, expand_k=15)]
        )
        assert "Velvet Fox Collective" in extractor.extract(doc)

    def test_sentence_locality(self, pipeline):
        doc = pipeline.annotate(
            "Velvet Fox Collective opened in May. The shop serves coffee.", doc_id="d"
        )
        extractor = IkeExtractor([IkePattern(context="serves coffee", np_side="before", window=10)])
        # the cafe name is in another sentence, so IKE cannot link it
        assert "Velvet Fox Collective" not in extractor.extract(doc)

    def test_extract_all(self, cafe_corpus):
        extractor = IkeExtractor([IkePattern(context="a cafe", np_side="before", window=4)])
        results = extractor.extract_all(cafe_corpus)
        assert set(results) == {d.doc_id for d in cafe_corpus}


class TestNell:
    def test_promotes_instances_with_shared_contexts(self, pipeline):
        texts = {}
        cafes = ["Alpha Cafe", "Beta Cafe", "Gamma Cafe", "Delta Cafe"]
        for i, cafe in enumerate(cafes):
            texts[f"d{i}"] = (
                f"{cafe} opened in Portland last week. "
                f"Locals love {cafe} because {cafe} serves coffee."
            )
        corpus = pipeline.annotate_corpus(texts, name="nell")
        bootstrapper = NellBootstrapper(
            seeds={"Alpha Cafe", "Beta Cafe"},
            min_pattern_support=2,
            min_instance_support=1,
            iterations=3,
        )
        state = bootstrapper.run(corpus)
        assert "gamma cafe" in state.instances

    def test_conservative_with_high_support(self, pipeline):
        corpus = pipeline.annotate_corpus(
            {"d0": "Alpha Cafe serves coffee.", "d1": "Beta Cafe serves coffee.",
             "d2": "Gamma Cafe brews tea."},
            name="nell",
        )
        bootstrapper = NellBootstrapper(
            seeds={"Alpha Cafe"}, min_pattern_support=3, min_instance_support=3, iterations=2
        )
        state = bootstrapper.run(corpus)
        assert "gamma cafe" not in state.instances

    def test_extract_all_shape(self, cafe_corpus):
        bootstrapper = NellBootstrapper(seeds={"Nonexistent Cafe"}, iterations=1)
        results = bootstrapper.extract_all(cafe_corpus)
        assert set(results) == {d.doc_id for d in cafe_corpus}


class TestOdin:
    def _rule(self):
        return OdinRule(
            name="dobj-of-ate",
            priority=1,
            arguments=(
                ("verb", TreePath((TreeStep(DESCENDANT, "ate", KIND_WORD),))),
                (
                    "object",
                    TreePath(
                        (
                            TreeStep(DESCENDANT, "ate", KIND_WORD),
                            TreeStep(CHILD, "dobj", KIND_PARSE_LABEL),
                        )
                    ),
                ),
            ),
            outputs=("object",),
        )

    def test_rule_fires_on_matching_sentences(self, paper_corpus):
        matcher = OdinMatcher([self._rule()])
        mentions = matcher.run(paper_corpus)
        values = {m.values["object"] for m in mentions}
        assert {"cream", "cheesecake", "pie"} <= values

    def test_fixpoint_terminates_and_dedupes(self, paper_corpus):
        matcher = OdinMatcher([self._rule()], max_iterations=5)
        first = matcher.run(paper_corpus)
        second = matcher.run(paper_corpus)
        assert len(first) == len(second)
        assert matcher.last_iterations <= 5
        assert matcher.last_runtime >= 0

    def test_rule_without_match_produces_nothing(self, paper_corpus):
        rule = OdinRule(
            name="none",
            priority=1,
            arguments=(("x", TreePath((TreeStep(DESCENDANT, "zebra", KIND_WORD),))),),
            outputs=("x",),
        )
        assert OdinMatcher([rule]).run(paper_corpus) == []

    def test_priority_ordering(self, paper_corpus):
        low = self._rule()
        high = OdinRule(
            name="verbs", priority=0,
            arguments=(("v", TreePath((TreeStep(DESCENDANT, "verb", KIND_POS),))),),
            outputs=("v",),
        )
        matcher = OdinMatcher([low, high])
        assert matcher.rules[0].name == "verbs"
