"""Unit tests for the metrics registry: instruments, families, exposition."""

from __future__ import annotations

import json

import pytest

from repro.observability.metrics import (
    CALLBACK_ERRORS_METRIC,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _pow2_bucket_float,
    _pow2_bucket_int,
    histogram_quantiles,
)


# ----------------------------------------------------------------------
# bucketing
# ----------------------------------------------------------------------
def test_int_buckets_are_smallest_power_of_two_at_or_above():
    assert [_pow2_bucket_int(v) for v in (0, 1, 2, 3, 4, 5, 17, 1024)] == [
        1, 1, 2, 4, 4, 8, 32, 1024,
    ]


def test_float_buckets_are_smallest_power_of_two_at_or_above():
    assert _pow2_bucket_float(0.3) == 0.5
    assert _pow2_bucket_float(0.5) == 0.5
    assert _pow2_bucket_float(0.6) == 1.0
    assert _pow2_bucket_float(2.0) == 2.0
    assert _pow2_bucket_float(3.5) == 4.0
    # non-positive values clamp to the smallest representable bucket
    assert _pow2_bucket_float(0.0) == 2.0 ** -64
    assert _pow2_bucket_float(-1.0) == 2.0 ** -64


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative_increments():
    counter = Counter()
    counter.inc()
    counter.inc(41)
    assert counter.value == 42
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 42


def test_gauge_set_inc_dec_and_set_max():
    gauge = Gauge()
    gauge.set(5)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 6
    gauge.set_max(4)  # lower: ignored
    assert gauge.value == 6
    gauge.set_max(9)
    assert gauge.value == 9


def test_callback_gauge_reads_live_and_falls_back_on_error():
    gauge = Gauge()
    gauge.set(7)
    state = {"value": 1.5}
    gauge.set_function(lambda: state["value"])
    assert gauge.value == 1.5
    state["value"] = 2.5
    assert gauge.value == 2.5

    def broken() -> float:
        raise RuntimeError("scrape-time failure")

    gauge.set_function(broken)
    assert gauge.value == 7  # falls back to the stored value
    gauge.set_function(None)
    assert gauge.value == 7


def test_histogram_buckets_ints_like_the_wal_batch_histogram():
    histogram = Histogram()
    for value in (1, 2, 3, 3, 9):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.sum == 18
    assert histogram.bucket_counts() == {1: 1, 2: 1, 4: 2, 16: 1}


def test_histogram_buckets_floats_fractionally():
    histogram = Histogram()
    histogram.observe(0.0003)
    histogram.observe(0.4)
    assert histogram.bucket_counts() == {
        _pow2_bucket_float(0.0003): 1,
        0.5: 1,
    }
    snap = histogram.snapshot_value()
    assert snap["count"] == 2
    assert snap["sum"] == pytest.approx(0.4003)


# ----------------------------------------------------------------------
# labeled families
# ----------------------------------------------------------------------
def test_labeled_counter_children_and_values_keep_raw_keys():
    registry = MetricsRegistry()
    family = registry.counter("t_shard_total", "per shard", labelnames=("shard",))
    family.labels(0).inc(2)
    family.labels(1).inc()
    assert family.labels(0) is family.labels(0)
    assert family.values() == {0: 2, 1: 1}
    assert family.items() == [((0,), 2), ((1,), 1)]
    assert family.snapshot_value() == {"0": 2, "1": 1}
    with pytest.raises(ValueError):
        family.labels(0, 1)  # wrong arity


def test_labeled_callback_gauge_resolves_at_read_time():
    registry = MetricsRegistry()
    family = registry.gauge("t_lag", "per peer", labelnames=("peer",))
    family.labels("a").set(3.0)
    live = {"value": 11.0}
    family.labels("b").set_function(lambda: live["value"])
    assert family.values() == {"a": 3.0, "b": 11.0}
    live["value"] = 12.0
    assert family.values()["b"] == 12.0


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_is_get_or_create_and_rejects_kind_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("t_total", "help")
    assert registry.counter("t_total") is counter
    assert registry.get("t_total") is counter
    assert registry.get("missing") is None
    with pytest.raises(ValueError):
        registry.gauge("t_total")
    with pytest.raises(ValueError):
        registry.counter("t_total", labelnames=("shard",))
    assert registry.names() == ["t_total"]


def test_registry_snapshot_and_json_round_trip():
    registry = MetricsRegistry()
    registry.counter("t_total").inc(3)
    registry.gauge("t_gauge").set(1.5)
    registry.histogram("t_hist").observe(2)
    registry.counter("t_family", labelnames=("k",)).labels("x").inc()
    snapshot = registry.snapshot()
    assert snapshot["t_total"] == 3
    assert snapshot["t_gauge"] == 1.5
    assert snapshot["t_hist"] == {"count": 1, "sum": 2, "buckets": {2: 1}}
    assert snapshot["t_family"] == {"x": 1}
    parsed = json.loads(registry.render_json(indent=2))
    assert parsed["t_total"] == 3 and parsed["t_family"] == {"x": 1}


def test_render_text_matches_golden_exposition():
    registry = MetricsRegistry()
    requests = registry.counter("app_requests_total", "Requests served.")
    requests.inc(3)
    in_progress = registry.gauge("app_in_progress", "In-flight requests.")
    in_progress.set(2)
    shards = registry.counter(
        "app_shard_requests_total", "Per-shard requests.", labelnames=("shard",)
    )
    shards.labels(0).inc(2)
    shards.labels(1).inc()
    batches = registry.histogram("app_batch_size", "Batch sizes.")
    for value in (1, 3, 3):
        batches.observe(value)

    assert registry.render_text() == (
        "# HELP app_requests_total Requests served.\n"
        "# TYPE app_requests_total counter\n"
        "app_requests_total 3\n"
        "# HELP app_in_progress In-flight requests.\n"
        "# TYPE app_in_progress gauge\n"
        "app_in_progress 2\n"
        "# HELP app_shard_requests_total Per-shard requests.\n"
        "# TYPE app_shard_requests_total counter\n"
        'app_shard_requests_total{shard="0"} 2\n'
        'app_shard_requests_total{shard="1"} 1\n'
        "# HELP app_batch_size Batch sizes.\n"
        "# TYPE app_batch_size histogram\n"
        'app_batch_size_bucket{le="1"} 1\n'
        'app_batch_size_bucket{le="4"} 3\n'
        'app_batch_size_bucket{le="+Inf"} 3\n'
        "app_batch_size_sum 7\n"
        "app_batch_size_count 3\n"
    )


def test_render_text_labeled_histogram_merges_label_sets():
    registry = MetricsRegistry()
    family = registry.histogram("t_lat", "per stage", labelnames=("stage",))
    family.labels("load").observe(2)
    text = registry.render_text()
    assert 't_lat_bucket{stage="load",le="2"} 1' in text
    assert 't_lat_bucket{stage="load",le="+Inf"} 1' in text
    assert 't_lat_sum{stage="load"} 2' in text
    assert 't_lat_count{stage="load"} 1' in text


def test_render_text_golden_labeled_family_with_escaping():
    registry = MetricsRegistry()
    family = registry.gauge(
        "app_peer_lag", 'Lag per peer ("bytes").', labelnames=("peer",)
    )
    family.labels('tcp/"a"\\b\nline').set(4)
    family.labels("plain").set(1)
    assert registry.render_text() == (
        '# HELP app_peer_lag Lag per peer ("bytes").\n'
        "# TYPE app_peer_lag gauge\n"
        'app_peer_lag{peer="tcp/\\"a\\"\\\\b\\nline"} 4\n'
        'app_peer_lag{peer="plain"} 1\n'
    )


def test_callback_error_does_not_abort_a_scrape():
    registry = MetricsRegistry()
    registry.counter("t_before_total", "Earlier family.").inc(5)

    def broken() -> float:
        raise RuntimeError("scrape-time failure")

    registry.gauge("t_broken", "Faulty callback gauge.").set_function(broken)
    registry.gauge("t_after", "Later family.").set(7)

    text = registry.render_text()
    # the scrape completed and every healthy family is present
    assert "t_before_total 5" in text
    assert "t_after 7" in text
    # the faulty gauge keeps its HELP/TYPE but emits no sample line
    assert "# TYPE t_broken gauge" in text
    assert "\nt_broken " not in text
    # the failure is accounted, not swallowed
    assert f"{CALLBACK_ERRORS_METRIC} 1" in text
    assert registry.get(CALLBACK_ERRORS_METRIC).value == 1
    # and the error counter is not duplicated on later scrapes
    second = registry.render_text()
    assert second.count(f"# TYPE {CALLBACK_ERRORS_METRIC} counter") == 1
    assert f"{CALLBACK_ERRORS_METRIC} 2" in second


def test_callback_error_in_labeled_family_skips_only_that_child():
    registry = MetricsRegistry()
    family = registry.gauge("t_lag", "per peer", labelnames=("peer",))
    family.labels("good").set(3)

    def broken() -> float:
        raise RuntimeError("boom")

    family.labels("bad").set_function(broken)
    text = registry.render_text()
    assert 't_lag{peer="good"} 3' in text
    assert 'peer="bad"' not in text
    assert f"{CALLBACK_ERRORS_METRIC} 1" in text


# ----------------------------------------------------------------------
# quantile estimation
# ----------------------------------------------------------------------
def test_histogram_quantiles_interpolates_within_buckets():
    histogram = Histogram()
    for value in (0.010, 0.012, 0.014, 0.020, 0.100):
        histogram.observe(value)
    quantiles = histogram_quantiles(histogram, (50.0, 95.0, 99.0))
    # p50 lands in the (0.0078125, 0.015625] bucket, p99 in (0.0625, 0.125]
    assert 0.0078125 <= quantiles[50.0] <= 0.015625
    assert 0.0625 <= quantiles[99.0] <= 0.125
    assert quantiles[50.0] <= quantiles[95.0] <= quantiles[99.0]


def test_histogram_quantiles_accepts_snapshots_and_validates():
    histogram = Histogram()
    histogram.observe(2)
    from_instrument = histogram_quantiles(histogram, (99.0,))
    from_snapshot = histogram_quantiles(histogram.snapshot_value(), (99.0,))
    assert from_instrument == from_snapshot
    assert histogram_quantiles(Histogram(), (50.0,)) == {50.0: 0.0}
    with pytest.raises(ValueError):
        histogram_quantiles(histogram, (0.0,))
    with pytest.raises(ValueError):
        histogram_quantiles(histogram, (101.0,))
