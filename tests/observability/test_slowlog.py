"""Unit tests for the slow-op log: ring buffer, file sink, rotation."""

from __future__ import annotations

import json
import os

import pytest

from repro.observability.slowlog import SlowOpLog


def entry(index: int, pad: int = 0) -> dict:
    payload = {"kind": "query", "index": index}
    if pad:
        payload["pad"] = "x" * pad
    return payload


def read_jsonl(path) -> list[dict]:
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def test_ring_buffer_keeps_newest_first_and_caps_capacity():
    log = SlowOpLog(capacity=3)
    for index in range(5):
        log.record(entry(index))
    recent = log.recent()
    assert [item["index"] for item in recent] == [4, 3, 2]
    assert [item["index"] for item in log.recent(1)] == [4]


def test_file_sink_writes_jsonl_and_flushes_on_close(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowOpLog(capacity=8, path=str(path))
    log.record(entry(0))
    log.record(entry(1))
    log.close()
    assert [item["index"] for item in read_jsonl(path)] == [0, 1]


def test_rotation_moves_full_file_aside_and_keeps_writing(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowOpLog(capacity=64, path=str(path), max_file_bytes=400)
    total = 12
    for index in range(total):
        log.record(entry(index, pad=80))
    log.close()

    rotated = tmp_path / "slow.jsonl.1"
    assert rotated.exists(), "cap crossed but no rotation happened"
    assert os.path.getsize(path) <= 400
    assert os.path.getsize(rotated) <= 400
    # the kept generations are a contiguous, ordered suffix of the stream:
    # nothing was lost across the *last* rotation boundary
    indices = [item["index"] for item in read_jsonl(rotated)] + [
        item["index"] for item in read_jsonl(path)
    ]
    assert indices == list(range(indices[0], total))
    assert indices[-1] == total - 1


def test_rotation_overwrites_previous_rotated_file(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowOpLog(capacity=64, path=str(path), max_file_bytes=200)
    for index in range(30):
        log.record(entry(index, pad=80))
    log.close()
    # exactly one rotated generation is kept
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "slow.jsonl",
        "slow.jsonl.1",
    ]


def test_rotation_can_be_disabled_and_cap_is_validated(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowOpLog(capacity=8, path=str(path), max_file_bytes=None)
    for index in range(20):
        log.record(entry(index, pad=200))
    log.close()
    assert not (tmp_path / "slow.jsonl.1").exists()
    assert len(read_jsonl(path)) == 20
    with pytest.raises(ValueError):
        SlowOpLog(capacity=8, path=str(path), max_file_bytes=0)


def test_reopen_appends_and_counts_existing_bytes_toward_the_cap(tmp_path):
    path = tmp_path / "slow.jsonl"
    first = SlowOpLog(capacity=8, path=str(path), max_file_bytes=300)
    first.record(entry(0, pad=100))
    first.close()
    second = SlowOpLog(capacity=8, path=str(path), max_file_bytes=300)
    second.record(entry(1, pad=100))
    second.record(entry(2, pad=100))  # pushes past the cap -> rotate
    second.close()
    assert (tmp_path / "slow.jsonl.1").exists()
