"""Tests for the telemetry HTTP plane: endpoints, probes, concurrency."""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.observability import TelemetryServer, http_get_json, scrape
from repro.service import KokoService

_SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


def _load_check_prom():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_prom", _SCRIPTS / "check_prom.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_prom = _load_check_prom()

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Paolo visited Beijing and ate a delicious croissant.",
]


@pytest.fixture()
def service():
    svc = KokoService(shards=2, use_default_vectors=True, slow_query_ms=0.0)
    for index, text in enumerate(TEXTS):
        svc.add_document(text, f"doc{index}")
    yield svc
    svc.close()


@pytest.fixture()
def server(service):
    with TelemetryServer(service, name="test-node") as telemetry:
        yield telemetry


def test_metrics_endpoint_serves_lintable_prometheus_text(service, server):
    service.query(ENTITY_QUERY)
    status, body = scrape(*server.address, "/metrics")
    assert status == 200
    text = body.decode("utf-8")
    assert check_prom.lint_exposition(text) == []
    names = {sample["name"] for sample in check_prom.parse_samples(text)}
    assert "koko_queries_served_total" in names


def test_metrics_json_and_stats_carry_node_identity(service, server):
    service.query(ENTITY_QUERY)
    status, document = http_get_json(*server.address, "/metrics.json")
    assert status == 200 and document["koko_queries_served_total"] >= 1
    status, stats = http_get_json(*server.address, "/stats")
    assert status == 200
    assert stats["node"] == {"name": "test-node", "kind": "service", "documents": 3}
    percentiles = stats["query_latency_percentiles"]
    assert set(percentiles) == {"p50", "p95", "p99"}
    assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]


def test_health_probes_flip_when_the_service_closes(service, server):
    status, body = http_get_json(*server.address, "/healthz")
    assert status == 200 and body["status"] == "ok"
    status, body = http_get_json(*server.address, "/readyz")
    assert status == 200 and body["checks"]["wal_advancing"]
    service.close()
    status, body = http_get_json(*server.address, "/healthz")
    assert status == 503 and body["checks"]["open"] is False
    status, body = http_get_json(*server.address, "/readyz")
    assert status == 503


def test_readyz_fails_when_a_checkpoint_wedges(service):
    with TelemetryServer(
        service, checkpoint_wedge_seconds=0.05
    ) as telemetry:
        service.stats.record_checkpoint_started()
        try:
            # first probe observes the running checkpoint and arms the timer
            status, _ = http_get_json(*telemetry.address, "/readyz")
            assert status == 200
            time.sleep(0.1)
            status, body = http_get_json(*telemetry.address, "/readyz")
            assert status == 503
            assert body["checks"]["checkpoint_not_wedged"] is False
        finally:
            service.stats.record_checkpoint_finished()
        # a finished checkpoint clears the wedge verdict
        status, body = http_get_json(*telemetry.address, "/readyz")
        assert status == 200


def test_slowlog_and_shards_endpoints_serve_structured_documents(service, server):
    service.query(ENTITY_QUERY)  # slow_query_ms=0 -> every query logged
    status, entries = http_get_json(*server.address, "/slowlog")
    assert status == 200 and entries and entries[0]["kind"] == "query"
    status, limited = http_get_json(*server.address, "/slowlog?limit=0")
    assert status == 200 and limited == []
    status, heat = http_get_json(*server.address, "/shards")
    assert status == 200
    assert heat["hottest_shard"] is not None
    assert len(heat["shards"]) == 2


def test_unknown_paths_and_methods_are_rejected(server):
    status, _ = scrape(*server.address, "/nope")
    assert status == 404
    status, _ = scrape(*server.address, "/cluster")  # no cluster attached
    assert status == 404


def test_scrape_under_concurrent_ingest_stays_parseable_and_monotone(service):
    """The race test: 1 writer + scraper loop; every exposition parses,
    counters never move backwards between scrapes."""
    with TelemetryServer(service) as telemetry:
        stop = threading.Event()
        errors: list[BaseException] = []

        def ingest() -> None:
            index = 0
            try:
                while not stop.is_set():
                    doc_id = f"race{index}"
                    service.add_document(TEXTS[index % len(TEXTS)], doc_id)
                    service.remove_document(doc_id)
                    index += 1
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        writer = threading.Thread(target=ingest, daemon=True)
        writer.start()
        previous: dict[tuple, float] = {}
        try:
            for _ in range(20):
                status, body = scrape(*telemetry.address, "/metrics")
                assert status == 200
                text = body.decode("utf-8")
                assert check_prom.lint_exposition(text) == []
                for sample in check_prom.parse_samples(text):
                    if not sample["name"].endswith("_total"):
                        continue
                    key = (sample["name"], tuple(sorted(sample["labels"].items())))
                    assert sample["value"] >= previous.get(key, 0.0), key
                    previous[key] = sample["value"]
        finally:
            stop.set()
            writer.join(timeout=30)
        assert not errors, errors


def test_server_restart_rebinds_and_context_manager_closes(service):
    telemetry = TelemetryServer(service)
    host, port = telemetry.start()
    status, _ = scrape(host, port, "/healthz")
    assert status == 200
    telemetry.close()
    with pytest.raises(OSError):
        scrape(host, port, "/healthz", timeout=1.0)
