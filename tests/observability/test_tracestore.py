"""Unit tests for the per-node trace store, stitching, and /traces JSON.

Covers the tentpole's storage layer: the bounded fragment ring, the
parent-link stitcher that ``/cluster/traces/<id>`` relies on, and a
golden test pinning the ``/traces`` endpoint's JSON schema so dashboards
scraping it don't silently break.
"""

from __future__ import annotations

import json

import pytest

from repro.observability import (
    Span,
    TelemetryServer,
    TraceContext,
    TraceStore,
    http_get_json,
    stitch_fragments,
)


def _fragment(store, trace_id, span_id, parent=None, **kwargs):
    context = TraceContext(trace_id=trace_id, span_id=span_id)
    span = Span.completed(kwargs.pop("name", "op"), kwargs.pop("seconds", 0.001))
    return store.record(context, span, parent_span_id=parent, **kwargs)


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------
def test_store_keeps_fragments_grouped_by_trace():
    store = TraceStore(capacity=4)
    _fragment(store, "t1", "a", name="rpc.server", kind="rpc", node="n0")
    _fragment(store, "t1", "b", parent="a", name="ingest", kind="ingest", node="n0")
    _fragment(store, "t2", "c", name="query", kind="query")

    assert len(store) == 2
    assert store.recorded_total == 3
    fragments = store.get("t1")
    assert [f["span_id"] for f in fragments] == ["a", "b"]
    assert fragments[1]["parent_span_id"] == "a"
    assert fragments[1]["node"] == "n0"
    assert store.get("missing") is None


def test_store_evicts_oldest_trace_at_capacity():
    store = TraceStore(capacity=2)
    for index in range(4):
        _fragment(store, f"t{index}", f"s{index}")
    assert len(store) == 2
    assert store.get("t0") is None and store.get("t1") is None
    assert store.get("t2") is not None and store.get("t3") is not None


def test_store_bounds_fragments_per_trace():
    store = TraceStore(capacity=2, max_fragments_per_trace=3)
    for index in range(5):
        _fragment(store, "t", f"s{index}")
    assert len(store.get("t")) == 3
    assert store.recorded_total == 3  # dropped fragments don't count


def test_store_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        TraceStore(capacity=0)


def test_recent_summaries_are_newest_first():
    store = TraceStore(capacity=8)
    _fragment(store, "old", "a", name="ingest", kind="ingest")
    _fragment(store, "new", "b", name="query", kind="query")
    _fragment(store, "new", "c", parent="b", name="rpc.server", kind="rpc")

    summaries = store.recent(limit=10)
    assert [s["trace_id"] for s in summaries] == ["new", "old"]
    newest = summaries[0]
    assert newest["fragments"] == 2
    assert newest["kinds"] == ["query", "rpc"]
    assert newest["root_names"] == ["query", "rpc.server"]

    store.clear()
    assert len(store) == 0 and store.recent() == []


# ----------------------------------------------------------------------
# stitching
# ----------------------------------------------------------------------
def test_stitch_nests_fragments_by_parent_span_id():
    store = TraceStore()
    _fragment(store, "t", "client", name="rpc.call", kind="client", node="client")
    _fragment(
        store, "t", "server", parent="client", name="rpc.server", kind="rpc",
        node="primary",
    )
    _fragment(
        store, "t", "ingest", parent="server", name="ingest", kind="ingest",
        node="primary",
    )
    _fragment(
        store, "t", "apply", parent="ingest", name="replica.apply", kind="apply",
        node="replica",
    )
    tree = stitch_fragments(store.get("t"))

    assert tree["fragments"] == 4
    assert tree["nodes"] == ["client", "primary", "replica"]
    (root,) = tree["roots"]
    assert root["span_id"] == "client"
    (server,) = root["children"]
    (ingest,) = server["children"]
    (apply_fragment,) = ingest["children"]
    assert apply_fragment["root"]["name"] == "replica.apply"


def test_stitch_orphans_and_cycles_become_roots_not_crashes():
    fragments = [
        {
            "trace_id": "t", "span_id": "x", "parent_span_id": "ghost",
            "kind": "span", "node": None, "ts_unix": 2.0, "ms": 1.0,
            "root": {"name": "orphan", "ms": 1.0},
        },
        {
            "trace_id": "t", "span_id": "self", "parent_span_id": "self",
            "kind": "span", "node": None, "ts_unix": 1.0, "ms": 1.0,
            "root": {"name": "cycle", "ms": 1.0},
        },
    ]
    tree = stitch_fragments(fragments)
    assert tree["fragments"] == 2
    # ts_unix orders the roots: the cycle fragment started first
    assert [r["root"]["name"] for r in tree["roots"]] == ["cycle", "orphan"]
    assert all(r["children"] == [] for r in tree["roots"])


def test_stitch_children_are_ordered_by_aligned_wall_clock():
    fragments = []
    for index, (span_id, ts) in enumerate([("late", 30.0), ("early", 10.0)]):
        fragments.append(
            {
                "trace_id": "t", "span_id": span_id, "parent_span_id": "root",
                "kind": "span", "node": None, "ts_unix": ts, "ms": 1.0,
                "root": {"name": span_id, "ms": 1.0},
            }
        )
    fragments.append(
        {
            "trace_id": "t", "span_id": "root", "parent_span_id": None,
            "kind": "span", "node": None, "ts_unix": 5.0, "ms": 50.0,
            "root": {"name": "root", "ms": 50.0},
        }
    )
    tree = stitch_fragments(fragments)
    (root,) = tree["roots"]
    assert [child["span_id"] for child in root["children"]] == ["early", "late"]


# ----------------------------------------------------------------------
# golden: the /traces JSON schema
# ----------------------------------------------------------------------
FRAGMENT_KEYS = {
    "trace_id", "span_id", "parent_span_id", "kind", "node", "ts_unix", "ms",
    "root",
}
SUMMARY_KEYS = {"trace_id", "fragments", "kinds", "ts_unix", "ms", "root_names"}


def test_traces_endpoint_json_schema_is_pinned(listen_ready):
    """Golden: the exact key sets served at /traces and /traces/<id>.

    Dashboards and the cluster assembler consume these documents; a key
    rename or type change must fail a test, not a scrape.
    """
    from repro.service import KokoService

    with KokoService(shards=1, trace_sample_rate=1.0) as service:
        service.add_document("Anna ate some delicious cheesecake.", "d0")
        with TelemetryServer(service, name="golden") as server:
            listen_ready(*server.address)
            status, listing = http_get_json(*server.address, "/traces")
            assert status == 200
            assert set(listing) == {"node", "stored", "recorded_total", "traces"}
            assert listing["node"] == "golden"
            assert listing["stored"] >= 1
            summary = listing["traces"][0]
            assert set(summary) == SUMMARY_KEYS
            assert isinstance(summary["kinds"], list)
            assert isinstance(summary["ts_unix"], float)

            trace_id = summary["trace_id"]
            status, document = http_get_json(*server.address, f"/traces/{trace_id}")
            assert status == 200
            assert set(document) == {"node", "trace_id", "fragments"}
            fragment = document["fragments"][0]
            assert set(fragment) == FRAGMENT_KEYS
            assert fragment["trace_id"] == trace_id
            assert fragment["kind"] == "ingest"
            assert isinstance(fragment["root"]["name"], str)
            assert isinstance(fragment["root"]["ms"], float)
            # round-trippable: the document is plain JSON all the way down
            json.loads(json.dumps(document))

            status, _ = http_get_json(*server.address, "/traces/nonexistent")
            assert status == 404


def test_traces_endpoint_404s_without_a_store(listen_ready):
    class Bare:
        name = "bare"
        closed = False

        def __init__(self):
            from repro.observability import MetricsRegistry

            self.metrics = MetricsRegistry()

    with TelemetryServer(Bare()) as server:
        listen_ready(*server.address)
        status, _ = http_get_json(*server.address, "/traces")
        assert status == 404
