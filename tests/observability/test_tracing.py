"""Unit tests for span trees, the sampling tracer, and the slow-op log."""

from __future__ import annotations

import json

import pytest

from repro.observability import ExplainedResult, SlowOpLog, Span, Tracer


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_span_tree_construction_and_lookup():
    root = Span("query", shards=2)
    with root.span("result_cache", hit=False):
        pass
    fanout = root.child("shard_fanout")
    fanout.record("shard0", 0.002, tuples=3)
    fanout.finish()
    root.finish()

    assert root.names() == {"query", "result_cache", "shard_fanout", "shard0"}
    assert root.span_count() == 4
    shard = root.find("shard0")
    assert shard is not None
    assert shard.seconds == pytest.approx(0.002)
    assert shard.attributes == {"tuples": 3}
    assert root.find("missing") is None


def test_span_finish_is_idempotent_and_freezes_duration():
    span = Span("op")
    span.finish()
    frozen = span.seconds
    span.finish()
    assert span.seconds == frozen


def test_span_annotate_merges_attributes():
    span = Span("op", a=1)
    span.annotate(b=2, a=3)
    assert span.attributes == {"a": 3, "b": 2}


def test_span_to_dict_is_json_safe():
    root = Span("query")
    root.record("stage", 0.001, hit=True)
    root.finish()
    node = json.loads(json.dumps(root.to_dict()))
    assert node["name"] == "query"
    assert node["children"][0] == {
        "name": "stage",
        "ms": 1.0,
        "attrs": {"hit": True},
    }


def test_span_report_renders_a_connector_tree():
    root = Span("query", shards=1)
    root.record("result_cache", 0.0001, hit=False)
    fanout = root.child("shard_fanout")
    fanout.record("shard0", 0.001)
    fanout.finish()
    root.finish()
    report = root.report()
    lines = report.splitlines()
    assert lines[0].startswith("query  ")
    assert "[shards=1]" in lines[0]
    assert "├─ result_cache" in report
    assert "└─ shard_fanout" in report
    assert "   └─ shard0" in report
    assert "ms" in lines[-1]


# ----------------------------------------------------------------------
# the tracer
# ----------------------------------------------------------------------
def test_tracer_rate_bounds_are_validated():
    with pytest.raises(ValueError):
        Tracer(-0.1)
    with pytest.raises(ValueError):
        Tracer(1.1)


def test_tracer_samples_deterministically():
    never = Tracer(0.0)
    assert not any(never.should_sample() for _ in range(10))
    assert never.sampled_total == 0

    always = Tracer(1.0)
    assert all(always.should_sample() for _ in range(10))
    assert always.sampled_total == 10

    quarter = Tracer(0.25)
    decisions = [quarter.should_sample() for _ in range(100)]
    assert sum(decisions) == 25  # accumulator sampling: exact, not stochastic
    assert decisions[3] and not decisions[0]


# ----------------------------------------------------------------------
# ExplainedResult
# ----------------------------------------------------------------------
def test_explained_result_delegates_iteration_and_len():
    trace = Span("query")
    trace.finish()
    explained = ExplainedResult(result=[1, 2, 3], trace=trace)
    assert list(explained) == [1, 2, 3]
    assert len(explained) == 3
    assert explained.kind == "query"
    assert explained.report() == trace.report()
    assert explained.to_dict() == trace.to_dict()


# ----------------------------------------------------------------------
# slow-op log
# ----------------------------------------------------------------------
def test_slow_op_log_is_a_newest_first_ring():
    log = SlowOpLog(capacity=3)
    for index in range(5):
        log.record({"kind": "query", "index": index})
    assert len(log) == 3
    assert [entry["index"] for entry in log.recent()] == [4, 3, 2]
    assert [entry["index"] for entry in log.recent(limit=2)] == [4, 3]
    log.clear()
    assert log.recent() == []


def test_slow_op_log_file_sink_appends_json_lines(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowOpLog(capacity=4, path=str(path))
    log.record({"kind": "ingest", "duration_ms": 12.5})
    log.record({"kind": "query", "duration_ms": 300.0})
    log.close()
    lines = [json.loads(line) for line in path.read_text().strip().splitlines()]
    assert [entry["kind"] for entry in lines] == ["ingest", "query"]
    # append mode: a reopened log extends the same file
    log2 = SlowOpLog(capacity=4, path=str(path))
    log2.record({"kind": "remove"})
    log2.close()
    assert len(path.read_text().strip().splitlines()) == 3
