"""Unit tests for per-shard heat accounting and the blended heat score."""

from __future__ import annotations

import pytest

from repro.observability.heat import (
    HEAT_WEIGHTS,
    ShardHeatAccumulator,
    ShardHeatReport,
)
from repro.observability.metrics import MetricsRegistry


def test_constructor_validates_topology_and_alpha():
    with pytest.raises(ValueError):
        ShardHeatAccumulator(0)
    with pytest.raises(ValueError):
        ShardHeatAccumulator(2, ewma_alpha=0.0)
    with pytest.raises(ValueError):
        ShardHeatAccumulator(2, ewma_alpha=1.5)
    assert ShardHeatAccumulator(3).shard_count == 3


def test_cold_accumulator_reports_no_hottest_shard():
    report = ShardHeatAccumulator(4).report()
    assert len(report) == 4
    assert report.hottest() is None
    assert all(row.heat_score == 0.0 for row in report.shards)
    with pytest.raises(KeyError):
        report.shard(99)


def test_query_accounting_accumulates_and_seeds_ewma():
    accumulator = ShardHeatAccumulator(2, ewma_alpha=0.5)
    accumulator.record_query(0, 0.100, skip_candidates=10)
    accumulator.record_query(0, 0.200, skip_candidates=30)
    row = accumulator.report().shard(0)
    assert row.queries == 2
    assert row.query_seconds == pytest.approx(0.300)
    assert row.skip_candidates == 40
    # first observation seeds; second blends: 0.5*0.2 + 0.5*0.1
    assert row.ewma_query_seconds == pytest.approx(0.150)


def test_splice_accounting_tracks_bytes_and_optional_timing():
    accumulator = ShardHeatAccumulator(2, ewma_alpha=0.5)
    accumulator.record_splice(1, 1000)  # untimed: EWMA untouched
    accumulator.record_splice(1, 500, 0.040)
    accumulator.record_splice(1, 500, 0.080)
    row = accumulator.report().shard(1)
    assert row.splices == 3
    assert row.splice_bytes == 2000
    assert row.ewma_splice_seconds == pytest.approx(0.060)


def test_query_only_workload_ranks_by_query_traffic():
    accumulator = ShardHeatAccumulator(3)
    for _ in range(8):
        accumulator.record_query(1, 0.010)
    accumulator.record_query(0, 0.010)
    accumulator.record_query(2, 0.010)
    report = accumulator.report()
    assert report.hottest() == 1
    assert report.shard(1).heat_score > report.shard(0).heat_score
    # scores across shards sum to ~1 whenever anything was recorded
    assert sum(row.heat_score for row in report.shards) == pytest.approx(1.0)


def test_blended_score_weighs_every_active_signal():
    accumulator = ShardHeatAccumulator(2)
    # shard 0 dominates queries, shard 1 dominates splice bytes
    for _ in range(9):
        accumulator.record_query(0, 0.001)
    accumulator.record_query(1, 0.001)
    accumulator.record_splice(1, 9000)
    accumulator.record_splice(0, 1000)
    report = accumulator.report()
    shares = {row.shard_id: row.heat_score for row in report.shards}
    # queries weigh more than splice bytes, so shard 0 wins overall
    assert HEAT_WEIGHTS["queries"] > HEAT_WEIGHTS["splice_bytes"]
    assert report.hottest() == 0
    assert shares[0] + shares[1] == pytest.approx(1.0)


def test_report_serialises_for_the_shards_endpoint():
    accumulator = ShardHeatAccumulator(2)
    accumulator.record_query(1, 0.020, skip_candidates=5)
    document = accumulator.report().to_dict()
    assert document["hottest_shard"] == 1
    assert document["weights"] == HEAT_WEIGHTS
    assert [row["shard_id"] for row in document["shards"]] == [0, 1]
    assert document["shards"][1]["skip_candidates"] == 5


def test_registry_mirroring_exposes_labeled_instruments():
    registry = MetricsRegistry()
    accumulator = ShardHeatAccumulator(2, registry=registry)
    accumulator.record_query(0, 0.010, skip_candidates=7)
    accumulator.record_splice(1, 2048, 0.005)
    text = registry.render_text()
    assert 'koko_shard_skip_candidates_total{shard="0"} 7' in text
    assert 'koko_shard_splice_bytes_total{shard="1"} 2048' in text
    assert 'koko_shard_ewma_query_seconds{shard="0"}' in text
    assert 'koko_shard_ewma_splice_seconds{shard="1"}' in text


def test_report_is_a_consistent_standalone_value():
    accumulator = ShardHeatAccumulator(1)
    accumulator.record_query(0, 0.010)
    before = accumulator.report()
    accumulator.record_query(0, 0.010)
    after = accumulator.report()
    assert isinstance(before, ShardHeatReport)
    assert before.shard(0).queries == 1  # unaffected by later records
    assert after.shard(0).queries == 2
