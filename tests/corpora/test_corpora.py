"""Tests for the synthetic corpora and query benchmarks."""

from __future__ import annotations

from repro.corpora.cafe_blogs import BARISTAMAG, SPRUDGE, generate_cafe_corpus
from repro.corpora.happydb import generate_happydb_corpus
from repro.corpora.synthetic_queries import (
    generate_span_benchmark,
    generate_tree_benchmark,
)
from repro.corpora.tweets import generate_tweet_corpus
from repro.corpora.wikipedia import generate_wikipedia_corpus
from repro.indexing.exact import matching_sentences
from repro.koko.parser import parse_query


class TestCafeBlogs:
    def test_deterministic(self, pipeline):
        a = generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=5)
        b = generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=5)
        assert [d.text for d in a] == [d.text for d in b]

    def test_gold_cafes_mentioned_in_text(self, cafe_corpus):
        for doc in cafe_corpus:
            for cafe in cafe_corpus.gold["cafe"][doc.doc_id]:
                assert cafe in doc.text

    def test_every_article_has_gold(self, cafe_corpus):
        assert all(cafe_corpus.gold["cafe"][d.doc_id] for d in cafe_corpus)

    def test_sprudge_articles_longer_than_baristamag(self, pipeline):
        barista = generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=8)
        sprudge = generate_cafe_corpus(SPRUDGE, pipeline=pipeline, articles=8)
        mean = lambda c: c.num_sentences / len(c)
        assert mean(sprudge) > mean(barista)

    def test_distractor_brands_present(self, pipeline):
        corpus = generate_cafe_corpus(SPRUDGE, pipeline=pipeline, articles=20)
        text = " ".join(doc.text for doc in corpus)
        assert any(brand in text for brand in ("La Marzocco", "Synesso", "Aeropress", "V60"))


class TestTweetsHappyWiki:
    def test_tweets_gold_types(self, pipeline):
        corpus = generate_tweet_corpus(tweets=60, pipeline=pipeline)
        assert "team" in corpus.gold and "facility" in corpus.gold
        assert any(corpus.gold["team"].values())
        assert any(corpus.gold["facility"].values())

    def test_tweets_are_single_documents(self, pipeline):
        corpus = generate_tweet_corpus(tweets=30, pipeline=pipeline)
        assert len(corpus) == 30
        assert all(len(doc) <= 2 for doc in corpus)

    def test_happydb_size(self, happy_corpus):
        assert len(happy_corpus) == 120
        assert happy_corpus.num_sentences >= 120

    def test_wikipedia_article_kinds(self, wiki_corpus):
        kinds = {next(iter(v)) for v in wiki_corpus.gold["article_kind"].values()}
        assert "biography" in kinds

    def test_wikipedia_selectivity_ordering(self, pipeline):
        """born-sentences are common, called-sentences less so, chocolate rare."""
        corpus = generate_wikipedia_corpus(articles=120, pipeline=pipeline)
        texts = [doc.text for doc in corpus]
        born = sum(1 for t in texts if "born" in t)
        called = sum(1 for t in texts if "called" in t)
        chocolate = sum(1 for t in texts if "chocolate" in t.lower())
        assert born > called > chocolate > 0

    def test_wikipedia_deterministic(self, pipeline):
        a = generate_wikipedia_corpus(articles=10, pipeline=pipeline)
        b = generate_wikipedia_corpus(articles=10, pipeline=pipeline)
        assert [d.text for d in a] == [d.text for d in b]


class TestSyntheticTreeBenchmark:
    def test_benchmark_covers_parameter_grid(self, happy_corpus):
        benchmark = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
        lengths = {q.length for q in benchmark if not q.multi_variable}
        assert lengths >= {2, 3, 4}
        attributes = {q.attributes for q in benchmark}
        assert attributes == {"pl", "pl_pos", "pl_pos_text"}
        assert any(q.wildcard for q in benchmark)
        assert any(not q.anchored for q in benchmark)
        assert any(q.multi_variable for q in benchmark)

    def test_default_count_scales_with_setting(self, happy_corpus):
        small = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
        large = generate_tree_benchmark(happy_corpus, queries_per_setting=2)
        assert len(large) > len(small)

    def test_queries_have_nonzero_selectivity(self, happy_corpus):
        benchmark = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
        nonzero = sum(
            1 for q in benchmark if matching_sentences(happy_corpus, q.query)
        )
        # sampled from real trees, so the vast majority must match something
        assert nonzero / len(benchmark) > 0.9

    def test_deterministic(self, happy_corpus):
        a = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
        b = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
        assert [q.query.render() for q in a] == [q.query.render() for q in b]


class TestSyntheticSpanBenchmark:
    def test_atom_counts(self, happy_corpus):
        benchmark = generate_span_benchmark(happy_corpus, queries_per_setting=4)
        assert {q.atoms for q in benchmark} == {1, 3, 5}

    def test_queries_parse(self, happy_corpus):
        benchmark = generate_span_benchmark(happy_corpus, queries_per_setting=3)
        for query in benchmark:
            parsed = parse_query(query.text)
            assert parsed.declaration("s") is not None

    def test_multi_atom_queries_contain_elastic(self, happy_corpus):
        benchmark = generate_span_benchmark(happy_corpus, queries_per_setting=3)
        for query in benchmark:
            if query.atoms >= 3:
                assert "^" in query.text
