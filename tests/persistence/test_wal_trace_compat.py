"""WAL payload compatibility across the trace-metadata addition.

Traced records carry a ``TraceContext`` as a fourth payload field;
untraced records MUST keep the exact pre-trace 3-tuple encoding, so old
segments replay unchanged and an untraced workload's WAL bytes are
byte-identical to what earlier versions wrote.
"""

from __future__ import annotations

import pickle

from repro.observability.tracing import TraceContext
from repro.persistence import WalRecord
from repro.persistence.wal import OP_REMOVE


def test_untraced_payload_matches_the_legacy_three_tuple_exactly():
    record = WalRecord(op=OP_REMOVE, doc_id="d0")
    legacy = pickle.dumps(
        (OP_REMOVE, "d0", None), protocol=pickle.HIGHEST_PROTOCOL
    )
    assert record.to_payload() == legacy


def test_legacy_three_tuple_payloads_decode_with_no_trace():
    legacy = pickle.dumps(
        (OP_REMOVE, "d0", None), protocol=pickle.HIGHEST_PROTOCOL
    )
    record = WalRecord.from_payload(legacy)
    assert record.op == OP_REMOVE and record.doc_id == "d0"
    assert record.trace is None


def test_traced_payload_round_trips_the_context():
    context = TraceContext(trace_id="abcd" * 4, span_id="0123abcd")
    record = WalRecord(op=OP_REMOVE, doc_id="d0", trace=context)
    decoded = WalRecord.from_payload(record.to_payload())
    assert decoded.trace == context
    assert decoded.trace.sampled is True


def test_garbage_fourth_field_is_dropped_not_propagated():
    # a forward-compat guard: whatever a future version appends, today's
    # reader only accepts a typed TraceContext in slot 3
    payload = pickle.dumps(
        (OP_REMOVE, "d0", None, {"not": "a context"}),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    record = WalRecord.from_payload(payload)
    assert record.trace is None
