"""WAL streaming: frame scans, positions, and cursor iteration across
rotation boundaries (the log-shipping read path)."""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError
from repro.persistence import (
    StorageLayout,
    WalCursor,
    WalPosition,
    WalRecord,
    WriteAheadLog,
    read_frames,
)


def layout_at(tmp_path) -> StorageLayout:
    layout = StorageLayout(tmp_path / "svc")
    layout.initialise()
    return layout


def record(index: int) -> WalRecord:
    return WalRecord(op="remove", doc_id=f"doc{index}")


def decode(payloads) -> list[str]:
    return [WalRecord.from_payload(p).doc_id for p in payloads]


# ----------------------------------------------------------------------
# read_frames
# ----------------------------------------------------------------------
def test_read_frames_reports_offsets_and_payloads(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    sizes = [wal.append(record(i)) for i in range(3)]
    wal.close()

    scan = read_frames(layout.wal_path(1))
    assert decode(p for _, p in scan.frames) == ["doc0", "doc1", "doc2"]
    assert [end for end, _ in scan.frames] == [
        sum(sizes[: i + 1]) for i in range(3)
    ]
    assert scan.end_offset == sum(sizes)
    assert not scan.partial_tail

    # resume mid-stream: start at the first frame's end offset
    resumed = read_frames(layout.wal_path(1), start_offset=scan.frames[0][0])
    assert decode(p for _, p in resumed.frames) == ["doc1", "doc2"]


def test_read_frames_stops_at_torn_tail(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    for i in range(2):
        wal.append(record(i))
    wal.close()
    path = layout.wal_path(1)
    intact = path.stat().st_size
    path.write_bytes(path.read_bytes() + b"\x07\x00\x00\x00garbage")

    scan = read_frames(path)
    assert decode(p for _, p in scan.frames) == ["doc0", "doc1"]
    assert scan.end_offset == intact
    assert scan.partial_tail


def test_wal_position_totally_orders_across_segments():
    assert WalPosition(1, 500) < WalPosition(2, 0) < WalPosition(2, 10)
    assert WalPosition(3, 7) == WalPosition(3, 7)
    assert max(WalPosition(2, 900), WalPosition(3, 1)) == WalPosition(3, 1)


def test_durable_position_tracks_appends_and_rotation(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    assert wal.durable_position() == WalPosition(1, 0)
    wal.append(record(0))
    first = wal.durable_position()
    assert first.segment_id == 1 and first.offset > 0
    wal.rotate()
    assert wal.durable_position() == WalPosition(2, 0)
    wal.append(record(1))
    assert wal.durable_position() > WalPosition(2, 0)
    wal.close()


# ----------------------------------------------------------------------
# cursor iteration across rotation boundaries (satellite)
# ----------------------------------------------------------------------
def test_cursor_follows_live_tail_then_crosses_rotation(tmp_path):
    """A reader positioned in segment N keeps every record when the
    primary rotates to N+1 mid-tail."""
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    cursor = WalCursor(layout, WalPosition(1, 0))

    wal.append(record(0))
    wal.append(record(1))
    first = cursor.poll()
    assert decode(p for _, p in first) == ["doc0", "doc1"]
    assert cursor.position.segment_id == 1
    assert cursor.poll() == []  # caught up with the live tail

    # primary appends more, then rotates while the cursor sits in segment 1
    wal.append(record(2))
    wal.rotate()
    wal.append(record(3))
    wal.append(record(4))

    batch = cursor.poll()
    assert decode(p for _, p in batch) == ["doc2", "doc3", "doc4"]
    assert [p.segment_id for p, _ in batch] == [1, 2, 2]
    assert cursor.position.segment_id == 2
    wal.close()


def test_cursor_crosses_multiple_rotations_and_empty_segments(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    cursor = WalCursor(layout, WalPosition(1, 0))
    wal.append(record(0))
    wal.rotate()  # segment 2 stays empty
    wal.rotate()
    wal.append(record(1))
    wal.close()

    batch = cursor.poll()
    assert decode(p for _, p in batch) == ["doc0", "doc1"]
    assert [p.segment_id for p, _ in batch] == [1, 3]


def test_cursor_respects_batch_bounds(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    for i in range(5):
        wal.append(record(i))
    wal.close()

    cursor = WalCursor(layout, WalPosition(1, 0))
    assert len(cursor.poll(max_records=2)) == 2
    assert len(cursor.poll(max_records=2)) == 2
    assert len(cursor.poll(max_records=2)) == 1
    assert cursor.poll(max_records=2) == []

    tiny = WalCursor(layout, WalPosition(1, 0))
    assert len(tiny.poll(max_bytes=1)) == 1  # at least one frame per poll


def test_cursor_resumes_from_reported_positions(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    wal.append(record(0))
    wal.rotate()
    wal.append(record(1))
    wal.close()

    full = WalCursor(layout, WalPosition(1, 0)).poll()
    mid_position = full[0][0]
    resumed = WalCursor(layout, mid_position).poll()
    assert decode(p for _, p in resumed) == ["doc1"]


def test_cursor_raises_when_pruned_past(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    wal.append(record(0))
    wal.rotate()
    wal.append(record(1))
    wal.close()
    layout.wal_path(1).unlink()  # the cursor's segment is gone

    cursor = WalCursor(layout, WalPosition(1, 0))
    with pytest.raises(PersistenceError, match="pruned"):
        cursor.poll()


def test_cursor_rejects_corrupt_sealed_segment(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    wal.append(record(0))
    path = layout.wal_path(1)
    wal.rotate()  # seal segment 1, create segment 2
    wal.close()
    path.write_bytes(path.read_bytes() + b"\x99\x00\x00\x00corrupt!")

    cursor = WalCursor(layout, WalPosition(1, 0))
    with pytest.raises(PersistenceError, match="corrupt"):
        cursor.poll()


# ----------------------------------------------------------------------
# prune retention pins
# ----------------------------------------------------------------------
def test_prune_keeps_segments_at_or_above_the_pin(tmp_path):
    layout = layout_at(tmp_path)
    wal = WriteAheadLog(layout, segment_id=1)
    for _ in range(4):
        wal.append(record(0))
        wal.rotate()
    wal.close()
    assert layout.wal_segment_ids() == [1, 2, 3, 4, 5]

    layout.prune(4, wal_keep_from=2)  # a follower still tails segment 2
    assert layout.wal_segment_ids() == [2, 3, 4, 5]

    layout.prune(4)  # pin released: normal retention applies
    assert layout.wal_segment_ids() == [5]
