"""WAL framing, fsync append, torn-tail scanning and rotation."""

from __future__ import annotations

import struct

import pytest

from repro.errors import PersistenceError
from repro.persistence import (
    OP_ADD,
    OP_REMOVE,
    StorageLayout,
    WalRecord,
    WalWriter,
    WriteAheadLog,
    read_records,
)
from repro.persistence.wal import encode_frame
from repro.nlp.pipeline import Pipeline


@pytest.fixture()
def annotated():
    return Pipeline().annotate("Anna ate a delicious pie in Tokyo.", doc_id="d0")


def write_records(path, records, sync=True):
    writer = WalWriter(path, sync=sync)
    for record in records:
        writer.append(record)
    writer.close()


def test_append_and_read_round_trip(tmp_path, annotated):
    records = [
        WalRecord(op=OP_ADD, doc_id="d0", document=annotated),
        WalRecord(op=OP_REMOVE, doc_id="d0"),
        WalRecord(op=OP_ADD, doc_id="d1", document=annotated),
    ]
    path = tmp_path / "wal.log"
    write_records(path, records)

    result = read_records(path)
    assert not result.torn
    assert result.valid_bytes == path.stat().st_size
    assert [(r.op, r.doc_id) for r in result.records] == [
        (OP_ADD, "d0"),
        (OP_REMOVE, "d0"),
        (OP_ADD, "d1"),
    ]
    # the annotated payload survives byte-exactly at the annotation level
    restored = result.records[0].document
    assert [s.sid for s in restored] == [s.sid for s in annotated]
    assert [[t.text for t in s] for s in restored] == [
        [t.text for t in s] for s in annotated
    ]
    assert [[t.pos for t in s] for s in restored] == [
        [t.pos for t in s] for s in annotated
    ]


@pytest.mark.parametrize("cut", [1, 3, 7])
def test_truncated_payload_is_a_torn_tail(tmp_path, annotated, cut):
    path = tmp_path / "wal.log"
    write_records(
        path,
        [
            WalRecord(op=OP_ADD, doc_id="d0", document=annotated),
            WalRecord(op=OP_REMOVE, doc_id="d0"),
        ],
    )
    size = path.stat().st_size
    with path.open("r+b") as handle:
        handle.truncate(size - cut)

    result = read_records(path)
    assert result.torn
    assert [(r.op, r.doc_id) for r in result.records] == [(OP_ADD, "d0")]
    assert result.valid_bytes < size - cut  # tear starts at the last frame


def test_truncated_header_is_a_torn_tail(tmp_path):
    path = tmp_path / "wal.log"
    write_records(path, [WalRecord(op=OP_REMOVE, doc_id="d0")])
    first = path.stat().st_size
    with path.open("ab") as handle:
        handle.write(b"\x05\x00")  # half a header
    result = read_records(path)
    assert result.torn
    assert result.valid_bytes == first
    assert len(result.records) == 1


def test_crc_mismatch_is_a_torn_tail(tmp_path):
    path = tmp_path / "wal.log"
    write_records(
        path,
        [WalRecord(op=OP_REMOVE, doc_id="first"), WalRecord(op=OP_REMOVE, doc_id="second")],
    )
    first_frame = len(encode_frame(WalRecord(op=OP_REMOVE, doc_id="first").to_payload()))
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a payload byte of the second frame
    path.write_bytes(bytes(data))

    result = read_records(path)
    assert result.torn
    assert [r.doc_id for r in result.records] == ["first"]
    assert result.valid_bytes == first_frame


def test_garbage_length_header_is_contained(tmp_path):
    path = tmp_path / "wal.log"
    with path.open("wb") as handle:
        handle.write(struct.pack("<II", 1 << 30, 0))  # absurd length, no payload
    result = read_records(path)
    assert result.torn
    assert result.records == []


def test_writer_truncate_to_reopens_after_a_tear(tmp_path):
    path = tmp_path / "wal.log"
    write_records(path, [WalRecord(op=OP_REMOVE, doc_id="keep")])
    keep = path.stat().st_size
    with path.open("ab") as handle:
        handle.write(b"torn-bytes")

    writer = WalWriter(path, truncate_to=keep)
    writer.append(WalRecord(op=OP_REMOVE, doc_id="after"))
    writer.close()
    result = read_records(path)
    assert not result.torn
    assert [r.doc_id for r in result.records] == ["keep", "after"]


class _FailingHandle:
    """Wraps a real file handle; fails the next write with a fake I/O error."""

    def __init__(self, real):
        self._real = real
        self.fail_next = True

    def write(self, data):
        if self.fail_next:
            self.fail_next = False
            self._real.write(data[: len(data) // 2])  # partial frame lands
            raise OSError(28, "No space left on device")
        return self._real.write(data)

    def __getattr__(self, name):
        return getattr(self._real, name)


def test_failed_append_truncates_the_partial_frame(tmp_path):
    """An append that dies mid-frame must not bury later records behind
    garbage: the segment rewinds to the last good frame boundary."""
    path = tmp_path / "wal.log"
    writer = WalWriter(path)
    writer.append(WalRecord(op=OP_REMOVE, doc_id="before"))
    writer._handle = _FailingHandle(writer._handle)

    with pytest.raises(OSError):
        writer.append(WalRecord(op=OP_REMOVE, doc_id="lost"))
    writer.append(WalRecord(op=OP_REMOVE, doc_id="after"))  # lands cleanly
    writer.close()

    result = read_records(path)
    assert not result.torn
    assert [r.doc_id for r in result.records] == ["before", "after"]


def test_closed_writer_refuses_appends(tmp_path):
    writer = WalWriter(tmp_path / "wal.log")
    writer.close()
    with pytest.raises(PersistenceError):
        writer.append(WalRecord(op=OP_REMOVE, doc_id="x"))


def test_rotation_seals_segments_in_order(tmp_path):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    wal = WriteAheadLog(layout, segment_id=1)
    wal.append(WalRecord(op=OP_REMOVE, doc_id="a"))
    assert wal.active_bytes > 0
    sealed = wal.rotate()
    assert sealed == 1 and wal.segment_id == 2
    assert wal.active_bytes == 0
    wal.append(WalRecord(op=OP_REMOVE, doc_id="b"))
    wal.close()

    assert layout.wal_segment_ids() == [1, 2]
    assert [r.doc_id for r in read_records(layout.wal_path(1)).records] == ["a"]
    assert [r.doc_id for r in read_records(layout.wal_path(2)).records] == ["b"]
