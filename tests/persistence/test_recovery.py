"""RecoveryManager: snapshot + WAL-tail composition, torn tails, kill points."""

from __future__ import annotations

import pytest

from repro.indexing.koko_index import KokoIndexSet
from repro.nlp.pipeline import Pipeline
from repro.nlp.types import Corpus
from repro.persistence import (
    OP_ADD,
    OP_REMOVE,
    RecoveryManager,
    SnapshotState,
    StorageLayout,
    WalRecord,
    WalWriter,
    write_snapshot,
)
from repro.storage.database import Database


def snapshot_state_for(documents, checkpoint_id):
    indexes = KokoIndexSet().build(Corpus(name="snap", documents=documents))
    return SnapshotState(
        checkpoint_id=checkpoint_id,
        name="snap",
        num_shards=1,
        next_sid=sum(len(d) for d in documents),
        generations=[len(documents)],
        documents_by_shard=[documents],
        build_seconds_by_shard=[indexes.build_seconds],
        databases=[indexes.to_database(Database())],
    )

TEXTS = [
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
]


@pytest.fixture()
def documents():
    pipeline = Pipeline()
    documents, sid = [], 0
    for index, text in enumerate(TEXTS):
        document = pipeline.annotate(text, doc_id=f"doc{index}", first_sid=sid)
        sid += len(document)
        documents.append(document)
    return documents


def append_segment(layout, segment_id, records):
    writer = WalWriter(layout.wal_path(segment_id))
    for record in records:
        writer.append(record)
    writer.close()


def test_fresh_directory_recovers_to_empty(tmp_path):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    recovered = RecoveryManager(layout).recover()
    assert recovered.snapshot is None
    assert recovered.operations == []
    assert recovered.active_segment_id == 1
    assert recovered.active_segment_valid_bytes is None
    assert not recovered.torn_tail


def test_wal_only_recovery_without_any_snapshot(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    append_segment(
        layout,
        1,
        [WalRecord(op=OP_ADD, doc_id=d.doc_id, document=d) for d in documents],
    )
    recovered = RecoveryManager(layout).recover()
    assert recovered.snapshot is None
    assert [r.doc_id for r in recovered.operations] == ["doc0", "doc1", "doc2"]
    assert recovered.active_segment_id == 1
    assert recovered.active_segment_valid_bytes == layout.wal_path(1).stat().st_size


def test_snapshot_plus_tail_replay(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    write_snapshot(layout, snapshot_state_for(documents[:2], checkpoint_id=2))
    layout.write_current(2)
    append_segment(layout, 1, [WalRecord(op=OP_REMOVE, doc_id="pre-snapshot")])
    append_segment(
        layout,
        3,
        [
            WalRecord(op=OP_ADD, doc_id="doc2", document=documents[2]),
            WalRecord(op=OP_REMOVE, doc_id="doc0"),
        ],
    )
    recovered = RecoveryManager(layout).recover()
    assert recovered.snapshot is not None
    assert recovered.checkpoint_id == 2
    # only segments after the snapshot replay; segment 1 is history
    assert [(r.op, r.doc_id) for r in recovered.operations] == [
        (OP_ADD, "doc2"),
        (OP_REMOVE, "doc0"),
    ]
    assert recovered.active_segment_id == 3


@pytest.mark.parametrize("cut", [2, 9, 25])
def test_kill_point_mid_record_recovers_durable_prefix(tmp_path, documents, cut):
    """Truncating the WAL mid-record loses exactly the torn suffix."""
    layout = StorageLayout(tmp_path)
    layout.initialise()
    append_segment(
        layout,
        1,
        [WalRecord(op=OP_ADD, doc_id=d.doc_id, document=d) for d in documents],
    )
    path = layout.wal_path(1)
    size = path.stat().st_size
    with path.open("r+b") as handle:
        handle.truncate(size - cut)

    recovered = RecoveryManager(layout).recover()
    assert recovered.torn_tail
    assert [r.doc_id for r in recovered.operations] == ["doc0", "doc1"]
    assert recovered.active_segment_id == 1
    assert recovered.active_segment_valid_bytes is not None
    assert recovered.active_segment_valid_bytes <= size - cut


def test_torn_middle_segment_drops_later_segments(tmp_path, documents):
    """A tear in a non-final segment ends the durable prefix there."""
    layout = StorageLayout(tmp_path)
    layout.initialise()
    append_segment(layout, 1, [WalRecord(op=OP_ADD, doc_id="doc0", document=documents[0])])
    append_segment(layout, 2, [WalRecord(op=OP_ADD, doc_id="doc1", document=documents[1])])
    with layout.wal_path(1).open("r+b") as handle:
        handle.truncate(layout.wal_path(1).stat().st_size - 4)

    recovered = RecoveryManager(layout).recover()
    assert recovered.torn_tail
    assert recovered.operations == []  # doc0's only record was torn
    assert recovered.active_segment_id == 1
    # the out-of-order later segment is dropped rather than replayed
    assert layout.wal_segment_ids() == [1]


def test_operations_tally():
    records = [
        WalRecord(op=OP_ADD, doc_id="a"),
        WalRecord(op=OP_ADD, doc_id="b"),
        WalRecord(op=OP_REMOVE, doc_id="a"),
    ]
    assert RecoveryManager.operations_of(records) == {OP_ADD: 2, OP_REMOVE: 1}
