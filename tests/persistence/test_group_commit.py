"""Group commit in the write-ahead log: batching, durability, crash prefix.

The load-bearing properties:

* concurrent appends are all durable and frame-atomic (no interleaving);
* batching actually happens — N concurrent durability waits share fewer
  than N fsyncs, and ``sync_interval`` coalesces a burst into ~1 flush;
* a crash **between the buffered batch append and its fsync** loses only
  a suffix: recovery yields a clean prefix of the operation history, at
  the WAL level and end-to-end through ``KokoService``;
* a failed fsync poisons the writer instead of silently dropping the
  durability guarantee.
"""

from __future__ import annotations

import os
import shutil

import pytest

import repro.persistence.wal as wal_module
from repro.errors import PersistenceError
from repro.persistence import (
    CheckpointPolicy,
    StorageLayout,
    WalRecord,
    WalWriter,
    WriteAheadLog,
    read_records,
)
from repro.service import KokoService

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)


def record(index: int) -> WalRecord:
    return WalRecord(op="remove", doc_id=f"doc{index}")


def layout_at(path) -> StorageLayout:
    layout = StorageLayout(path)
    layout.initialise()
    return layout


# ----------------------------------------------------------------------
# concurrent appends: durability and frame atomicity
# ----------------------------------------------------------------------
def test_concurrent_appends_are_all_durable_and_frame_atomic(tmp_path, run_threads):
    wal = WriteAheadLog(layout_at(tmp_path), segment_id=1)
    per_thread, threads = 25, 4

    def work(index):
        for i in range(per_thread):
            wal.append(record(index * per_thread + i))

    run_threads(threads, work)
    wal.close()
    replay = read_records(tmp_path / "wal" / "wal-0000000001.log")
    assert not replay.torn
    assert len(replay.records) == per_thread * threads
    assert sorted(r.doc_id for r in replay.records) == sorted(
        f"doc{i}" for i in range(per_thread * threads)
    )
    assert wal.records_appended == per_thread * threads
    assert wal.records_synced == per_thread * threads
    # every record durable, but batches shared fsyncs
    assert wal.fsyncs_performed <= wal.records_synced


def test_slow_fsync_coalesces_batches(tmp_path, monkeypatch, run_threads):
    """With a slow disk, concurrent waiters pile into the leader's batch."""
    real_fsync = os.fsync

    def slow_fsync(fd):
        import time

        time.sleep(0.002)
        real_fsync(fd)

    monkeypatch.setattr(wal_module.os, "fsync", slow_fsync)
    wal = WriteAheadLog(layout_at(tmp_path), segment_id=1)
    per_thread, threads = 10, 8

    def work(index):
        for i in range(per_thread):
            wal.append(record(index * per_thread + i))

    run_threads(threads, work)
    wal.close()
    assert wal.records_synced == per_thread * threads
    assert wal.fsyncs_saved > 0
    assert wal.max_batch_records >= 2
    assert wal.fsyncs_performed < per_thread * threads


def test_sync_interval_lingers_for_larger_batches(tmp_path, run_threads):
    wal = WriteAheadLog(layout_at(tmp_path), segment_id=1, sync_interval=0.05)
    threads = 6

    run_threads(threads, lambda index: wal.append(record(index)))
    wal.close()
    assert wal.records_synced == threads
    # the linger window collects the whole burst into very few flushes
    assert wal.fsyncs_performed <= 3
    assert wal.max_batch_records >= 2


def test_on_fsync_batches_sum_to_records(tmp_path, run_threads):
    batches = []
    wal = WriteAheadLog(layout_at(tmp_path), segment_id=1, on_fsync=batches.append)
    run_threads(4, lambda index: wal.append(record(index)))
    wal.close()
    assert sum(batches) == 4
    assert all(batch >= 1 for batch in batches)


def test_unsynced_writer_skips_group_commit(tmp_path):
    wal = WriteAheadLog(layout_at(tmp_path), segment_id=1, sync=False)
    for index in range(5):
        wal.append(record(index))
    wal.close()
    assert wal.fsyncs_performed <= 1  # only the close-time flush
    replay = read_records(tmp_path / "wal" / "wal-0000000001.log")
    assert len(replay.records) == 5


# ----------------------------------------------------------------------
# crash between batch append and fsync → recovery to a prefix
# ----------------------------------------------------------------------
def test_crash_between_batch_append_and_fsync_recovers_prefix(tmp_path, monkeypatch, run_threads):
    """Records buffered but not yet fsynced are a *suffix*; losing them
    leaves the longest durable prefix intact."""
    path = tmp_path / "seg.log"
    writer = WalWriter(path, sync=True)
    for index in range(6):
        writer.append(record(index))
    durable_bytes = writer.size_bytes

    # the batch after this point is appended but never reaches the platter
    monkeypatch.setattr(wal_module.os, "fsync", lambda fd: None)
    run_threads(4, lambda index: writer.append(record(100 + index)))
    assert writer.size_bytes > durable_bytes

    # simulate the power cut: everything past the last real fsync vanishes,
    # possibly tearing mid-frame
    crashed = tmp_path / "crashed.log"
    shutil.copyfile(path, crashed)
    with crashed.open("r+b") as handle:
        handle.truncate(durable_bytes + 5)  # mid-header of the torn record

    replay = read_records(crashed)
    assert replay.torn
    assert replay.valid_bytes == durable_bytes
    assert [r.doc_id for r in replay.records] == [f"doc{i}" for i in range(6)]


def test_service_group_commit_crash_recovers_to_prefix(tmp_path, monkeypatch, run_threads):
    """End to end: a service killed between a group-commit batch append and
    its fsync reopens with exactly the documents durable before the batch."""
    path = tmp_path / "svc"
    service = KokoService(
        shards=2, storage_dir=path, checkpoint_policy=CheckpointPolicy.disabled()
    )
    for index, text in enumerate(TEXTS[:4]):
        service.add_document(text, f"doc{index}")
    layout = StorageLayout(path)
    active = layout.wal_path(max(layout.wal_segment_ids()))
    durable_bytes = active.stat().st_size

    # fsync stops reaching the disk: the next adds are buffered only
    monkeypatch.setattr(wal_module.os, "fsync", lambda fd: None)
    run_threads(
        2, lambda index: service.add_document(TEXTS[4 + index], f"burst{index}")
    )
    assert active.stat().st_size > durable_bytes

    # "kill -9": copy the directory and cut the WAL at the durable boundary
    # (+ a few bytes of torn frame), as a power cut would leave it
    crash_dir = tmp_path / "crashed"
    shutil.copytree(path, crash_dir)
    crashed_wal = crash_dir / "wal" / active.name
    with crashed_wal.open("r+b") as handle:
        handle.truncate(durable_bytes + 11)
    monkeypatch.undo()
    service.close()

    recovered = KokoService.open(crash_dir)
    try:
        assert sorted(recovered.document_ids()) == [f"doc{i}" for i in range(4)]
        assert recovered.stats.recovered_torn_tail
        assert recovered.query(ENTITY_QUERY) is not None
        # the recovered service keeps ingesting cleanly after the tear
        recovered.add_document(TEXTS[4], "after-crash")
        assert "after-crash" in recovered.document_ids()
    finally:
        recovered.close()


# ----------------------------------------------------------------------
# fsync failure poisons the writer
# ----------------------------------------------------------------------
def test_failed_fsync_poisons_writer_and_discards_unacked_tail(tmp_path, monkeypatch):
    writer = WalWriter(tmp_path / "seg.log", sync=True)
    writer.append(record(0))

    def broken_fsync(fd):
        raise OSError("disk on fire")

    monkeypatch.setattr(wal_module.os, "fsync", broken_fsync)
    with pytest.raises(OSError):
        writer.append(record(1))
    monkeypatch.undo()
    # durability can no longer be promised: the writer refuses further work
    with pytest.raises(PersistenceError):
        writer.append(record(2))
    # and the unacknowledged frame was truncated away — a restart replays
    # only what append() acknowledged
    replay = read_records(tmp_path / "seg.log")
    assert not replay.torn
    assert [r.doc_id for r in replay.records] == ["doc0"]


def test_zero_width_reservations_keep_distinct_bases():
    with KokoService() as service:
        empty = service.reserve_sids(0)
        following = service.reserve_sids(2)
        assert empty != following
        service.add_document("", "empty-doc", first_sid=empty)
        service.add_document("Anna ate a pie. Paolo ate too.", "full", first_sid=following)
        assert sorted(service.document_ids()) == ["empty-doc", "full"]
