"""Snapshot write/load round trips, validity checking and the CURRENT pointer."""

from __future__ import annotations

import json

import pytest

from repro.errors import PersistenceError
from repro.indexing.koko_index import KokoIndexSet
from repro.nlp.pipeline import Pipeline
from repro.nlp.types import Corpus
from repro.persistence import SnapshotState, StorageLayout, load_snapshot, write_snapshot
from repro.persistence.snapshot import find_latest_valid, validate_snapshot
from repro.storage.database import Database

TEXTS = [
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
]


@pytest.fixture()
def documents():
    pipeline = Pipeline()
    documents, sid = [], 0
    for index, text in enumerate(TEXTS):
        document = pipeline.annotate(text, doc_id=f"doc{index}", first_sid=sid)
        sid += len(document)
        documents.append(document)
    return documents


def snapshot_state_for(documents, checkpoint_id=3):
    indexes = KokoIndexSet().build(Corpus(name="snap", documents=documents))
    return SnapshotState(
        checkpoint_id=checkpoint_id,
        name="snap",
        num_shards=1,
        next_sid=sum(len(d) for d in documents),
        generations=[len(documents)],
        documents_by_shard=[documents],
        build_seconds_by_shard=[indexes.build_seconds],
        databases=[indexes.to_database(Database())],
    )


def test_write_validate_load_round_trip(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    state = snapshot_state_for(documents)
    directory = write_snapshot(layout, state)
    assert directory == layout.snapshot_dir(3)
    assert validate_snapshot(layout, 3) is not None

    loaded = load_snapshot(layout, 3)
    assert loaded.name == "snap"
    assert loaded.num_shards == 1
    assert loaded.next_sid == state.next_sid
    assert loaded.generations == [len(documents)]
    assert [d.doc_id for d in loaded.documents_by_shard[0]] == ["doc0", "doc1", "doc2"]

    # the restored index set is lookup-identical to the original
    original = KokoIndexSet().build(Corpus(name="ref", documents=documents))
    restored = loaded.index_sets[0]
    assert restored.word_index.vocabulary() == original.word_index.vocabulary()
    for word in original.word_index.vocabulary():
        assert restored.word_index.lookup(word) == original.word_index.lookup(word)
    assert sorted(restored.entity_index.all_postings()) == sorted(
        original.entity_index.all_postings()
    )
    for steps in ([("/", "root")], [("/", "root"), ("//", "*")]):
        assert restored.pl_index.lookup_path(steps) == original.pl_index.lookup_path(steps)
    stats_r, stats_o = restored.statistics(), original.statistics()
    assert (stats_r.sentences, stats_r.tokens, stats_r.word_postings) == (
        stats_o.sentences,
        stats_o.tokens,
        stats_o.word_postings,
    )
    assert (stats_r.pl_nodes, stats_r.pos_nodes, stats_r.entity_postings) == (
        stats_o.pl_nodes,
        stats_o.pos_nodes,
        stats_o.entity_postings,
    )


def test_tampered_file_fails_validation(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    write_snapshot(layout, snapshot_state_for(documents))
    corpus_file = layout.snapshot_dir(3) / "corpus-0.pkl"
    corpus_file.write_bytes(corpus_file.read_bytes() + b"x")
    assert validate_snapshot(layout, 3) is None
    with pytest.raises(PersistenceError):
        load_snapshot(layout, 3)


def test_missing_manifest_or_file_fails_validation(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    write_snapshot(layout, snapshot_state_for(documents))
    (layout.snapshot_dir(3) / "indexes-0.db").unlink()
    assert validate_snapshot(layout, 3) is None
    assert validate_snapshot(layout, 99) is None  # absent snapshot


def test_find_latest_valid_falls_back_past_corrupt_current(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    write_snapshot(layout, snapshot_state_for(documents, checkpoint_id=1))
    write_snapshot(layout, snapshot_state_for(documents, checkpoint_id=2))
    layout.write_current(2)
    assert find_latest_valid(layout) == 2

    # corrupt the snapshot CURRENT points at: the scan falls back to 1
    manifest = layout.snapshot_dir(2) / "manifest.json"
    manifest.write_text(json.dumps({"version": -1}), encoding="utf-8")
    assert find_latest_valid(layout) == 1

    # no valid snapshot at all -> None
    (layout.snapshot_dir(1) / "manifest.json").unlink()
    assert find_latest_valid(layout) is None


def test_prune_keeps_the_durable_checkpoint_and_its_fallback(tmp_path, documents):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    for checkpoint_id in (1, 2, 3):
        write_snapshot(layout, snapshot_state_for(documents, checkpoint_id=checkpoint_id))
        layout.wal_path(checkpoint_id).write_bytes(b"")
    layout.wal_path(4).write_bytes(b"")
    layout.prune(3)
    # checkpoint 2 stays as the fallback, with the segments it needs (3, 4)
    # to roll forward should checkpoint 3 turn out corrupt
    assert layout.snapshot_ids() == [2, 3]
    assert layout.wal_segment_ids() == [3, 4]
    layout.prune(3)  # idempotent
    assert layout.snapshot_ids() == [2, 3]


def test_current_pointer_round_trip(tmp_path):
    layout = StorageLayout(tmp_path)
    layout.initialise()
    assert layout.read_current() is None
    layout.write_current(7)
    assert layout.read_current() == 7
    layout.current_file.write_text("not-a-number", encoding="utf-8")
    assert layout.read_current() is None
