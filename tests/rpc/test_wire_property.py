"""Property tests: RPC payloads survive encode→frame→decode byte-identically.

Hypothesis generates adversarial request/response shapes — nested args,
unicode ops, extreme request ids, the ``client_id`` and ``deadline``
headers — and asserts the frame round-trip is the identity, and that
re-encoding the decoded message reproduces the *exact* wire bytes (so
a proxy or a journal can replay frames without semantic drift).
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc.wire import (
    FRAME_HEADER,
    FrameError,
    RpcFault,
    RpcRequest,
    RpcResponse,
    TraceContext,
    decode_message,
    encode_message,
    frame_message,
)

# JSON-ish payload values, closed under nesting; floats exclude NaN
# (NaN != NaN would fail equality without the payload being wrong).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=20,
)

_hex = "0123456789abcdef"
_trace_contexts = st.builds(
    TraceContext,
    trace_id=st.text(alphabet=_hex, min_size=1, max_size=16),
    span_id=st.text(alphabet=_hex, min_size=1, max_size=8),
    sampled=st.booleans(),
)

_requests = st.builds(
    RpcRequest,
    op=st.text(min_size=1, max_size=30),
    args=st.dictionaries(st.text(max_size=15), _values, max_size=5),
    request_id=st.integers(min_value=0, max_value=2**62),
    client_id=st.one_of(st.none(), st.text(max_size=30)),
    deadline=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
    ),
    trace=st.one_of(st.none(), _trace_contexts),
)

_faults = st.builds(
    RpcFault, code=st.text(min_size=1, max_size=20), message=st.text(max_size=80)
)

_responses = st.builds(
    RpcResponse,
    request_id=st.integers(min_value=0, max_value=2**62),
    value=_values,
    fault=st.one_of(st.none(), _faults),
    server_ms=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
    ),
)


def unframe(frame: bytes) -> bytes:
    """Split one wire frame back into its payload, validating the header."""
    (length,) = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
    payload = frame[FRAME_HEADER.size :]
    assert length == len(payload)
    return payload


@settings(max_examples=200, deadline=None)
@given(message=st.one_of(_requests, _responses))
def test_messages_survive_the_frame_round_trip_byte_identically(message):
    wire = frame_message(encode_message(message))
    decoded = decode_message(unframe(wire))
    assert decoded == message
    assert type(decoded) is type(message)
    # the round trip is byte-stable: a replayed frame is the same frame
    assert frame_message(encode_message(decoded)) == wire


@settings(max_examples=100, deadline=None)
@given(request=_requests)
def test_headers_survive_the_round_trip_exactly(request):
    decoded = decode_message(encode_message(request))
    assert decoded.request_id == request.request_id
    assert decoded.client_id == request.client_id
    assert decoded.deadline == request.deadline
    assert decoded.op == request.op and decoded.args == request.args
    assert decoded.trace == request.trace
    if request.trace is not None:
        # the propagation header arrives intact AND typed: the server
        # continues this exact trace under this exact parent span
        assert isinstance(decoded.trace, TraceContext)
        assert decoded.trace.trace_id == request.trace.trace_id
        assert decoded.trace.span_id == request.trace.span_id
        assert decoded.trace.sampled is request.trace.sampled


@settings(max_examples=50, deadline=None)
@given(junk=st.binary(min_size=1, max_size=64))
def test_undecodable_payloads_raise_frame_error_not_random_exceptions(junk):
    try:
        decoded = decode_message(junk)
    except FrameError:
        return  # the typed failure the server maps to garbage_frame
    # some byte strings ARE valid pickles; those must decode to a value,
    # not to a partially-constructed protocol object
    assert not isinstance(decoded, (RpcRequest, RpcResponse))


def test_frame_header_is_the_transport_header():
    # the RPC tier and the replication transport share one wire dialect;
    # this pins the header so they cannot drift apart silently
    assert FRAME_HEADER.format == struct.Struct("<Q").format
    assert FRAME_HEADER.size == 8
