"""Fault-injection sweep over both network listeners.

Four hostile connection shapes — mid-frame disconnect, slow-loris
partial header, oversized/garbage frames, and an aborted auth handshake —
are thrown at the RPC server AND the replication shipping port.  The
invariants: the faulty peer is dropped cleanly (typed transport-error
accounting on the RPC side), and the listener keeps serving well-behaved
peers afterwards.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.replication import LogShipper, ReplicaService, connect_tcp
from repro.rpc import RpcClient, RpcServer
from repro.service import KokoService

TEXT = "I ate a chocolate ice cream, which was delicious, and also ate a pie."
ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)


class ExplodingPipeline:
    """Replicas must never re-annotate."""

    def annotate(self, *args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("replicas must never re-annotate")


def raw_connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def read_until_closed(sock: socket.socket, timeout: float = 5.0) -> bytes:
    """Drain a socket until the peer closes it; returns whatever arrived."""
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
    except (TimeoutError, OSError):
        pass
    return b"".join(chunks)


def transport_error_count(server: RpcServer, kind: str) -> float:
    return server.node.metrics.counter(
        "koko_rpc_transport_errors_total",
        "RPC connections dropped by fault kind",
        ("kind",),
    ).labels(kind).value


def wait_for_count(read, target: float, timeout: float = 5.0) -> float:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = read()
        if value >= target:
            return value
        time.sleep(0.01)
    return read()


# ----------------------------------------------------------------------
# the RPC server
# ----------------------------------------------------------------------
@pytest.fixture
def rpc_setup(listen_ready):
    """A served single-shard service with aggressive transport bounds."""
    with KokoService(shards=1) as service:
        service.add_document(TEXT, "doc0")
        with RpcServer(
            service, max_frame_bytes=1 << 20, idle_timeout=0.5
        ) as server:
            host, port = listen_ready(*server.address)
            yield server, host, port


def assert_still_serving(host: str, port: int) -> None:
    """A fresh, well-behaved client gets real answers after the fault."""
    client = RpcClient(host, port, client_id="control")
    try:
        result = client.query(ENTITY_QUERY)
        assert len(list(result)) > 0
    finally:
        client.close()


def test_rpc_mid_frame_disconnect_drops_only_that_peer(rpc_setup):
    server, host, port = rpc_setup
    before = transport_error_count(server, "bad_frame")
    sock = raw_connect(host, port)
    sock.sendall(struct.pack("<Q", 4096) + b"x" * 100)  # promise 4096, send 100
    sock.close()
    assert wait_for_count(
        lambda: transport_error_count(server, "bad_frame"), before + 1
    ) >= before + 1
    assert_still_serving(host, port)


def test_rpc_slow_loris_partial_header_is_cut_off(rpc_setup):
    server, host, port = rpc_setup
    before = transport_error_count(server, "idle_timeout")
    sock = raw_connect(host, port)
    sock.sendall(b"\x10\x00\x00")  # 3 of 8 header bytes, then silence
    # the 0.5s idle timeout cuts the connection without our cooperation
    assert read_until_closed(sock) == b""
    sock.close()
    assert wait_for_count(
        lambda: transport_error_count(server, "idle_timeout"), before + 1
    ) >= before + 1
    assert_still_serving(host, port)


def test_rpc_oversized_frame_is_rejected_before_allocation(rpc_setup):
    server, host, port = rpc_setup
    before = transport_error_count(server, "oversized_frame")
    sock = raw_connect(host, port)
    sock.sendall(struct.pack("<Q", 1 << 40))  # a terabyte, allegedly
    assert read_until_closed(sock) == b""  # dropped, nothing served
    sock.close()
    assert wait_for_count(
        lambda: transport_error_count(server, "oversized_frame"), before + 1
    ) >= before + 1
    assert_still_serving(host, port)


def test_rpc_garbage_frame_is_dropped_not_unpickled_into_a_crash(rpc_setup):
    server, host, port = rpc_setup
    before = transport_error_count(server, "garbage_frame")
    payload = b"\x93NUMPY-NOT-PICKLE\x00\xff" * 3
    sock = raw_connect(host, port)
    sock.sendall(struct.pack("<Q", len(payload)) + payload)
    assert read_until_closed(sock) == b""
    sock.close()
    assert wait_for_count(
        lambda: transport_error_count(server, "garbage_frame"), before + 1
    ) >= before + 1
    assert_still_serving(host, port)


def test_rpc_auth_handshake_abort_counts_and_serves_on(listen_ready):
    with KokoService(shards=1) as service:
        service.add_document(TEXT, "doc0")
        with RpcServer(
            service, auth_token=b"secret", handshake_timeout=0.5
        ) as server:
            host, port = listen_ready(*server.address)

            # abort 1: connect, read the server nonce, hang up silently
            sock = raw_connect(host, port)
            nonce = sock.recv(16)
            assert len(nonce) == 16
            sock.close()

            # abort 2: answer the challenge with garbage of the right size
            sock = raw_connect(host, port)
            sock.recv(16)
            sock.sendall(b"\x00" * (16 + 32))
            assert read_until_closed(sock) == b""
            sock.close()

            assert wait_for_count(
                lambda: transport_error_count(server, "auth_failure"), 2
            ) >= 2
            # a properly keyed client is still served
            client = RpcClient(host, port, auth_token=b"secret")
            try:
                assert len(list(client.query(ENTITY_QUERY))) > 0
            finally:
                client.close()


# ----------------------------------------------------------------------
# the replication shipping port (LogShipper.listen)
# ----------------------------------------------------------------------
@pytest.fixture
def shipping_setup(tmp_path, listen_ready):
    """A primary with a listening shipper; no replica attached yet."""
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXT, "doc0")
        shipper = LogShipper(primary)
        host, port = listen_ready(*shipper.listen())
        try:
            yield primary, shipper, host, port
        finally:
            shipper.close()


def assert_shipping_still_works(primary, host, port):
    replica = ReplicaService(
        connect_tcp(host, port), pipeline=ExplodingPipeline(), name="survivor"
    )
    try:
        assert replica.wait_caught_up(primary.wal_position(), timeout=30)
        assert sorted(replica.document_ids()) == sorted(primary.document_ids())
    finally:
        replica.close()


def test_shipping_survives_mid_frame_disconnect(shipping_setup):
    primary, _shipper, host, port = shipping_setup
    sock = raw_connect(host, port)
    sock.sendall(struct.pack("<Q", 4096) + b"y" * 64)
    sock.close()
    assert_shipping_still_works(primary, host, port)


def test_shipping_survives_slow_loris_partial_header(shipping_setup):
    primary, _shipper, host, port = shipping_setup
    sock = raw_connect(host, port)
    sock.sendall(b"\x08\x00")  # hold a half-open header while others attach
    try:
        assert_shipping_still_works(primary, host, port)
    finally:
        sock.close()


def test_shipping_survives_garbage_frames(shipping_setup):
    primary, _shipper, host, port = shipping_setup
    payload = b"\xde\xad\xbe\xef not a pickle"
    sock = raw_connect(host, port)
    sock.sendall(struct.pack("<Q", len(payload)) + payload)
    sock.close()
    assert_shipping_still_works(primary, host, port)


def test_shipping_survives_auth_handshake_abort(tmp_path, listen_ready):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as primary:
        primary.add_document(TEXT, "doc0")
        shipper = LogShipper(primary)
        host, port = listen_ready(*shipper.listen(auth_token="s3cret"))
        try:
            sock = raw_connect(host, port)
            sock.recv(16)  # take the nonce ...
            sock.close()  # ... and abort instead of answering
            sock = raw_connect(host, port)
            sock.recv(16)
            sock.sendall(b"\xff" * (16 + 32))  # wrong digest
            assert read_until_closed(sock) == b""
            sock.close()
            # a correctly keyed follower still bootstraps and catches up
            replica = ReplicaService(
                connect_tcp(host, port, auth_token="s3cret"),
                pipeline=ExplodingPipeline(),
            )
            try:
                assert replica.wait_caught_up(primary.wal_position(), timeout=30)
            finally:
                replica.close()
        finally:
            shipper.close()
