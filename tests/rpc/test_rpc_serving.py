"""End-to-end RPC serving acceptance.

The PR's core claims: results over the wire are tuple-identical to
in-process calls at shards 1 and 4, served by the primary AND a TCP
replica; read-your-writes tokens travel through the RPC tier; admission
control rejects only the offending client; deadlines cancel server work;
bulk ingest amortizes claim/commit rounds; pipelined acks defer
durability behind an explicit flush barrier.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.errors import (
    RpcBadRequest,
    RpcDeadlineExceeded,
    RpcRateLimited,
    RpcReadOnly,
    RpcStaleRead,
    RpcUnavailable,
)
from repro.persistence import WalPosition
from repro.rpc import AdmissionPolicy, AsyncRpcClient, RpcClient, RpcServer
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
CITY_QUERY = (
    'extract a:GPE from "input.txt" if () satisfying a '
    '(a SimilarTo "city" {1.0}) with threshold 0.3'
)

TEXTS = [
    "I ate a chocolate ice cream, which was delicious, and also ate a pie.",
    "Anna ate some delicious cheesecake that she bought at a grocery store.",
    "cities in asian countries such as Beijing and Tokyo.",
    "Paolo visited Beijing and ate a delicious croissant.",
    "Maria ate a delicious pie in Tokyo.",
    "The barista in Osaka served a delicious espresso.",
]


def as_rows(result):
    return [(t.doc_id, t.sid, t.values, t.scores) for t in result]


@pytest.fixture
def rpc_client(listen_ready):
    """Factory: an ``RpcServer`` on *node* plus a connected client."""
    servers, clients = [], []

    def _connect(node, **server_kwargs) -> RpcClient:
        server = RpcServer(node, **server_kwargs)
        servers.append(server)
        host, port = listen_ready(*server.start())
        client = RpcClient(
            host, port, auth_token=server_kwargs.get("auth_token")
        )
        clients.append(client)
        return client

    try:
        yield _connect
    finally:
        for client in clients:
            client.close()
        for server in servers:
            server.close()


# ----------------------------------------------------------------------
# acceptance: tuple-identical through the wire, primary and replica
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4])
def test_rpc_results_tuple_identical_from_primary_and_replica(
    make_tcp_cluster, rpc_client, shards
):
    primary, _shipper, replica, _router, _h, _p = make_tcp_cluster(
        shards=shards, texts=TEXTS
    )
    primary_client = rpc_client(primary, name="primary-rpc")
    replica_client = rpc_client(replica, name="replica-rpc")
    for query in (ENTITY_QUERY, CITY_QUERY):
        local = as_rows(primary.query(query))
        assert as_rows(primary_client.query(query)) == local
        assert as_rows(replica_client.query(query)) == local
    info = primary_client.info()
    assert info == {
        "name": "primary-rpc",
        "kind": "service",
        "documents": len(TEXTS),
        "shards": shards,
    }
    assert replica_client.info()["kind"] == "replica"


def test_replica_rpc_rejects_writes(make_tcp_cluster, rpc_client):
    cluster = make_tcp_cluster(texts=TEXTS[:1])
    replica_client = rpc_client(cluster.replica)
    with pytest.raises(RpcReadOnly):
        replica_client.add_document("nope")
    with pytest.raises(RpcReadOnly):
        replica_client.remove_document("doc0")
    # the connection survives the typed fault
    assert replica_client.ping()["ok"]


# ----------------------------------------------------------------------
# read-your-writes tokens through the wire
# ----------------------------------------------------------------------
def test_read_your_writes_token_through_rpc(make_tcp_cluster, rpc_client):
    primary, _shipper, replica, router, _h, _p = make_tcp_cluster(texts=TEXTS[:3])
    primary_client = rpc_client(primary)
    replica_client = rpc_client(replica)

    ack = primary_client.add_document(TEXTS[3], doc_id="doc3")
    token = ack["token"]
    assert isinstance(token, WalPosition) and ack["durable"]

    # a token the replica has not reached yet is a typed stale_read ...
    future = WalPosition(token.segment_id + 1000, 0)
    with pytest.raises(RpcStaleRead):
        replica_client.query(CITY_QUERY, read_your_writes=future)
    # ... and once caught up past the real token, the read serves
    assert replica.wait_caught_up(token, timeout=30)
    assert as_rows(
        replica_client.query(CITY_QUERY, read_your_writes=token)
    ) == as_rows(primary.query(CITY_QUERY))


def test_router_rpc_routes_writes_and_token_reads(make_tcp_cluster, rpc_client):
    primary, _shipper, _replica, router, _h, _p = make_tcp_cluster(texts=TEXTS[:2])
    router_client = rpc_client(router, name="router-rpc")
    assert router_client.info()["kind"] == "router"

    ack = router_client.add_document(TEXTS[4], doc_id="doc-tokyo")
    assert ack["token"] is not None
    rows = as_rows(
        router_client.query(ENTITY_QUERY, read_your_writes=ack["token"])
    )
    assert rows == as_rows(primary.query(ENTITY_QUERY))

    bulk = router_client.add_documents(TEXTS[5:], doc_ids=["doc-osaka"])
    assert bulk["count"] == 1 and bulk["token"] is not None
    rows = as_rows(router_client.query(CITY_QUERY, read_your_writes=bulk["token"]))
    assert rows == as_rows(primary.query(CITY_QUERY))


# ----------------------------------------------------------------------
# admission: only the offending client is rejected
# ----------------------------------------------------------------------
def test_rate_limited_client_faults_while_others_proceed(listen_ready):
    with KokoService(shards=1) as service:
        service.add_document(TEXTS[0], "doc0")
        policy = AdmissionPolicy(query_rate=0.001, query_burst=2.0)
        with RpcServer(service, admission=policy) as server:
            host, port = listen_ready(*server.address)
            greedy = RpcClient(host, port, client_id="greedy")
            polite = RpcClient(host, port, client_id="polite")
            try:
                greedy.query(ENTITY_QUERY)
                greedy.query(ENTITY_QUERY)  # burst spent
                with pytest.raises(RpcRateLimited):
                    greedy.query(ENTITY_QUERY)
                # fairness: the other client draws from its own bucket
                assert as_rows(polite.query(ENTITY_QUERY)) == as_rows(
                    service.query(ENTITY_QUERY)
                )
                # the rejected client's connection survives for later calls
                assert greedy.ping()["ok"]
                # ingest is its own, here unlimited, bucket: writes admit
                greedy.add_document(TEXTS[1], doc_id="doc1")
            finally:
                greedy.close()
                polite.close()


def test_ingest_rate_limit_is_independent_of_queries(rpc_client):
    with KokoService(shards=1) as service:
        policy = AdmissionPolicy(ingest_rate=0.001, ingest_burst=1.0)
        client = rpc_client(service, admission=policy)
        client.add_document(TEXTS[0], doc_id="doc0")  # burst spent
        with pytest.raises(RpcRateLimited):
            client.add_document(TEXTS[1], doc_id="doc1")
        # queries are a different kind: unlimited here
        for _ in range(5):
            client.query(ENTITY_QUERY)


# ----------------------------------------------------------------------
# deadlines: expired budgets cancel server work
# ----------------------------------------------------------------------
def test_expired_deadline_never_starts_shard_work(rpc_client, monkeypatch):
    with KokoService(shards=4) as service:
        for index, text in enumerate(TEXTS):
            service.add_document(text, f"doc{index}")
        client = rpc_client(service)
        scans = []
        original = KokoService._execute_shard

        def counting(self, *args, **kwargs):
            scans.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KokoService, "_execute_shard", counting)
        with pytest.raises(RpcDeadlineExceeded):
            client.query(ENTITY_QUERY, deadline=0.0)
        assert scans == []  # rejected before any shard ran


def test_inflight_deadline_returns_before_the_work_finishes(
    rpc_client, monkeypatch
):
    with KokoService(shards=2) as service:
        for index, text in enumerate(TEXTS[:3]):
            service.add_document(text, f"doc{index}")
        client = rpc_client(service)
        gate = threading.Event()
        original = KokoService._execute_shard

        def wedged(self, *args, **kwargs):
            gate.wait(5.0)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KokoService, "_execute_shard", wedged)
        try:
            started = time.monotonic()
            with pytest.raises(RpcDeadlineExceeded):
                client.query(ENTITY_QUERY, deadline=0.2)
            # the fault arrived on the deadline, not when the gate opened
            assert time.monotonic() - started < 3.0
        finally:
            gate.set()


def test_server_default_deadline_applies_when_request_has_none(
    rpc_client, monkeypatch
):
    with KokoService(shards=1) as service:
        service.add_document(TEXTS[0], "doc0")
        client = rpc_client(service, default_deadline=0.15)
        gate = threading.Event()
        original = KokoService._execute_shard

        def wedged(self, *args, **kwargs):
            gate.wait(5.0)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(KokoService, "_execute_shard", wedged)
        try:
            with pytest.raises(RpcDeadlineExceeded):
                client.query(ENTITY_QUERY)
        finally:
            gate.set()


# ----------------------------------------------------------------------
# bulk ingest: claim/commit rounds are amortized per batch
# ----------------------------------------------------------------------
def test_bulk_ingest_amortizes_claim_and_commit_rounds(
    tmp_path, rpc_client, monkeypatch
):
    with KokoService(shards=2, storage_dir=tmp_path / "svc") as service:
        client = rpc_client(service)
        claims, commits = [], []
        original_claim = KokoService._claim_ingest_batch
        original_commit = KokoService._commit_ingest_batch

        def counting_claim(self, *args, **kwargs):
            claims.append(1)
            return original_claim(self, *args, **kwargs)

        def counting_commit(self, *args, **kwargs):
            commits.append(1)
            return original_commit(self, *args, **kwargs)

        def no_single_claims(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError("bulk ingest fell back to per-doc claims")

        monkeypatch.setattr(KokoService, "_claim_ingest_batch", counting_claim)
        monkeypatch.setattr(KokoService, "_commit_ingest_batch", counting_commit)
        monkeypatch.setattr(KokoService, "_claim_ingest", no_single_claims)

        texts = [f"{text} bulk variation {index}" for index in range(12)
                 for text in TEXTS[:1]]
        ack = client.add_documents(texts, batch_size=4)
        assert ack["count"] == 12 and len(ack["doc_ids"]) == 12
        # 12 docs at batch_size=4: exactly ceil(12/4) = 3 rounds of each
        assert len(claims) == 3 and len(commits) == 3
        assert len(service) == 12


# ----------------------------------------------------------------------
# pipelined acks: splice first, durability behind the flush barrier
# ----------------------------------------------------------------------
def test_pipelined_ack_defers_durability_until_flush(tmp_path, rpc_client):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as service:
        client = rpc_client(service)
        ack = client.add_document(TEXTS[0], doc_id="doc0", wait_durable=False)
        assert ack["durable"] is False  # acked before the fsync
        # spliced: the document is queryable before it is durable
        assert as_rows(client.query(ENTITY_QUERY)) == as_rows(
            service.query(ENTITY_QUERY)
        )
        token = client.flush()["token"]
        assert isinstance(token, WalPosition)
        assert service.wal_position() >= token


def test_bulk_ingest_wait_durable_false_defers_the_fsync(tmp_path, rpc_client):
    with KokoService(shards=1, storage_dir=tmp_path / "svc") as service:
        client = rpc_client(service)
        ack = client.add_documents(TEXTS[:3], wait_durable=False)
        assert ack["count"] == 3 and ack["durable"] is False
        assert client.flush()["token"] is not None
        assert len(service) == 3


# ----------------------------------------------------------------------
# protocol odds and ends
# ----------------------------------------------------------------------
def test_bad_query_is_a_typed_bad_request(rpc_client):
    with KokoService(shards=1) as service:
        client = rpc_client(service)
        with pytest.raises(RpcBadRequest):
            client.query("this is not a koko query")
        with pytest.raises(RpcBadRequest):
            client._call("no_such_op", {}, None)
        assert client.ping()["ok"]  # still serving after both faults


def test_query_batch_shares_one_connection_round(rpc_client):
    with KokoService(shards=1) as service:
        for index, text in enumerate(TEXTS[:2]):
            service.add_document(text, f"doc{index}")
        client = rpc_client(service)
        results = client.query_batch([ENTITY_QUERY, CITY_QUERY])
        assert as_rows(results[0]) == as_rows(service.query(ENTITY_QUERY))
        assert as_rows(results[1]) == as_rows(service.query(CITY_QUERY))


def test_server_close_makes_clients_unavailable(listen_ready):
    with KokoService(shards=1) as service:
        server = RpcServer(service)
        host, port = listen_ready(*server.start())
        client = RpcClient(host, port)
        assert client.ping()["ok"]
        server.close()
        with pytest.raises(RpcUnavailable):
            for _ in range(3):  # first call may still drain a buffered reply
                client.ping()
        client.close()


def test_rpc_metrics_land_in_the_node_registry(rpc_client):
    with KokoService(shards=1) as service:
        service.add_document(TEXTS[0], "doc0")
        client = rpc_client(service)
        client.query(ENTITY_QUERY)
        with pytest.raises(RpcBadRequest):
            client.query("nope")
        registry = service.metrics
        requests = registry.counter(
            "koko_rpc_requests_total", "RPC requests received", ("op",)
        )
        faults = registry.counter(
            "koko_rpc_faults_total", "RPC requests answered with a fault", ("code",)
        )
        assert requests.labels("query").value >= 2
        assert faults.labels("bad_request").value >= 1
        rendered = registry.render_text()
        assert "koko_rpc_request_seconds" in rendered
        assert "koko_rpc_open_connections" in rendered


def test_async_client_serves_concurrent_requests(listen_ready):
    with KokoService(shards=2) as service:
        for index, text in enumerate(TEXTS[:3]):
            service.add_document(text, f"doc{index}")
        expected = as_rows(service.query(ENTITY_QUERY))
        with RpcServer(service, auth_token=b"tok") as server:
            host, port = listen_ready(*server.address)

            async def drive():
                clients = await asyncio.gather(
                    *(
                        AsyncRpcClient.connect(host, port, auth_token=b"tok")
                        for _ in range(3)
                    )
                )
                try:
                    results = await asyncio.gather(
                        *(client.query(ENTITY_QUERY) for client in clients)
                    )
                    pong = await clients[0].ping()
                    assert pong["ok"]
                    return results
                finally:
                    for client in clients:
                        await client.close()

            results = asyncio.run(drive())
        assert all(as_rows(result) == expected for result in results)


def test_readyz_covers_the_rpc_front_door(listen_ready):
    from repro.observability import TelemetryServer, http_get_json

    with KokoService(shards=1) as service:
        rpc = RpcServer(service)
        rpc.start()
        telemetry = TelemetryServer(service, rpc_server=rpc)
        listen_ready(*telemetry.start())
        try:
            status, body = http_get_json(*telemetry.address, "/readyz")
            assert status == 200 and body["checks"]["rpc_listening"] is True
            rpc.close()
            status, body = http_get_json(*telemetry.address, "/readyz")
            assert status == 503 and body["checks"]["rpc_listening"] is False
        finally:
            telemetry.close()
            rpc.close()


def test_non_loopback_rpc_listener_requires_auth_or_opt_out():
    from repro.errors import ReplicationError

    with KokoService(shards=1) as service:
        with pytest.raises(ReplicationError, match="unauthenticated"):
            RpcServer(service, host="0.0.0.0")
        server = RpcServer(service, host="0.0.0.0", allow_unauthenticated=True)
        host, port = server.start()
        assert port > 0
        server.close()
