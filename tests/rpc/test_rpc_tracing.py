"""Trace-context propagation through the RPC tier, plus its metrics.

The tentpole's RPC leg: a traced client call produces linked fragments
on both sides of the wire (client root → server fragment → service
fragment), responses carry ``server_ms`` so the client can split wire
from server time, the server exposes inflight/queue-wait metrics, and
slow-op entries carry the trace and client ids that make the slowlog
joinable against ``/traces``.
"""

from __future__ import annotations

import pytest

from repro.rpc import AdmissionPolicy, RpcClient, RpcServer
from repro.service import KokoService

ENTITY_QUERY = (
    'extract e:Entity, d:Str from input.txt if '
    '(/ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) } (b) in (e))'
)
TEXT = "I ate a chocolate ice cream, which was delicious, and also ate a pie."


@pytest.fixture
def traced_pair(listen_ready):
    """A primary + RpcServer + a fully-sampled client, torn down in order."""
    service = KokoService(shards=2)
    # a permissive admission policy, so the admission-wait span exists
    server = RpcServer(
        service, admission=AdmissionPolicy(query_rate=1000.0, ingest_rate=1000.0)
    )
    host, port = listen_ready(*server.start())
    client = RpcClient(host, port, client_id="tracer", trace_sample_rate=1.0)
    try:
        yield service, server, client
    finally:
        client.close()
        server.close()
        service.close()


def _fragment_chain(fragments):
    """Map span_id -> fragment for parent-link assertions."""
    return {f["span_id"]: f for f in fragments}


def test_traced_ingest_links_client_server_and_service_fragments(traced_pair):
    service, _server, client = traced_pair
    client.add_document(TEXT, doc_id="d0")

    (trace_id,) = [t["trace_id"] for t in client.traces.recent()]
    (client_fragment,) = client.traces.get(trace_id)
    assert client_fragment["kind"] == "client"
    assert client_fragment["parent_span_id"] is None
    assert client_fragment["root"]["name"] == "rpc.call"
    attrs = client_fragment["root"]["attrs"]
    assert attrs["op"] == "add_document"
    assert attrs["server_ms"] > 0 and attrs["wire_ms"] >= 0

    fragments = service.trace_store.get(trace_id)
    assert fragments is not None
    by_kind = {f["kind"]: f for f in fragments}
    assert set(by_kind) == {"rpc", "ingest"}
    # server fragment hangs under the client's root span...
    assert by_kind["rpc"]["parent_span_id"] == client_fragment["span_id"]
    assert by_kind["rpc"]["root"]["name"] == "rpc.server"
    # ...and the service's ingest fragment under the server's span
    assert by_kind["ingest"]["parent_span_id"] == by_kind["rpc"]["span_id"]
    assert by_kind["ingest"]["root"]["name"] == "ingest"
    # the server-side span timed its admission wait
    assert "admission_wait" in [
        c["name"] for c in by_kind["rpc"]["root"].get("children", [])
    ]


def test_traced_query_joins_the_same_plane(traced_pair):
    service, _server, client = traced_pair
    client.add_document(TEXT, doc_id="d0")
    client.query(ENTITY_QUERY)

    trace_ids = [t["trace_id"] for t in client.traces.recent()]
    assert len(trace_ids) == 2  # one per call, distinct traces
    query_trace = trace_ids[0]  # newest first
    kinds = {f["kind"] for f in service.trace_store.get(query_trace)}
    assert kinds == {"rpc", "query"}


def test_untraced_clients_record_no_fragments(listen_ready):
    with KokoService(shards=1) as service:
        with RpcServer(service) as server:
            host, port = listen_ready(*server.address)
            client = RpcClient(host, port)  # trace_sample_rate defaults to 0
            try:
                client.add_document(TEXT, doc_id="d0")
                ping_ok = client.ping()
            finally:
                client.close()
            assert ping_ok
            assert len(client.traces) == 0
            assert len(service.trace_store) == 0


def test_responses_carry_server_ms_and_stats_split_the_wire(traced_pair):
    _service, _server, client = traced_pair
    client.add_document(TEXT, doc_id="d0")
    client.query(ENTITY_QUERY)

    stats = client.stats()
    assert stats["requests"] == 2 and stats["faults"] == 0
    assert stats["timed"] == 2
    assert stats["rtt_ms_avg"] >= stats["server_ms_avg"] > 0
    assert stats["wire_ms_avg"] == pytest.approx(
        stats["rtt_ms_avg"] - stats["server_ms_avg"], abs=1e-6
    )


def test_inflight_gauge_settles_and_queue_wait_histogram_fills(traced_pair):
    service, _server, client = traced_pair
    client.add_document(TEXT, doc_id="d0")
    client.query(ENTITY_QUERY)

    registry = service.metrics
    assert registry.get("koko_rpc_inflight_requests").value == 0
    # every executed request observed its executor queue wait
    assert registry.get("koko_rpc_executor_queue_wait_seconds").count >= 2


def test_slow_ops_carry_trace_and_client_ids_and_filter_by_trace(listen_ready):
    # zero thresholds log every op, so both RPC calls land in the log
    with KokoService(shards=1, slow_query_ms=0.0, slow_ingest_ms=0.0) as service:
        with RpcServer(service) as server:
            host, port = listen_ready(*server.address)
            client = RpcClient(
                host, port, client_id="slowpoke", trace_sample_rate=1.0
            )
            try:
                client.add_document(TEXT, doc_id="d0")
                client.query(ENTITY_QUERY)
            finally:
                client.close()

        entries = service.recent_slow_ops()
        assert len(entries) == 2
        for entry in entries:
            assert entry["client_id"] == "slowpoke"
            assert entry["trace_id"] is not None

        target = entries[0]["trace_id"]
        filtered = service.recent_slow_ops(trace_id=target)
        assert [e["trace_id"] for e in filtered] == [target]
        assert service.recent_slow_ops(trace_id="nonexistent") == []

        # the same filter over HTTP: /slowlog?trace_id=...
        from repro.observability import TelemetryServer, http_get_json

        with TelemetryServer(service) as telemetry:
            listen_ready(*telemetry.address)
            status, over_http = http_get_json(
                *telemetry.address, f"/slowlog?trace_id={target}"
            )
            assert status == 200
            assert [e["trace_id"] for e in over_http] == [target]
            status, empty = http_get_json(
                *telemetry.address, "/slowlog?trace_id=nonexistent"
            )
            assert status == 200 and empty == []
