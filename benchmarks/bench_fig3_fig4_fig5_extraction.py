"""Benchmarks regenerating Figures 3, 4 and 5 (extraction quality).

Each benchmark times the KOKO side of the experiment and asserts the
qualitative shape reported in the paper (KOKO's F1 above the baselines;
descriptors helping on the short-article corpus).
"""

from __future__ import annotations

from repro.evaluation.experiments import fig3_cafes, fig4_wnut, fig5_descriptors
from repro.evaluation.extraction_quality import ike_sweep, koko_threshold_sweep
from repro.evaluation.queries import CAFE_IKE_PATTERNS, CAFE_QUERY


def test_fig3_cafe_extraction_koko(benchmark, cafe_engine, cafe_corpus):
    """Figure 3 — the KOKO threshold sweep on the BARISTAMAG-like corpus."""
    koko = benchmark(
        koko_threshold_sweep, cafe_engine, CAFE_QUERY, cafe_corpus, "cafe"
    )
    ike = ike_sweep(cafe_corpus, CAFE_IKE_PATTERNS, gold_key="cafe")
    assert koko.best_f1() > ike.best_f1()


def test_fig3_full_comparison(benchmark):
    """Figure 3 — full three-system comparison on both cafe corpora."""
    result = benchmark.pedantic(
        fig3_cafes.run,
        kwargs={"baristamag_articles": 12, "sprudge_articles": 15, "crf_epochs": 2},
        iterations=1,
        rounds=1,
    )
    for corpus_name in ("baristamag", "sprudge"):
        assert result.best_f1(corpus_name, "KOKO") >= result.best_f1(corpus_name, "IKE")
        assert result.best_f1(corpus_name, "KOKO") > result.best_f1(corpus_name, "CRFsuite")


def test_fig4_wnut_extraction(benchmark):
    """Figure 4 — teams and facilities from tweets."""
    result = benchmark.pedantic(
        fig4_wnut.run,
        kwargs={"tweets": 120, "include_crf": False},
        iterations=1,
        rounds=1,
    )
    assert result.best_f1("team", "KOKO") >= result.best_f1("team", "IKE")
    assert result.best_f1("facility", "KOKO") > 0


def test_fig5_descriptor_ablation(benchmark):
    """Figure 5 — descriptors help short articles more than long ones."""
    result = benchmark.pedantic(
        fig5_descriptors.run,
        kwargs={"baristamag_articles": 12, "sprudge_articles": 15},
        iterations=1,
        rounds=1,
    )
    assert result.f1_gain("baristamag") >= result.f1_gain("sprudge") - 0.02
