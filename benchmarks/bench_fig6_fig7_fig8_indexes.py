"""Benchmarks regenerating Figures 6, 7 and 8 (index construction and lookup)."""

from __future__ import annotations

import pytest

from repro.corpora.synthetic_queries import generate_tree_benchmark
from repro.evaluation.experiments import fig6_index_construction, index_performance
from repro.indexing.baselines import (
    AdvInvertedIndex,
    InvertedIndex,
    KokoMultiIndex,
    SubtreeIndex,
)


def test_fig6_index_construction_and_size(benchmark):
    """Figure 6 — build time and size for all four designs vs corpus size."""
    result = benchmark.pedantic(
        fig6_index_construction.run,
        kwargs={"article_counts": (25, 50)},
        iterations=1,
        rounds=1,
    )
    sizes = result.sizes_at(50)
    assert sizes["KOKO"] < sizes["INVERTED"] < sizes["ADVINVERTED"] < sizes["SUBTREE"]
    times = result.build_times_at(50)
    assert times["SUBTREE"] > times["INVERTED"]


@pytest.mark.parametrize(
    "design_cls",
    [InvertedIndex, AdvInvertedIndex, SubtreeIndex, KokoMultiIndex],
    ids=["INVERTED", "ADVINVERTED", "SUBTREE", "KOKO"],
)
def test_fig6_build_time_per_design(benchmark, wiki_corpus, design_cls):
    """Figure 6(a) — per-design index build time on the wiki corpus."""
    index = benchmark(lambda: design_cls().build(wiki_corpus))
    assert index.approximate_bytes() > 0


def test_fig7_happydb_lookup(benchmark, happy_corpus):
    """Figure 7 — lookup time and effectiveness on the HappyDB-like corpus."""
    queries = generate_tree_benchmark(happy_corpus, queries_per_setting=1)
    result = benchmark.pedantic(
        index_performance.run,
        kwargs={"corpus": happy_corpus, "queries": queries},
        iterations=1,
        rounds=1,
    )
    assert result.mean_effectiveness("KOKO") >= 0.95
    assert result.mean_effectiveness("INVERTED") < result.mean_effectiveness("KOKO")
    # The paper's lookup-time gap (KOKO >= 7x faster than the inverted
    # baselines) emerges with corpus size; at this laptop scale we only
    # require that KOKO's lookups stay in the same order of magnitude as the
    # fastest structure-aware baseline while delivering perfect effectiveness.
    assert result.mean_lookup_time("KOKO") <= 10 * result.mean_lookup_time("ADVINVERTED")


def test_fig8_wikipedia_lookup(benchmark, wiki_corpus):
    """Figure 8 — lookup time and effectiveness on the Wikipedia-like corpus."""
    queries = generate_tree_benchmark(wiki_corpus, queries_per_setting=1)
    result = benchmark.pedantic(
        index_performance.run,
        kwargs={"corpus": wiki_corpus, "queries": queries},
        iterations=1,
        rounds=1,
    )
    assert result.mean_effectiveness("KOKO") >= 0.95
    assert result.mean_effectiveness("ADVINVERTED") >= 0.95
    assert result.mean_effectiveness("INVERTED") < 0.9
