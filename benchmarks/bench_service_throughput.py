"""Benchmarks for the KokoService serving layer.

Measures the two serving-side effects the service layer exists for:

* **cold vs warm-cache throughput** — the first pass over a query set pays
  parse + DPLI + extraction; repeat passes are served from the plan and
  generation-stamped result caches;
* **ingest-while-querying** — per-document ingest latency while reader
  threads keep querying, plus the query latency percentiles observed
  during ingestion.

Run under pytest-benchmark like the other ``bench_*`` modules, or directly
(``PYTHONPATH=src python benchmarks/bench_service_throughput.py [--smoke]``)
to print the raw measurements as JSON; ``--smoke`` shrinks the workload so
CI can exercise the script end-to-end in seconds.
"""

from __future__ import annotations

import threading
import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus
from repro.service import KokoService


def _service_over(corpus: Corpus, articles: int) -> KokoService:
    service = KokoService(name=corpus.name)
    for document in corpus.documents[:articles]:
        service.add_annotated_document(document)
    return service


def run_throughput(corpus: Corpus, articles: int = 40, repeats: int = 5) -> dict:
    """Cold vs warm queries/second over the three scale-up queries."""
    service = _service_over(corpus, articles)
    queries = list(SCALEUP_QUERIES.values())

    started = time.perf_counter()
    service.query_batch(queries)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for _ in range(repeats):
        service.query_batch(queries)
    warm_seconds = (time.perf_counter() - started) / repeats

    return {
        "articles": articles,
        "queries": len(queries),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_queries_per_second": len(queries) / cold_seconds,
        "warm_queries_per_second": len(queries) / max(warm_seconds, 1e-9),
        "speedup": cold_seconds / max(warm_seconds, 1e-9),
        "result_cache_hit_rate": service.stats.result_cache_hit_rate,
        "plan_cache_hit_rate": service.stats.plan_cache_hit_rate,
    }


def run_ingest_while_querying(
    corpus: Corpus,
    initial_articles: int = 30,
    ingested_articles: int = 10,
    query_threads: int = 3,
) -> dict:
    """Per-document ingest latency under a concurrent query load."""
    service = _service_over(corpus, initial_articles)
    queries = list(SCALEUP_QUERIES.values())
    stop = threading.Event()
    reader_errors: list[Exception] = []

    def reader(offset: int) -> None:
        position = offset
        while not stop.is_set():
            try:
                service.query(queries[position % len(queries)])
            except Exception as exc:  # pragma: no cover - regression guard
                reader_errors.append(exc)
                return
            position += 1

    threads = [
        threading.Thread(target=reader, args=(offset,)) for offset in range(query_threads)
    ]
    for thread in threads:
        thread.start()
    ingest_latencies = []
    try:
        for document in corpus.documents[
            initial_articles : initial_articles + ingested_articles
        ]:
            started = time.perf_counter()
            service.add_document(document.text, f"ingest-{document.doc_id}")
            ingest_latencies.append(time.perf_counter() - started)
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    if reader_errors:
        raise reader_errors[0]
    ingest_latencies.sort()
    return {
        "initial_articles": initial_articles,
        "ingested_articles": len(ingest_latencies),
        "ingest_p50_seconds": ingest_latencies[len(ingest_latencies) // 2],
        "ingest_max_seconds": ingest_latencies[-1],
        "ingest_tokens_per_second": service.stats.ingest_tokens_per_second,
        "queries_served_during_ingest": service.stats.queries_served,
        "query_p50_seconds": service.stats.p50_query_seconds,
        "query_p95_seconds": service.stats.p95_query_seconds,
    }


def test_service_cold_vs_warm_throughput(benchmark, wiki_corpus):
    """Warm-cache batches must beat the cold pass."""
    result = benchmark.pedantic(
        run_throughput,
        kwargs={"corpus": wiki_corpus, "articles": 40, "repeats": 5},
        iterations=1,
        rounds=1,
    )
    assert result["warm_queries_per_second"] > result["cold_queries_per_second"]
    assert result["result_cache_hit_rate"] > 0.5


def test_service_ingest_while_querying(benchmark, wiki_corpus):
    """Ingestion stays live and bounded under concurrent query traffic."""
    result = benchmark.pedantic(
        run_ingest_while_querying,
        kwargs={"corpus": wiki_corpus, "initial_articles": 30, "ingested_articles": 8},
        iterations=1,
        rounds=1,
    )
    assert result["ingested_articles"] == 8
    assert result["queries_served_during_ingest"] > 0
    assert result["query_p95_seconds"] >= result["query_p50_seconds"]


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=20)
        throughput = run_throughput(wiki, articles=16, repeats=2)
        ingest = run_ingest_while_querying(
            wiki, initial_articles=12, ingested_articles=4
        )
    else:
        wiki = generate_wikipedia_corpus(articles=50)
        throughput = run_throughput(wiki)
        ingest = run_ingest_while_querying(wiki)
    print(
        json.dumps(
            {
                "smoke": smoke,
                "throughput": throughput,
                "ingest_while_querying": ingest,
            },
            indent=2,
        )
    )
