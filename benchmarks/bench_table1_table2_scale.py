"""Benchmarks regenerating Table 1 (GSP) and Table 2 (scale-up breakdown),
plus the Odin and NELL comparisons reported as text in the paper."""

from __future__ import annotations

from repro.evaluation.experiments import (
    nell_comparison,
    odin_comparison,
    table1_gsp,
    table2_scaleup,
)
from repro.evaluation.queries import SCALEUP_QUERIES


def test_table1_gsp_vs_nogsp(benchmark):
    """Table 1 — per-sentence extract-clause time, GSP vs NOGSP."""
    result = benchmark.pedantic(
        table1_gsp.run,
        kwargs={
            "happydb_moments": 60,
            "wikipedia_articles": 30,
            "queries_per_setting": 3,
            "max_sentences_per_query": 6,
        },
        iterations=1,
        rounds=1,
    )
    for corpus in ("HappyDB", "Wikipedia"):
        assert result.speedup(corpus, 5) > result.speedup(corpus, 1)
        assert result.speedup(corpus, 5) > 3.0


def test_table2_scaleup_breakdown(benchmark):
    """Table 2 — stage breakdown and linear-ish scaling of total time."""
    result = benchmark.pedantic(
        table2_scaleup.run,
        kwargs={"article_counts": (50, 100, 200)},
        iterations=1,
        rounds=1,
    )
    by_query = {row.query: row for row in result.rows if row.articles == 200}
    assert by_query["Chocolate"].selectivity < by_query["Title"].selectivity
    assert by_query["Title"].selectivity < by_query["DateOfBirth"].selectivity
    # Normalize + GSP are a negligible share of the total
    for row in result.rows:
        overhead = row.timings["Normalize"] + row.timings["GSP"]
        assert overhead <= max(0.02 * row.total_seconds, 0.005)
    # total time grows with corpus size for the unselective query
    series = result.total_series("DateOfBirth")
    assert series[-1][1] > series[0][1]


def test_table2_single_query_latency(benchmark, wiki_engine):
    """The headline per-query latency of the medium-selectivity Title query."""
    result = benchmark(wiki_engine.execute, SCALEUP_QUERIES["Title"])
    assert result.timings.total >= 0


def test_odin_comparison(benchmark):
    """Section 6.3 — Odin (annotation + execution) is slower than KOKO."""
    result = benchmark.pedantic(
        odin_comparison.run, kwargs={"articles": 60}, iterations=1, rounds=1
    )
    assert all(row.slowdown > 1.0 for row in result.rows)


def test_nell_comparison(benchmark):
    """Section 6.1 — NELL reaches much lower recall than precision."""
    result = benchmark.pedantic(
        nell_comparison.run,
        kwargs={"baristamag_articles": 20, "sprudge_articles": 30},
        iterations=1,
        rounds=1,
    )
    for score in result.scores.values():
        assert score.recall <= score.precision
