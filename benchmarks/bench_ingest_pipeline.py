"""Staged-concurrent-ingest benchmarks: multi-writer scaling, group commit.

Measures the three headline effects of the staged write path (sid
reservation under the meta lock → off-lock NLP annotation → group-commit
WAL append → splice under one shard's write lock):

* **multi-writer ingest throughput** — concurrent writers overlap
  annotation (on a process pool — the pure-Python pipeline is GIL-bound
  in threads), WAL fsyncs (shared through group commit) and per-shard
  splices; the scaling target is ≥2× at 4 shards with 4 writers over the
  single-writer baseline *at identical configuration*;
* **group-commit fsync reduction** — under concurrent load, records
  per fsync (the batch size) should reach ≥4×: one disk flush commits a
  whole batch;
* **read latency isolation** — reader p95 while a multi-writer ingest
  storm runs should stay close to the idle-corpus p95, because readers
  only contend with the brief splice stage, never with annotation or
  fsyncs.

A fourth section proves **correctness under concurrency**: a concurrent
ingest with pre-reserved sid ranges returns tuple-identical query results
to a serial ingest of the same documents.

All runs fix ``sync_interval`` (the group-commit linger) across baseline
and concurrent configurations, so the comparison isolates concurrency —
the single-writer baseline pays the same per-commit policy the concurrent
writers amortise.

Run under pytest-benchmark like the other ``bench_*`` modules, or
directly to print a JSON summary for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_ingest_pipeline.py [--smoke]

``--smoke`` shrinks document counts and writer grids so CI can exercise
the script end-to-end in seconds.
"""

from __future__ import annotations

import tempfile
import threading
import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.koko.engine import compile_query
from repro.nlp.pipeline import Pipeline
from repro.persistence import CheckpointPolicy
from repro.service import KokoService

INGEST_TEXT = (
    "Anna ate some delicious cheesecake that she bought at a grocery store. "
    "Paolo visited Beijing and ate a delicious croissant. "
)

#: group-commit linger used throughout (identical for every configuration)
SYNC_INTERVAL = 0.002


def _durable_service(root: str, shards: int, sync_interval: float) -> KokoService:
    return KokoService(
        shards=shards,
        storage_dir=root,
        checkpoint_policy=CheckpointPolicy.disabled(),
        annotation_workers=4,
        annotation_processes=True,
        sync_interval=sync_interval,
    )


def _run_writers(service: KokoService, writers: int, docs: int, prefix: str) -> float:
    """Ingest exactly *docs* documents across *writers* threads; returns seconds."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(writers)

    def work(thread_index: int) -> None:
        try:
            barrier.wait()
            # distribute the remainder so exactly `docs` are ingested
            share = docs // writers + (1 if thread_index < docs % writers else 0)
            for index in range(share):
                service.add_document(INGEST_TEXT, f"{prefix}-w{thread_index}-d{index}")
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(writers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def _measure(shards: int, writers: int, docs: int, sync_interval: float) -> dict:
    """One grid cell: docs/second plus the WAL group-commit counters."""
    with tempfile.TemporaryDirectory() as tmp:
        service = _durable_service(f"{tmp}/svc", shards, sync_interval)
        try:
            # Spin up the annotation pool hot: worker processes spawn on
            # demand (forkserver/spawn), so prime with *concurrent*
            # submits — as many in flight as the measured run will have —
            # then give the initializers time to finish importing before
            # the timed window starts.
            stats = service.stats
            _run_writers(service, writers, 2 * writers, "warmup")
            time.sleep(1.5)
            records0 = stats.wal_records_appended
            fsyncs0, synced0 = stats.wal_fsyncs, stats.wal_records_synced
            histogram0 = dict(stats.wal_batch_histogram)
            elapsed = _run_writers(service, writers, docs, "ingest")
            appended = stats.wal_records_appended - records0
            fsyncs = stats.wal_fsyncs - fsyncs0
            synced = stats.wal_records_synced - synced0
            # everything reported is a delta over the measured window, so
            # the warmup's small batches don't dilute the distribution
            histogram = {
                bucket: count - histogram0.get(bucket, 0)
                for bucket, count in sorted(stats.wal_batch_histogram.items())
                if count - histogram0.get(bucket, 0) > 0
            }
            return {
                "shards": shards,
                "writers": writers,
                "documents": docs,
                "docs_per_second": docs / max(elapsed, 1e-9),
                "wal_records": appended,
                "wal_fsyncs": fsyncs,
                "fsync_reduction": synced / max(fsyncs, 1),
                "mean_batch": synced / max(fsyncs, 1),
                "max_batch_bucket": max(histogram, default=0),
                "batch_histogram": histogram,
            }
        finally:
            service.close()


# ----------------------------------------------------------------------
# multi-writer ingest throughput (acceptance: ≥2× at 4 shards / 4 writers)
# ----------------------------------------------------------------------
def run_multi_writer_scaling(
    configurations: tuple[tuple[int, int], ...] = ((1, 1), (2, 2), (4, 2), (4, 4), (4, 8)),
    docs: int = 160,
    sync_interval: float = SYNC_INTERVAL,
) -> dict:
    """Ingest throughput per ``(shards, writers)`` cell vs the 1/1 baseline."""
    summary: dict = {"sync_interval": sync_interval, "cells": []}
    baseline: float | None = None
    for shards, writers in configurations:
        cell = _measure(shards, writers, docs, sync_interval)
        if baseline is None:
            baseline = cell["docs_per_second"]
        cell["speedup_vs_single_writer"] = cell["docs_per_second"] / max(baseline, 1e-9)
        summary["cells"].append(cell)
    return summary


# ----------------------------------------------------------------------
# group-commit fsync reduction (acceptance: ≥4× under concurrent load)
# ----------------------------------------------------------------------
def run_group_commit_reduction(
    writers: int = 8, docs: int = 160, sync_interval: float = 0.003
) -> dict:
    """Records per fsync under concurrent load (1.0 = no batching at all)."""
    cell = _measure(shards=4, writers=writers, docs=docs, sync_interval=sync_interval)
    cell["fsyncs_saved"] = cell["wal_records"] - cell["wal_fsyncs"]
    return cell


# ----------------------------------------------------------------------
# read latency stays flat while a multi-writer ingest storm runs
# ----------------------------------------------------------------------
def run_read_latency_under_ingest(
    shards: int = 4,
    writers: int = 4,
    initial_docs: int = 32,
    churn_docs: int = 96,
    sync_interval: float = SYNC_INTERVAL,
) -> dict:
    """Reader p50/p95 on an idle corpus vs during concurrent ingest.

    Readers execute compiled plans (never cache-served, so every read
    takes the per-shard read locks); the ingest storm runs the full
    staged pipeline including group-committed WAL appends.  Because
    annotation and fsync happen off-lock, the reader percentiles should
    barely move.
    """
    plans = [compile_query(text) for text in SCALEUP_QUERIES.values()]
    with tempfile.TemporaryDirectory() as tmp:
        service = _durable_service(f"{tmp}/svc", shards, sync_interval)
        try:
            for index in range(initial_docs):
                service.add_document(INGEST_TEXT, f"seed-{index}")

            def read_pass(passes: int) -> tuple[float, float]:
                latencies: list[float] = []
                for _ in range(passes):
                    for plan in plans:
                        started = time.perf_counter()
                        service.query(plan)
                        latencies.append(time.perf_counter() - started)
                latencies.sort()
                return (
                    latencies[len(latencies) // 2],
                    latencies[min(len(latencies) - 1, int(len(latencies) * 0.95))],
                )

            idle_p50, idle_p95 = read_pass(passes=6)

            stop = threading.Event()
            reader_latencies: list[float] = []
            reader_errors: list[BaseException] = []

            def reader() -> None:
                position = 0
                try:
                    while not stop.is_set():
                        started = time.perf_counter()
                        service.query(plans[position % len(plans)])
                        reader_latencies.append(time.perf_counter() - started)
                        position += 1
                except BaseException as exc:  # pragma: no cover
                    reader_errors.append(exc)

            reading = threading.Thread(target=reader)
            reading.start()
            try:
                _run_writers(service, writers, churn_docs, "churn")
            finally:
                stop.set()
                reading.join()
            if reader_errors:
                raise reader_errors[0]
            reader_latencies.sort()
            churn_p50 = reader_latencies[len(reader_latencies) // 2]
            churn_p95 = reader_latencies[
                min(len(reader_latencies) - 1, int(len(reader_latencies) * 0.95))
            ]
            return {
                "shards": shards,
                "writers": writers,
                "idle_read_p50_seconds": idle_p50,
                "idle_read_p95_seconds": idle_p95,
                "churn_read_p50_seconds": churn_p50,
                "churn_read_p95_seconds": churn_p95,
                "p95_ratio_churn_vs_idle": churn_p95 / max(idle_p95, 1e-9),
                "reads_during_churn": len(reader_latencies),
            }
        finally:
            service.close()


# ----------------------------------------------------------------------
# correctness: concurrent ingest is tuple-identical to serial ingest
# ----------------------------------------------------------------------
def run_serial_vs_concurrent_identity(
    docs: int = 24, shards: int = 4, writers: int = 4
) -> dict:
    """Pre-reserved sid ranges make 4-writer ingest == serial ingest."""
    pipeline = Pipeline()
    texts = [INGEST_TEXT for _ in range(docs)]
    plans = list(SCALEUP_QUERIES.values())

    with KokoService(shards=shards) as serial:
        for index, text in enumerate(texts):
            serial.add_document(text, f"doc{index}")
        expected = {
            q: [(t.doc_id, t.sid, t.values, t.scores) for t in serial.query(q)]
            for q in plans
        }

    with KokoService(shards=shards) as concurrent:
        bases = [
            concurrent.reserve_sids(len(pipeline.tokenizer.split_sentences(text)))
            for text in texts
        ]
        errors: list[BaseException] = []
        barrier = threading.Barrier(writers)

        def work(thread_index: int) -> None:
            try:
                barrier.wait()
                for position in range(docs - 1, -1, -1):  # reversed: order-free
                    if position % writers == thread_index:
                        concurrent.add_document(
                            texts[position], f"doc{position}", first_sid=bases[position]
                        )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        identical = all(
            [(t.doc_id, t.sid, t.values, t.scores) for t in concurrent.query(q)]
            == expected[q]
            for q in plans
        )
    return {"documents": docs, "writers": writers, "results_identical": identical}


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_multi_writer_ingest_scales(benchmark):
    """4 writers on 4 shards beat the single-writer baseline; fsyncs batch."""
    result = benchmark.pedantic(
        run_multi_writer_scaling,
        kwargs={"configurations": ((1, 1), (4, 4)), "docs": 64},
        iterations=1,
        rounds=1,
    )
    concurrent = result["cells"][-1]
    assert concurrent["speedup_vs_single_writer"] > 1.0
    assert concurrent["fsync_reduction"] > 1.0


def test_group_commit_reduces_fsyncs(benchmark):
    result = benchmark.pedantic(
        run_group_commit_reduction,
        kwargs={"writers": 8, "docs": 64},
        iterations=1,
        rounds=1,
    )
    assert result["fsync_reduction"] >= 2.0
    assert result["fsyncs_saved"] > 0


def test_reads_stay_live_during_ingest_storm(benchmark):
    result = benchmark.pedantic(
        run_read_latency_under_ingest,
        kwargs={"initial_docs": 12, "churn_docs": 32},
        iterations=1,
        rounds=1,
    )
    assert result["reads_during_churn"] > 0
    assert result["churn_read_p95_seconds"] > 0


def test_concurrent_ingest_identity(benchmark):
    result = benchmark.pedantic(
        run_serial_vs_concurrent_identity,
        kwargs={"docs": 12},
        iterations=1,
        rounds=1,
    )
    assert result["results_identical"]


if __name__ == "__main__":
    import json
    import sys

    smoke = "--smoke" in sys.argv
    if smoke:
        scaling = run_multi_writer_scaling(
            configurations=((1, 1), (4, 4)), docs=48
        )
        reduction = run_group_commit_reduction(writers=8, docs=64)
        isolation = {
            shards: run_read_latency_under_ingest(
                shards=shards, initial_docs=12, churn_docs=32
            )
            for shards in (1, 4)
        }
        identity = run_serial_vs_concurrent_identity(docs=12)
    else:
        scaling = run_multi_writer_scaling()
        reduction = run_group_commit_reduction()
        isolation = {
            shards: run_read_latency_under_ingest(shards=shards)
            for shards in (1, 4)
        }
        identity = run_serial_vs_concurrent_identity()
    # sharding headline: the same ingest storm degrades reader p95 far less
    # on a partitioned service (splices lock one shard, not the corpus)
    isolation["sharded_p95_improvement"] = isolation[1][
        "churn_read_p95_seconds"
    ] / max(isolation[4]["churn_read_p95_seconds"], 1e-9)
    print(
        json.dumps(
            {
                "smoke": smoke,
                "multi_writer_scaling": scaling,
                "group_commit_reduction": reduction,
                "read_latency_under_ingest": isolation,
                "serial_vs_concurrent_identity": identity,
            },
            indent=2,
        )
    )
