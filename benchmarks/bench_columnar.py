"""Columnar postings benchmarks: splice throughput, query-stage timings.

Two headline numbers for the columnar storage engine (flat numpy columns
behind the four KOKO indexes, see ``src/repro/indexing/columnar.py``):

* **splice throughput** — sentences indexed per second into a
  :class:`~repro.indexing.koko_index.KokoIndexSet`, object-backed versus
  columnar, over the pre-annotated HappyDB corpus (the paper's scale-up
  corpus; annotation cost is excluded — the generator runs the NLP
  pipeline up front, so the timed loop is pure index maintenance).  The
  columnar splice columnises each sentence once, memoises the hierarchy
  trie walks by tree shape, and flushes the whole batch as one columnar
  append per store; the object splice builds one :class:`Posting` per
  token and walks the tree per token.  The acceptance bar: **≥ 5×
  sentences/second** on the full run (smoke runs are too small to time
  meaningfully — ``bar_applicable`` stays honest).
* **query stage timings** — per-query LoadArticle and extract stage p50
  at 4 shards, columnar versus object-backed, through a full
  :class:`~repro.service.KokoService` (``columnar=True`` is the service
  default; the baseline passes ``columnar=False``).  Queries execute as
  compiled plans, which the service never serves from the result cache,
  so every pass runs the real stage pipeline.

Run under pytest-benchmark like the other ``bench_*`` modules, or
directly to print a JSON summary for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_columnar.py [--smoke]

``--smoke`` shrinks corpus sizes and pass counts so CI can exercise both
measurement paths in seconds (numbers then mean nothing — the ≥5× bar is
only checked on full runs).
"""

from __future__ import annotations

import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.indexing import KokoIndexSet
from repro.koko.engine import compile_query
from repro.nlp.types import Corpus
from repro.service import KokoService

QUERIES = list(SCALEUP_QUERIES.values())


def _rows(result):
    return [(t.doc_id, t.sid, t.values) for t in result]


# ----------------------------------------------------------------------
# splice throughput: object-backed vs columnar index maintenance
# ----------------------------------------------------------------------
def _time_build(corpus: Corpus, columnar: bool, repeats: int) -> dict:
    """Best-of-*repeats* wall time to index every sentence of *corpus*."""
    sentences = sum(1 for _ in corpus.all_sentences())
    tokens = sum(len(s) for _, s in corpus.all_sentences())
    best = float("inf")
    stats = None
    for _ in range(repeats):
        indexes = KokoIndexSet(columnar=columnar)
        started = time.perf_counter()
        indexes.build(corpus)
        best = min(best, time.perf_counter() - started)
        stats = indexes.statistics()
    return {
        "sentences": sentences,
        "tokens": tokens,
        "seconds": best,
        "sentences_per_second": sentences / max(best, 1e-9),
        "word_postings": stats.word_postings,
    }


def run_splice_throughput(corpus: Corpus, repeats: int = 3) -> dict:
    """Sentences/second through the full four-index splice, both backends.

    Also asserts both backends report identical posting counts — the
    cheap end-to-end sanity check that the speedup is not from dropping
    work.
    """
    object_backed = _time_build(corpus, columnar=False, repeats=repeats)
    columnar = _time_build(corpus, columnar=True, repeats=repeats)
    assert columnar["word_postings"] == object_backed["word_postings"]
    return {
        "repeats": repeats,
        "object": object_backed,
        "columnar": columnar,
        "splice_speedup": (
            columnar["sentences_per_second"]
            / max(object_backed["sentences_per_second"], 1e-9)
        ),
    }


# ----------------------------------------------------------------------
# query stage timings at 4 shards: columnar vs object service
# ----------------------------------------------------------------------
def _stage_percentiles(service: KokoService, plans, passes: int) -> dict:
    """p50 of the LoadArticle and extract stage seconds per query pass."""
    load_times: list[float] = []
    extract_times: list[float] = []
    totals: list[float] = []
    for _ in range(passes):
        for plan in plans:
            result = service.query(plan)
            load_times.append(result.timings.load_articles)
            extract_times.append(result.timings.extract)
            totals.append(result.timings.total)
    load_times.sort()
    extract_times.sort()
    totals.sort()
    return {
        "queries": len(totals),
        "load_articles_p50_seconds": load_times[len(load_times) // 2],
        "extract_p50_seconds": extract_times[len(extract_times) // 2],
        "total_p50_seconds": totals[len(totals) // 2],
    }


def run_query_stage_timings(
    corpus: Corpus, shards: int = 4, passes: int = 5
) -> dict:
    """LoadArticle/extract p50 per query, columnar vs object, same corpus.

    Both services ingest the same pre-annotated documents (no second
    annotation pass) and answer the same compiled plans; tuple identity
    across backends is verified query by query.
    """
    plans = [compile_query(text) for text in SCALEUP_QUERIES.values()]
    summary: dict = {"shards": shards, "passes": passes}
    expected: dict | None = None
    for label, columnar in (("object", False), ("columnar", True)):
        with KokoService(shards=shards, columnar=columnar) as service:
            for document in corpus.documents:
                service.add_annotated_document(document)
            rows = {i: _rows(service.query(plan)) for i, plan in enumerate(plans)}
            if expected is None:
                expected = rows
            else:
                assert rows == expected, "columnar results differ from object"
            summary[label] = _stage_percentiles(service, plans, passes)
    summary["load_articles_speedup"] = summary["object"][
        "load_articles_p50_seconds"
    ] / max(summary["columnar"]["load_articles_p50_seconds"], 1e-9)
    summary["extract_speedup"] = summary["object"]["extract_p50_seconds"] / max(
        summary["columnar"]["extract_p50_seconds"], 1e-9
    )
    summary["results_identical"] = True
    return summary


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_columnar_splice_faster(benchmark, happy_corpus):
    """Columnar splice beats the object splice on a pre-annotated corpus."""
    result = benchmark.pedantic(
        run_splice_throughput,
        kwargs={"corpus": happy_corpus, "repeats": 1},
        iterations=1,
        rounds=1,
    )
    assert result["splice_speedup"] > 1.0


def test_columnar_query_stages(benchmark, happy_corpus):
    """Columnar and object services answer tuple-identically at 4 shards."""
    result = benchmark.pedantic(
        run_query_stage_timings,
        kwargs={"corpus": happy_corpus, "shards": 4, "passes": 2},
        iterations=1,
        rounds=1,
    )
    assert result["results_identical"]
    assert result["columnar"]["queries"] > 0


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.happydb import generate_happydb_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        happy = generate_happydb_corpus(moments=60)
        splice = run_splice_throughput(happy, repeats=1)
        stages = run_query_stage_timings(happy, shards=4, passes=2)
    else:
        happy = generate_happydb_corpus(moments=600)
        splice = run_splice_throughput(happy, repeats=5)
        stages = run_query_stage_timings(happy, shards=4, passes=5)
    # timing a few dozen smoke sentences measures interpreter warm-up, not
    # the splice; the 5x bar only means something at full corpus scale
    splice["bar_applicable"] = not smoke
    summary = {"smoke": smoke, "splice_throughput": splice, "query_stages": stages}
    print(json.dumps(summary, indent=2))
    if not stages["results_identical"]:
        sys.exit("columnar service returned different tuples than object service")
    if splice["bar_applicable"] and splice["splice_speedup"] < 5.0:
        sys.exit(
            f"columnar splice speedup {splice['splice_speedup']:.2f}x "
            "is below the 5x bar"
        )
