"""Observability overhead: instrumented vs bare service throughput.

The observability layer is built to be free when idle: registry counters
are a dict update behind a lock the service already takes, tracing at the
default 1% sample rate allocates spans on one operation in a hundred, and
the slow-op log only fires past its thresholds.  This benchmark measures
that claim and **enforces it**: default-config observability (sampling at
1%, slow-op thresholds on) must add less than ``OVERHEAD_GATE_PCT``
overhead to query and ingest throughput versus a service with every knob
off (``trace_sample_rate=0``, thresholds ``None``).

Method: both configurations run the same work — result-cache-busting
query sweeps (per-round unique ``threshold_override`` values force full
pipeline executions) and pre-annotated-document ingests — interleaved
round-robin to decorrelate machine drift, taking the **minimum** round
time per configuration.  Exits non-zero when the query gate fails, so CI
catches an accidentally hot instrumentation path.

Run under pytest-benchmark like the other ``bench_*`` modules, or
standalone (``PYTHONPATH=src python
benchmarks/bench_observability_overhead.py [--smoke]``) to print the raw
measurements as JSON.
"""

from __future__ import annotations

import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus
from repro.service import KokoService

#: the enforced ceiling on default-config query-path overhead
OVERHEAD_GATE_PCT = 5.0

#: knobs-off baseline: no sampling, no slow-op thresholds
BARE = dict(trace_sample_rate=0.0, slow_query_ms=None, slow_ingest_ms=None)
#: the production defaults the gate is about (KokoService's own defaults)
INSTRUMENTED: dict = {}


def _service_over(corpus: Corpus, articles: int, config: dict) -> KokoService:
    service = KokoService(name=corpus.name, **config)
    for document in corpus.documents[:articles]:
        service.add_annotated_document(document)
    return service


def run_query_overhead(
    corpus: Corpus, articles: int = 40, rounds: int = 5, sweep: int = 8
) -> dict:
    """Min-of-*rounds* uncached query sweep time, bare vs instrumented.

    Each round evaluates every scale-up query under *sweep* distinct
    ``threshold_override`` values — distinct overrides are distinct
    result-cache keys, so every evaluation runs the full pipeline.
    """
    bare = _service_over(corpus, articles, BARE)
    instrumented = _service_over(corpus, articles, INSTRUMENTED)
    queries = list(SCALEUP_QUERIES.values())

    def sweep_once(service: KokoService, round_index: int) -> float:
        started = time.perf_counter()
        for step in range(sweep):
            # unique per round and step: never a result-cache hit
            override = 0.3 + (round_index * sweep + step) * 1e-9
            for query in queries:
                service.query(query, threshold_override=override)
        return time.perf_counter() - started

    for service in (bare, instrumented):  # warm plan caches + code paths
        sweep_once(service, -1)
    bare_best = min(sweep_once(bare, r) for r in range(rounds))
    instrumented_best = min(sweep_once(instrumented, r + rounds) for r in range(rounds))
    bare.close()
    instrumented.close()

    overhead_pct = (instrumented_best - bare_best) / bare_best * 100.0
    return {
        "articles": articles,
        "queries_per_round": len(queries) * sweep,
        "rounds": rounds,
        "bare_best_seconds": bare_best,
        "instrumented_best_seconds": instrumented_best,
        "overhead_pct": overhead_pct,
        "gate_pct": OVERHEAD_GATE_PCT,
        "gate_passed": overhead_pct < OVERHEAD_GATE_PCT,
    }


def run_ingest_overhead(corpus: Corpus, articles: int = 30, rounds: int = 5) -> dict:
    """Min-of-*rounds* ingest time for pre-annotated documents, per config.

    Annotation is skipped (``add_annotated_document``) so the measured
    path is exactly the part observability instruments: claim, splice,
    counters — the most overhead-sensitive slice of an ingest.
    """
    documents = corpus.documents[:articles]

    def ingest_once(config: dict) -> float:
        service = KokoService(name=corpus.name, **config)
        started = time.perf_counter()
        for document in documents:
            service.add_annotated_document(document)
        elapsed = time.perf_counter() - started
        service.close()
        return elapsed

    ingest_once(BARE)  # warm code paths
    bare_best = min(ingest_once(BARE) for _ in range(rounds))
    instrumented_best = min(ingest_once(INSTRUMENTED) for _ in range(rounds))
    overhead_pct = (instrumented_best - bare_best) / bare_best * 100.0
    return {
        "articles": articles,
        "rounds": rounds,
        "bare_best_seconds": bare_best,
        "instrumented_best_seconds": instrumented_best,
        "overhead_pct": overhead_pct,
    }


def test_observability_query_overhead_under_gate(benchmark, wiki_corpus):
    """Default-config observability stays under the query overhead gate."""
    result = benchmark.pedantic(
        run_query_overhead,
        kwargs={"corpus": wiki_corpus, "articles": 40, "rounds": 5},
        iterations=1,
        rounds=1,
    )
    assert result["gate_passed"], result


def test_observability_ingest_overhead_is_small(benchmark, wiki_corpus):
    """Ingest-path instrumentation stays cheap (report, sanity-bounded)."""
    result = benchmark.pedantic(
        run_ingest_overhead,
        kwargs={"corpus": wiki_corpus, "articles": 30, "rounds": 5},
        iterations=1,
        rounds=1,
    )
    # ingests are microseconds each without annotation: allow generous
    # noise, but a 2x regression means instrumentation went hot
    assert result["overhead_pct"] < 100.0, result


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=20)
        query = run_query_overhead(wiki, articles=16, rounds=3, sweep=4)
        ingest = run_ingest_overhead(wiki, articles=12, rounds=3)
    else:
        wiki = generate_wikipedia_corpus(articles=60)
        query = run_query_overhead(wiki)
        ingest = run_ingest_overhead(wiki)
    print(
        json.dumps(
            {"smoke": smoke, "query": query, "ingest": ingest}, indent=2
        )
    )
    if not query["gate_passed"]:
        print(
            f"FAIL: query overhead {query['overhead_pct']:.2f}% exceeds the "
            f"{OVERHEAD_GATE_PCT}% gate",
            file=sys.stderr,
        )
        raise SystemExit(1)
