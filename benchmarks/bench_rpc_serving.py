"""RPC serving benchmark: wire overhead, concurrency, and ingest modes.

Three measurements of the network front door
(:class:`~repro.rpc.server.RpcServer`):

* **concurrent query serving** — N blocking clients, each on its own
  connection, fire cache-busting queries at one served ``KokoService``;
  reported against the same thread pattern calling ``service.query``
  in-process, so the number that matters is the **wire overhead** the
  RPC tier adds (framing + pickling + one asyncio hop), not raw engine
  speed.  Aggregate throughput plus p50/p99 per-request latency, and
  the clients' own round-trip split (``rtt`` / ``server_ms`` from the
  response header / the ``wire`` remainder).
* **mixed read/write storm** — query clients measure read p50/p99 while
  ingest clients churn documents through the same server, the
  contention shape a single-node deployment actually serves.
* **ingest modes** — the same documents shipped three ways: per-document
  durable (`add_document`), bulk (`add_documents`, claim/commit and
  fsyncs amortized per batch) and pipelined (`wait_durable=False` + one
  ``flush`` barrier).  Reports docs/s and WAL fsyncs per document for
  each mode; the bulk and pipelined paths must not fsync per document.

Run under pytest-benchmark like the other ``bench_*`` modules, or
standalone (``PYTHONPATH=src python benchmarks/bench_rpc_serving.py
[--smoke]``) to print raw measurements as JSON.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.rpc import RpcClient, RpcServer
from repro.service import KokoService


def _percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of *values* (fraction in [0, 1])."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) + 1)) - 1))
    return ordered[index]


def _drive_clients(client_count: int, work) -> list[list[float]]:
    """Run ``work(client_index, latencies)`` on N threads behind a barrier."""
    latencies: list[list[float]] = [[] for _ in range(client_count)]
    barrier = threading.Barrier(client_count)
    errors: list[BaseException] = []

    def runner(index: int) -> None:
        try:
            barrier.wait()
            work(index, latencies[index])
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(index,))
        for index in range(client_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return latencies


def run_query_serving(
    corpus, articles: int = 40, clients: int = 4, requests_per_client: int = 40
) -> dict:
    """Concurrent RPC query throughput vs the in-process baseline."""
    queries = list(SCALEUP_QUERIES.values())
    service = KokoService(name=corpus.name, shards=4)
    counter = [0]
    lock = threading.Lock()

    def next_override() -> float:
        with lock:  # unique per request: never a result-cache hit
            counter[0] += 1
            return 0.3 + counter[0] * 1e-9

    try:
        for document in corpus.documents[:articles]:
            service.add_annotated_document(document)

        def measure(make_call) -> dict:
            def work(index: int, latencies: list[float]) -> None:
                call = make_call(index)
                for request_index in range(requests_per_client):
                    query = queries[request_index % len(queries)]
                    started = time.perf_counter()
                    call(query, next_override())
                    latencies.append(time.perf_counter() - started)

            started = time.perf_counter()
            latencies = _drive_clients(clients, work)
            elapsed = time.perf_counter() - started
            flat = [value for bucket in latencies for value in bucket]
            return {
                "requests": len(flat),
                "throughput_qps": len(flat) / elapsed,
                "p50_ms": 1000.0 * statistics.median(flat),
                "p99_ms": 1000.0 * _percentile(flat, 0.99),
            }

        def direct_call(index: int):
            return lambda query, override: service.query(
                query, threshold_override=override
            )

        direct = measure(direct_call)

        with RpcServer(service, max_workers=max(clients, 4)) as server:
            host, port = server.address
            connections = [RpcClient(host, port) for _ in range(clients)]
            try:
                rpc = measure(
                    lambda index: lambda query, override: connections[index].query(
                        query, threshold_override=override
                    )
                )
                # the clients' own split of each round trip: server-side
                # dispatch time (from the response's server_ms header) vs
                # everything else — framing, kernel, network, scheduling
                totals = [connection.stats() for connection in connections]
                requests = sum(s["requests"] for s in totals)
                timed = sum(s["timed"] for s in totals)
                rtt_total = sum(s["rtt_ms_total"] for s in totals)
                server_total = sum(s["server_ms_total"] for s in totals)
                rpc["rtt_ms_avg"] = round(rtt_total / requests, 3) if requests else None
                rpc["server_ms_avg"] = (
                    round(server_total / timed, 3) if timed else None
                )
                rpc["wire_ms_avg"] = (
                    round(max(rpc["rtt_ms_avg"] - rpc["server_ms_avg"], 0.0), 3)
                    if timed and requests
                    else None
                )
            finally:
                for connection in connections:
                    connection.close()
    finally:
        service.close()

    return {
        "articles": articles,
        "clients": clients,
        "direct": direct,
        "rpc": rpc,
        "wire_overhead_pct": (
            (rpc["p50_ms"] - direct["p50_ms"]) / direct["p50_ms"] * 100.0
            if direct["p50_ms"]
            else 0.0
        ),
    }


def run_mixed_storm(
    corpus,
    articles: int = 24,
    query_clients: int = 3,
    requests_per_client: int = 30,
    ingest_docs: int = 12,
) -> dict:
    """Read p50/p99 through RPC while ingest churns the same server."""
    queries = list(SCALEUP_QUERIES.values())
    texts = [
        f"The barista served a delicious espresso in shop {index}."
        for index in range(ingest_docs)
    ]
    service = KokoService(name=corpus.name, shards=4)
    try:
        for document in corpus.documents[:articles]:
            service.add_annotated_document(document)
        with RpcServer(service, max_workers=query_clients + 2) as server:
            host, port = server.address
            stop = threading.Event()
            writes = [0]

            def ingest_loop() -> None:
                writer = RpcClient(host, port, client_id="writer")
                try:
                    round_index = 0
                    while not stop.is_set():
                        suffix = f"-{round_index}"
                        writer.add_documents(
                            texts,
                            doc_ids=[f"storm{index}{suffix}" for index in range(len(texts))],
                            batch_size=4,
                        )
                        for index in range(len(texts)):
                            writer.remove_document(f"storm{index}{suffix}")
                        writes[0] += 2 * len(texts)
                        round_index += 1
                finally:
                    writer.close()

            writer_thread = threading.Thread(target=ingest_loop, daemon=True)
            writer_thread.start()
            counter = [0]
            lock = threading.Lock()

            def work(index: int, latencies: list[float]) -> None:
                client = RpcClient(host, port, client_id=f"reader-{index}")
                try:
                    for request_index in range(requests_per_client):
                        with lock:
                            counter[0] += 1
                            override = 0.3 + counter[0] * 1e-9
                        query = queries[request_index % len(queries)]
                        started = time.perf_counter()
                        client.query(query, threshold_override=override)
                        latencies.append(time.perf_counter() - started)
                finally:
                    client.close()

            started = time.perf_counter()
            latencies = _drive_clients(query_clients, work)
            elapsed = time.perf_counter() - started
            stop.set()
            writer_thread.join(timeout=60)
            flat = [value for bucket in latencies for value in bucket]
    finally:
        service.close()
    return {
        "articles": articles,
        "query_clients": query_clients,
        "reads": len(flat),
        "writes": writes[0],
        "read_qps": len(flat) / elapsed,
        "write_ops_per_s": writes[0] / elapsed,
        "read_p50_ms": 1000.0 * statistics.median(flat),
        "read_p99_ms": 1000.0 * _percentile(flat, 0.99),
    }


def run_ingest_modes(tmp_dir, docs: int = 24, batch_size: int = 8) -> dict:
    """docs/s and fsyncs/doc: per-doc durable vs bulk vs pipelined+flush."""
    texts = [
        f"Visitor {index} ate a delicious croissant in Paris today."
        for index in range(docs)
    ]
    modes = {}
    for mode in ("per_doc", "bulk", "pipelined"):
        service = KokoService(
            shards=2, storage_dir=f"{tmp_dir}/ingest-{mode}"
        )
        try:
            with RpcServer(service) as server:
                client = RpcClient(*server.address, client_id=mode)
                try:
                    stats0 = service.stats
                    fsyncs0 = stats0.wal_fsyncs
                    started = time.perf_counter()
                    if mode == "per_doc":
                        for index, text in enumerate(texts):
                            client.add_document(text, doc_id=f"doc{index}")
                    elif mode == "bulk":
                        client.add_documents(
                            texts,
                            doc_ids=[f"doc{index}" for index in range(docs)],
                            batch_size=batch_size,
                        )
                    else:
                        for index, text in enumerate(texts):
                            client.add_document(
                                text, doc_id=f"doc{index}", wait_durable=False
                            )
                        client.flush()
                    elapsed = time.perf_counter() - started
                    fsyncs = service.stats.wal_fsyncs - fsyncs0
                finally:
                    client.close()
            assert len(service) == docs
            modes[mode] = {
                "docs_per_s": docs / elapsed,
                "wal_fsyncs": fsyncs,
                "fsyncs_per_doc": fsyncs / docs,
            }
        finally:
            service.close()
    modes["docs"] = docs
    modes["batch_size"] = batch_size
    return modes


# ----------------------------------------------------------------------
# pytest-benchmark entries (qualitative-shape assertions)
# ----------------------------------------------------------------------
def test_rpc_query_serving_overhead(benchmark, wiki_corpus):
    """The wire serves concurrent clients; latency stays measurable."""
    result = benchmark.pedantic(
        run_query_serving,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 24,
            "clients": 3,
            "requests_per_client": 12,
        },
        iterations=1,
        rounds=1,
    )
    assert result["rpc"]["requests"] == result["direct"]["requests"]
    assert result["rpc"]["throughput_qps"] > 0
    assert result["rpc"]["p99_ms"] >= result["rpc"]["p50_ms"]
    # the client-side split: every response carried server_ms
    assert result["rpc"]["server_ms_avg"] > 0
    assert result["rpc"]["rtt_ms_avg"] >= result["rpc"]["server_ms_avg"]
    assert result["rpc"]["wire_ms_avg"] is not None


def test_rpc_mixed_storm_keeps_reads_flowing(benchmark, wiki_corpus):
    """Reads make progress while bulk ingest churns the same server."""
    result = benchmark.pedantic(
        run_mixed_storm,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 12,
            "query_clients": 2,
            "requests_per_client": 10,
            "ingest_docs": 6,
        },
        iterations=1,
        rounds=1,
    )
    assert result["reads"] == 20 and result["writes"] > 0
    assert result["read_p99_ms"] >= result["read_p50_ms"]


def test_rpc_ingest_modes_amortize_fsyncs(benchmark, tmp_path):
    """Bulk and pipelined ingest fsync (much) less than once per doc."""
    result = benchmark.pedantic(
        run_ingest_modes,
        kwargs={"tmp_dir": str(tmp_path), "docs": 12, "batch_size": 4},
        iterations=1,
        rounds=1,
    )
    assert result["per_doc"]["fsyncs_per_doc"] >= 0.99
    assert result["bulk"]["wal_fsyncs"] <= result["per_doc"]["wal_fsyncs"] / 2
    assert result["pipelined"]["wal_fsyncs"] <= result["per_doc"]["wal_fsyncs"] / 2


if __name__ == "__main__":
    import json
    import sys
    import tempfile

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=24)
        serving = run_query_serving(
            wiki, articles=16, clients=2, requests_per_client=8
        )
        storm = run_mixed_storm(
            wiki, articles=8, query_clients=2, requests_per_client=6, ingest_docs=4
        )
        with tempfile.TemporaryDirectory() as tmp_dir:
            ingest = run_ingest_modes(tmp_dir, docs=8, batch_size=4)
    else:
        wiki = generate_wikipedia_corpus(articles=80)
        serving = run_query_serving(wiki)
        storm = run_mixed_storm(wiki)
        with tempfile.TemporaryDirectory() as tmp_dir:
            ingest = run_ingest_modes(tmp_dir)
    print(
        json.dumps(
            {
                "smoke": smoke,
                "query_serving": serving,
                "mixed_storm": storm,
                "ingest_modes": ingest,
            },
            indent=2,
        )
    )
