"""Shard-scaling benchmarks for the partitioned KokoService.

Two effects of hash-partitioned execution are measured across shard
counts (1/2/4/8 by default):

* **query throughput** — uncached (compiled-plan) queries fan the stage
  pipeline out per shard, so more shards means more of the corpus is
  evaluated in parallel;
* **ingest-while-querying latency** — ingestion write-locks one shard
  only, so reader latency under a concurrent ingest stream should drop
  as shards are added (at N=1 every reader stalls behind every ingest).

Run under pytest-benchmark like the other ``bench_*`` modules, or
directly to print a JSON summary for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]

``--smoke`` shrinks corpus sizes and shard counts so CI can exercise the
script end-to-end in seconds.
"""

from __future__ import annotations

import threading
import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.koko.engine import compile_query
from repro.nlp.types import Corpus
from repro.service import KokoService


def _service_over(corpus: Corpus, articles: int, shards: int) -> KokoService:
    service = KokoService(name=corpus.name, shards=shards)
    for document in corpus.documents[:articles]:
        service.add_document(document.text, f"bench-{document.doc_id}")
    return service


def run_query_throughput(
    corpus: Corpus,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    articles: int = 40,
    repeats: int = 3,
) -> dict:
    """Uncached queries/second per shard count (compiled plans bypass caches)."""
    plans = [compile_query(text) for text in SCALEUP_QUERIES.values()]
    summary: dict = {"articles": articles, "queries": len(plans), "per_shards": {}}
    reference_rows: list | None = None
    for shards in shard_counts:
        service = _service_over(corpus, articles, shards)
        try:
            rows = [
                [(t.doc_id, t.sid, t.values) for t in service.query(plan)]
                for plan in plans
            ]
            if reference_rows is None:
                reference_rows = rows
            started = time.perf_counter()
            for _ in range(repeats):
                for plan in plans:
                    service.query(plan)
            elapsed = time.perf_counter() - started
            summary["per_shards"][shards] = {
                "seconds_per_pass": elapsed / repeats,
                "queries_per_second": repeats * len(plans) / max(elapsed, 1e-9),
                "results_identical": rows == reference_rows,
            }
        finally:
            service.close()
    base = summary["per_shards"][shard_counts[0]]["queries_per_second"]
    for shards, row in summary["per_shards"].items():
        row["speedup_vs_first"] = row["queries_per_second"] / max(base, 1e-9)
    return summary


def run_ingest_while_querying(
    corpus: Corpus,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    initial_articles: int = 30,
    query_threads: int = 3,
    duration_seconds: float = 1.5,
) -> dict:
    """Reader latency under a steady write churn, per shard count.

    A writer thread continuously adds and removes documents for
    ``duration_seconds`` while readers execute compiled plans (never
    cache-served), so every read takes the per-shard read locks and
    observes the write-side contention directly.  At N=1 each write
    stalls every reader; with more shards a write blocks only the readers'
    slice on one shard — the read p50/p95 is the sharding headline.
    """
    plans = [compile_query(text) for text in SCALEUP_QUERIES.values()]
    churn_texts = [d.text for d in corpus.documents[initial_articles:]] or [
        d.text for d in corpus.documents[:initial_articles]
    ]
    summary: dict = {
        "initial_articles": initial_articles,
        "query_threads": query_threads,
        "duration_seconds": duration_seconds,
        "per_shards": {},
    }
    for shards in shard_counts:
        service = _service_over(corpus, initial_articles, shards)
        try:
            stop = threading.Event()
            reader_errors: list[Exception] = []

            def reader(offset: int) -> None:
                position = offset
                while not stop.is_set():
                    try:
                        service.query(plans[position % len(plans)])
                    except Exception as exc:  # pragma: no cover - regression guard
                        reader_errors.append(exc)
                        return
                    position += 1

            threads = [
                threading.Thread(target=reader, args=(offset,))
                for offset in range(query_threads)
            ]
            for thread in threads:
                thread.start()
            ingest_latencies = []
            writes = 0
            try:
                deadline = time.monotonic() + duration_seconds
                while time.monotonic() < deadline:
                    text = churn_texts[writes % len(churn_texts)]
                    doc_id = f"churn-{writes}"
                    started = time.perf_counter()
                    service.add_document(text, doc_id)
                    ingest_latencies.append(time.perf_counter() - started)
                    service.remove_document(doc_id)
                    writes += 1
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            if reader_errors:
                raise reader_errors[0]
            ingest_latencies.sort()
            summary["per_shards"][shards] = {
                "writes": writes,
                "ingest_p50_seconds": ingest_latencies[len(ingest_latencies) // 2],
                "ingest_max_seconds": ingest_latencies[-1],
                "read_p50_seconds": service.stats.p50_query_seconds,
                "read_p95_seconds": service.stats.p95_query_seconds,
                "queries_served_during_churn": service.stats.queries_served,
            }
        finally:
            service.close()
    return summary


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_shard_scaling_query_throughput(benchmark, wiki_corpus):
    """Every shard count returns identical tuples; throughput stays sane."""
    result = benchmark.pedantic(
        run_query_throughput,
        kwargs={
            "corpus": wiki_corpus,
            "shard_counts": (1, 2, 4),
            "articles": 30,
            "repeats": 2,
        },
        iterations=1,
        rounds=1,
    )
    for shards, row in result["per_shards"].items():
        assert row["results_identical"], f"shard count {shards} changed results"
        assert row["queries_per_second"] > 0


def test_shard_scaling_ingest_while_querying(benchmark, wiki_corpus):
    """Sharded ingestion stays live under concurrent reads."""
    result = benchmark.pedantic(
        run_ingest_while_querying,
        kwargs={
            "corpus": wiki_corpus,
            "shard_counts": (1, 4),
            "initial_articles": 20,
            "duration_seconds": 0.75,
        },
        iterations=1,
        rounds=1,
    )
    for row in result["per_shards"].values():
        assert row["writes"] > 0
        assert row["queries_served_during_churn"] > 0
        assert row["read_p95_seconds"] >= row["read_p50_seconds"]


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=24)
        throughput = run_query_throughput(
            wiki, shard_counts=(1, 2), articles=16, repeats=1
        )
        ingest = run_ingest_while_querying(
            wiki, shard_counts=(1, 2), initial_articles=12, duration_seconds=0.5
        )
    else:
        wiki = generate_wikipedia_corpus(articles=60)
        throughput = run_query_throughput(wiki)
        ingest = run_ingest_while_querying(wiki)
    print(
        json.dumps(
            {
                "smoke": smoke,
                "query_throughput": throughput,
                "ingest_while_querying": ingest,
            },
            indent=2,
        )
    )
