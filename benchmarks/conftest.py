"""Shared fixtures for the benchmark harness (pytest-benchmark).

Each ``bench_*`` module regenerates one table or figure of the paper at a
laptop-friendly scale; the benchmark fixture times the headline operation
while the module's assertions check the qualitative shape the paper reports.
"""

from __future__ import annotations

import pytest

from repro.corpora.cafe_blogs import BARISTAMAG, generate_cafe_corpus
from repro.corpora.happydb import generate_happydb_corpus
from repro.corpora.wikipedia import generate_wikipedia_corpus
from repro.koko.engine import KokoEngine
from repro.nlp.pipeline import Pipeline


@pytest.fixture(scope="session")
def pipeline() -> Pipeline:
    return Pipeline()


@pytest.fixture(scope="session")
def happy_corpus(pipeline):
    return generate_happydb_corpus(moments=150, pipeline=pipeline)


@pytest.fixture(scope="session")
def wiki_corpus(pipeline):
    return generate_wikipedia_corpus(articles=100, pipeline=pipeline)


@pytest.fixture(scope="session")
def wiki_engine(wiki_corpus):
    return KokoEngine(wiki_corpus)


@pytest.fixture(scope="session")
def cafe_corpus(pipeline):
    return generate_cafe_corpus(BARISTAMAG, pipeline=pipeline, articles=20)


@pytest.fixture(scope="session")
def cafe_engine(cafe_corpus):
    return KokoEngine(cafe_corpus)
