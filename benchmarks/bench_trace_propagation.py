"""Trace propagation overhead: context-carrying vs plain queries.

Cross-process tracing rides a ``TraceContext`` header through RPC and
WAL metadata.  The design claim is that *propagation itself is free
when sampling is off*: a query arriving with an unsampled context pays
only an attribute check and a kwarg pass-through — no span allocation,
no trace-store write.  This benchmark measures that claim and
**enforces it**: queries carrying ``TraceContext(sampled=False)`` must
stay within ``PROPAGATION_GATE_PCT`` of plain queries on the same
service.  The fully-sampled cost (``sampled=True``, every query records
a fragment) is reported informationally — that path is priced per the
sampling rate, not per request.

Method mirrors ``bench_observability_overhead``: result-cache-busting
sweeps (per-round unique ``threshold_override`` values force full
pipeline executions) interleaved round-robin on one knobs-off service,
taking the **minimum** round time per variant.  Exits non-zero when the
gate fails, so CI catches an accidentally hot propagation path.

Run under pytest-benchmark like the other ``bench_*`` modules, or
standalone (``PYTHONPATH=src python
benchmarks/bench_trace_propagation.py [--smoke]``) to print the raw
measurements as JSON.
"""

from __future__ import annotations

import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus
from repro.observability import TraceContext, new_span_id, new_trace_id
from repro.service import KokoService

#: the enforced ceiling on unsampled-context query overhead
PROPAGATION_GATE_PCT = 2.0

#: knobs-off service: any cost measured here is propagation, not sampling
BARE = dict(trace_sample_rate=0.0, slow_query_ms=None, slow_ingest_ms=None)


def run_propagation_overhead(
    corpus: Corpus, articles: int = 40, rounds: int = 5, sweep: int = 8
) -> dict:
    """Min-of-*rounds* sweep time: plain vs unsampled-context vs sampled.

    All three variants run against one service, interleaved per round,
    so cache state and machine drift hit them equally.  Each round's
    ``threshold_override`` values are globally unique — never a
    result-cache hit, every query runs the full pipeline.
    """
    service = KokoService(name=corpus.name, **BARE)
    for document in corpus.documents[:articles]:
        service.add_annotated_document(document)
    queries = list(SCALEUP_QUERIES.values())
    counter = [0]

    def next_override() -> float:
        counter[0] += 1
        return 0.3 + counter[0] * 1e-9

    def sweep_plain() -> float:
        started = time.perf_counter()
        for _ in range(sweep):
            for query in queries:
                service.query(query, threshold_override=next_override())
        return time.perf_counter() - started

    def sweep_with_context(sampled: bool) -> float:
        started = time.perf_counter()
        for _ in range(sweep):
            for query in queries:
                # a fresh header per request, exactly like the RPC path
                context = TraceContext(
                    trace_id=new_trace_id(),
                    span_id=new_span_id(),
                    sampled=sampled,
                )
                service.query(
                    query,
                    threshold_override=next_override(),
                    trace_context=context,
                )
        return time.perf_counter() - started

    try:
        # warm plan caches and every code path once
        sweep_plain()
        sweep_with_context(False)
        sweep_with_context(True)
        plain_times, unsampled_times, sampled_times = [], [], []
        for _ in range(rounds):
            plain_times.append(sweep_plain())
            unsampled_times.append(sweep_with_context(False))
            sampled_times.append(sweep_with_context(True))
    finally:
        service.close()

    plain_best = min(plain_times)
    unsampled_best = min(unsampled_times)
    sampled_best = min(sampled_times)
    overhead_pct = (unsampled_best - plain_best) / plain_best * 100.0
    return {
        "articles": articles,
        "queries_per_round": len(queries) * sweep,
        "rounds": rounds,
        "plain_best_seconds": plain_best,
        "unsampled_best_seconds": unsampled_best,
        "sampled_best_seconds": sampled_best,
        "overhead_pct": overhead_pct,
        "sampled_overhead_pct": (sampled_best - plain_best) / plain_best * 100.0,
        "gate_pct": PROPAGATION_GATE_PCT,
        "gate_passed": overhead_pct < PROPAGATION_GATE_PCT,
    }


def test_unsampled_propagation_stays_under_the_gate(benchmark, wiki_corpus):
    """Carrying an unsampled TraceContext must cost (almost) nothing."""
    result = benchmark.pedantic(
        run_propagation_overhead,
        kwargs={"corpus": wiki_corpus, "articles": 40, "rounds": 5},
        iterations=1,
        rounds=1,
    )
    assert result["gate_passed"], result


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=20)
        result = run_propagation_overhead(wiki, articles=16, rounds=3, sweep=4)
    else:
        wiki = generate_wikipedia_corpus(articles=60)
        result = run_propagation_overhead(wiki)
    print(json.dumps({"smoke": smoke, "propagation": result}, indent=2))
    if not result["gate_passed"]:
        print(
            f"FAIL: unsampled propagation overhead "
            f"{result['overhead_pct']:.2f}% exceeds the "
            f"{PROPAGATION_GATE_PCT}% gate",
            file=sys.stderr,
        )
        raise SystemExit(1)
