"""Telemetry-plane overhead: what 1 Hz /metrics scraping costs query p50.

The :class:`~repro.observability.exposition.TelemetryServer` renders the
whole registry on every ``GET /metrics``, on its own thread, while the
service keeps serving.  The claim this benchmark enforces: a scraper
polling ``/metrics`` at 1 Hz during mixed load (cache-busting query
sweeps with pre-annotated ingest churn in the background) adds less than
``SCRAPE_GATE_PCT`` to the query **p50**.

A 1 Hz effect is far below the run-to-run noise floor of a shared
machine, so the measurement is *amplified*: the scraper polls
back-to-back (hundreds of Hz), which produces a large, stable p50 shift,
and the observed overhead is scaled down by the achieved scrape rate to
the 1 Hz figure the gate is about.  Rounds pair an unscraped and a
saturated-scrape sweep back-to-back (order alternating) on the **same**
service, and the amplified overhead is the median of the per-round
paired differences — both choices cancel machine drift.  Exits non-zero
when the gate fails so CI catches a telemetry plane that has started
contending with the serving path.

Run under pytest-benchmark like the other ``bench_*`` modules, or
standalone (``PYTHONPATH=src python
benchmarks/bench_telemetry_overhead.py [--smoke]``) to print the raw
measurements as JSON.
"""

from __future__ import annotations

import statistics
import threading
import time

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus, Document, Sentence
from repro.observability import TelemetryServer, scrape
from repro.service import KokoService

#: the enforced ceiling on 1 Hz scraping's query-p50 overhead
SCRAPE_GATE_PCT = 1.0

#: the scrape rate the gate's claim is stated at
CLAIMED_SCRAPE_HZ = 1.0


def _resid(template: Document, first_sid: int, doc_id: str) -> Document:
    """A copy of *template* with fresh sentence ids (re-ingestable)."""
    sentences = [
        Sentence(first_sid + offset, sentence.tokens, sentence.entities, sentence.text)
        for offset, sentence in enumerate(template.sentences)
    ]
    return Document(doc_id, sentences, template.text)


class _IngestChurn:
    """Background add/remove loop of pre-annotated documents.

    Annotation is done once up front (``_resid`` only rebuilds sentence
    objects), so the churn exercises exactly the instrumented write path
    — claim, WAL, splice, heat — without NLP cost drowning the signal.
    """

    def __init__(self, service: KokoService, documents) -> None:
        self._service = service
        self._documents = documents
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.operations = 0

    def _run(self) -> None:
        index = 0
        while not self._stop.is_set():
            doc_id = f"churn-{index}"
            template = self._documents[index % len(self._documents)]
            document = _resid(template, self._service.next_sid(), doc_id)
            self._service.add_annotated_document(document)
            self._service.remove_document(doc_id)
            self.operations += 2
            index += 1
            time.sleep(0.02)  # churn, not saturation

    def __enter__(self) -> "_IngestChurn":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


class _SaturatedScraper:
    """Scrapes ``/metrics`` back-to-back while enabled (the amplifier)."""

    def __init__(self, address: tuple[str, int]) -> None:
        self._address = address
        self.enabled = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.scrapes = 0
        self.busy_seconds = 0.0

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self.enabled.is_set():
                time.sleep(0.002)
                continue
            started = time.perf_counter()
            status, body = scrape(*self._address, "/metrics")
            assert status == 200 and body
            self.busy_seconds += time.perf_counter() - started
            self.scrapes += 1

    def __enter__(self) -> "_SaturatedScraper":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=30)


def run_scrape_overhead(
    corpus: Corpus, articles: int = 40, rounds: int = 24, sweep: int = 4
) -> dict:
    """Amplified scraped-vs-unscraped query p50, scaled to 1 Hz.

    Each round measures the median single-query time over one
    cache-busting sweep without scraping and one under saturated
    scraping, back-to-back in alternating order, with pre-annotated
    ingest churn running throughout.  The median per-round difference is
    the amplified overhead; dividing by the achieved scrape rate gives
    the overhead one scrape per second would add.
    """
    queries = list(SCALEUP_QUERIES.values())
    churn_docs = corpus.documents[articles : articles + 4] or corpus.documents[:2]
    service = KokoService(name=corpus.name)
    for document in corpus.documents[:articles]:
        service.add_annotated_document(document)

    counter = [0]

    def sweep_p50() -> float:
        latencies = []
        for _ in range(sweep):
            counter[0] += 1  # unique override: never a result-cache hit
            override = 0.3 + counter[0] * 1e-9
            for query in queries:
                started = time.perf_counter()
                service.query(query, threshold_override=override)
                latencies.append(time.perf_counter() - started)
        return statistics.median(latencies)

    diffs_pct: list[float] = []
    scraped_walltime = 0.0
    try:
        with TelemetryServer(service) as telemetry:
            with _IngestChurn(service, churn_docs):
                with _SaturatedScraper(telemetry.address) as scraper:
                    sweep_p50()  # warm plan caches + code paths
                    for round_index in range(rounds):

                        def scraped_p50() -> float:
                            nonlocal scraped_walltime
                            scraper.enabled.set()
                            started = time.perf_counter()
                            p50 = sweep_p50()
                            scraped_walltime += time.perf_counter() - started
                            scraper.enabled.clear()
                            return p50

                        if round_index % 2 == 0:
                            quiet = sweep_p50()
                            scraped = scraped_p50()
                        else:
                            scraped = scraped_p50()
                            quiet = sweep_p50()
                        diffs_pct.append((scraped - quiet) / quiet * 100.0)
                    scrapes = scraper.scrapes
                    scrape_seconds = scraper.busy_seconds
    finally:
        service.close()

    amplified_pct = statistics.median(diffs_pct)
    achieved_hz = scrapes / scraped_walltime if scraped_walltime else 0.0
    overhead_pct = (
        amplified_pct * CLAIMED_SCRAPE_HZ / achieved_hz if achieved_hz else 0.0
    )
    return {
        "articles": articles,
        "rounds": rounds,
        "queries_per_sweep": len(queries) * sweep,
        "scrapes": scrapes,
        "achieved_scrape_hz": achieved_hz,
        "mean_scrape_ms": 1000.0 * scrape_seconds / scrapes if scrapes else 0.0,
        "amplified_overhead_pct": amplified_pct,
        "overhead_pct": overhead_pct,
        "gate_pct": SCRAPE_GATE_PCT,
        "gate_passed": overhead_pct < SCRAPE_GATE_PCT,
    }


def test_scraping_overhead_under_gate(benchmark, wiki_corpus):
    """1 Hz /metrics scraping stays under the query-p50 overhead gate."""
    result = benchmark.pedantic(
        run_scrape_overhead,
        kwargs={"corpus": wiki_corpus, "articles": 40, "rounds": 16},
        iterations=1,
        rounds=1,
    )
    assert result["gate_passed"], result


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=24)
        result = run_scrape_overhead(wiki, articles=16, rounds=12)
    else:
        wiki = generate_wikipedia_corpus(articles=60)
        result = run_scrape_overhead(wiki)
    print(json.dumps({"smoke": smoke, "scrape": result}, indent=2))
    if not result["gate_passed"]:
        print(
            f"FAIL: 1 Hz scrape overhead {result['overhead_pct']:.3f}% on query "
            f"p50 exceeds the {SCRAPE_GATE_PCT}% gate",
            file=sys.stderr,
        )
        raise SystemExit(1)
