"""Replication benchmarks: read scaling across replicas, follower catch-up.

Two headline numbers for the replication subsystem:

* **read throughput scaling** — aggregate queries/second under a
  concurrent ingest storm, served by the primary alone versus by the
  primary plus N TCP-shipped replicas, each replica living in its **own
  process** (its own interpreter and core — the pure-Python execution
  engine is GIL-bound, so in-process replicas cannot scale reads; the
  process-per-replica layout is exactly how a real deployment runs).
  The acceptance bar: ≥ 2× aggregate read throughput at 3 replicas —
  checked when the machine has more cores than replicas (parallel
  speedup cannot physically exist on fewer; the JSON reports
  ``cpu_cores`` and ``bar_applicable`` so the trajectory stays honest).
* **follower catch-up** — how long a freshly restarted follower takes to
  bootstrap from the primary's latest snapshot and tail the WAL to the
  live end, measured immediately after restart and again after the
  primary ingested more documents.

Run under pytest-benchmark like the other ``bench_*`` modules (a
threads-mode smoke of the measurement paths), or directly to print a
JSON summary for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_replication.py [--smoke]

``--smoke`` shrinks corpus sizes, replica counts and durations so CI can
exercise the full multi-process path in seconds (numbers then mean
nothing — the ≥2× bar is only checked on full runs).
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus
from repro.replication import InProcessTransport, LogShipper, ReplicaService, ReplicaSet
from repro.service import KokoService

QUERIES = list(SCALEUP_QUERIES.values())


def _rows(result):
    return [(t.doc_id, t.sid, t.values) for t in result]


# ----------------------------------------------------------------------
# workload helpers
# ----------------------------------------------------------------------
class IngestStorm:
    """A background writer hammering the primary at a fixed cadence."""

    def __init__(self, service, texts: list[str], interval: float) -> None:
        self._service = service
        self._texts = texts
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.ingested = 0

    def _run(self) -> None:
        index = 0
        while not self._stop.is_set() and index < len(self._texts):
            self._service.add_document(self._texts[index], f"storm-{id(self)}-{index}")
            self.ingested += 1
            index += 1
            self._stop.wait(self._interval)

    def __enter__(self) -> "IngestStorm":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _read_loop(query_fn, duration: float) -> int:
    """Run rotating queries against *query_fn* for *duration* seconds."""
    deadline = time.perf_counter() + duration
    count = 0
    while time.perf_counter() < deadline:
        query_fn(QUERIES[count % len(QUERIES)])
        count += 1
    return count


def _replica_reader_main(host, port, duration, ready, start, results, index):
    """Child-process body: bootstrap a TCP replica, then read at full tilt."""
    from repro.replication import ReplicaService, connect_tcp

    replica = ReplicaService(connect_tcp(host, port), name=f"proc-replica-{index}")
    replica.wait_caught_up(timeout=60.0)
    ready.set()
    start.wait()
    count = _read_loop(replica.query, duration)
    results.put((index, count, replica.records_applied))
    replica.close()


# ----------------------------------------------------------------------
# read throughput scaling
# ----------------------------------------------------------------------
def run_read_scaling(
    corpus: Corpus,
    articles: int = 30,
    shards: int = 2,
    replicas: int = 3,
    readers: int = 4,
    duration: float = 6.0,
    storm_interval: float = 0.05,
    use_processes: bool = True,
    storage_dir: str | None = None,
) -> dict:
    """Aggregate read throughput: primary-only vs primary + N replicas.

    Both phases run the same ingest storm and the same total number of
    readers; the replicated phase moves ``replicas`` of those readers
    into their own processes, each querying its own TCP-shipped replica.
    ``use_processes=False`` degrades the replicas to in-process threads —
    useful to exercise the measurement path under pytest, meaningless as
    a scaling number (one GIL).
    """
    texts = [document.text for document in corpus.documents]
    seed, storm_pool = texts[:articles], texts[articles:]
    half = len(storm_pool) // 2
    root = Path(storage_dir) if storage_dir else Path(tempfile.mkdtemp(prefix="koko-repl-"))
    try:
        primary = KokoService(shards=shards, storage_dir=str(root / "svc"))
        for index, text in enumerate(seed):
            primary.add_document(text, f"seed-{index}")
        primary.checkpoint()

        # -- baseline: every reader hits the primary
        with IngestStorm(primary, storm_pool[:half], storm_interval):
            counts: list[int] = []
            workers = [
                threading.Thread(
                    target=lambda: counts.append(_read_loop(primary.query, duration))
                )
                for _ in range(readers)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        baseline_total = sum(counts)

        # -- replicated: `replicas` readers move to their own replicas
        shipper = LogShipper(primary)
        primary_readers = max(readers - replicas, 1)
        replica_counts: list[int] = []
        applied: list[int] = []
        if use_processes:
            host, port = shipper.listen()
            context = multiprocessing.get_context("spawn")
            ready = [context.Event() for _ in range(replicas)]
            start = context.Event()
            results = context.Queue()
            children = [
                context.Process(
                    target=_replica_reader_main,
                    args=(host, port, duration, ready[i], start, results, i),
                    daemon=True,
                )
                for i in range(replicas)
            ]
            for child in children:
                child.start()
            for event in ready:
                event.wait(timeout=120.0)
            with IngestStorm(primary, storm_pool[half:], storm_interval):
                start.set()
                primary_counts: list[int] = []
                workers = [
                    threading.Thread(
                        target=lambda: primary_counts.append(
                            _read_loop(primary.query, duration)
                        )
                    )
                    for _ in range(primary_readers)
                ]
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
            for _ in children:
                _, count, records = results.get(timeout=120.0)
                replica_counts.append(count)
                applied.append(records)
            for child in children:
                child.join(timeout=30.0)
        else:
            replica_handles = []
            for index in range(replicas):
                primary_end, replica_end = InProcessTransport.pair()
                shipper.serve(primary_end)
                replica_handles.append(
                    ReplicaService(replica_end, name=f"thread-replica-{index}")
                )
            for handle in replica_handles:
                handle.wait_caught_up(timeout=60.0)
            with IngestStorm(primary, storm_pool[half:], storm_interval):
                primary_counts = []
                threads = [
                    threading.Thread(
                        target=lambda h=handle: replica_counts.append(
                            _read_loop(h.query, duration)
                        )
                    )
                    for handle in replica_handles
                ] + [
                    threading.Thread(
                        target=lambda: primary_counts.append(
                            _read_loop(primary.query, duration)
                        )
                    )
                    for _ in range(primary_readers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            for handle in replica_handles:
                applied.append(handle.records_applied)
                handle.close()
        replicated_total = sum(replica_counts) + sum(primary_counts)
        shipper.close()
        primary.close()
        return {
            "articles": articles,
            "shards": shards,
            "replicas": replicas,
            "readers": readers,
            "duration_seconds": duration,
            "process_replicas": use_processes,
            "baseline_queries": baseline_total,
            "baseline_qps": baseline_total / duration,
            "replicated_queries": replicated_total,
            "replicated_qps": replicated_total / duration,
            "per_replica_queries": replica_counts,
            "primary_queries_during_replicated": sum(primary_counts),
            "replica_records_applied": applied,
            "read_scaling": replicated_total / max(baseline_total, 1),
        }
    finally:
        if storage_dir is None:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# follower catch-up after restart
# ----------------------------------------------------------------------
def run_follower_catchup(
    corpus: Corpus,
    articles: int = 24,
    shards: int = 2,
    extra_articles: int = 12,
    storage_dir: str | None = None,
) -> dict:
    """Catch-up time: bootstrap + tail to the live end, before and after a
    follower restart with new primary writes in between.

    Also verifies the restarted follower is tuple-identical to the
    primary — the replication acceptance property.
    """
    texts = [document.text for document in corpus.documents]
    root = Path(storage_dir) if storage_dir else Path(tempfile.mkdtemp(prefix="koko-repl-"))
    try:
        primary = KokoService(shards=shards, storage_dir=str(root / "svc"))
        for index in range(articles):
            primary.add_document(texts[index], f"seed-{index}")
        primary.checkpoint()
        shipper = LogShipper(primary)

        def attach() -> tuple[ReplicaService, float]:
            primary_end, replica_end = InProcessTransport.pair()
            shipper.serve(primary_end)
            started = time.perf_counter()
            replica = ReplicaService(replica_end)
            caught = replica.wait_caught_up(primary.wal_position(), timeout=120.0)
            seconds = time.perf_counter() - started
            assert caught, replica.replication_stats()
            return replica, seconds

        first, first_seconds = attach()
        first.close()  # the follower "restarts" ...

        # ... while the primary keeps ingesting (half folded into a new
        # checkpoint, half left in the WAL tail)
        for index in range(extra_articles):
            primary.add_document(texts[articles + index], f"extra-{index}")
            if index == extra_articles // 2:
                primary.checkpoint()

        second, second_seconds = attach()
        identical = all(
            _rows(second.query(query)) == _rows(primary.query(query))
            for query in QUERIES
        )
        replayed = second.records_applied
        second.close()
        shipper.close()
        primary.close()
        return {
            "articles": articles,
            "extra_articles": extra_articles,
            "shards": shards,
            "initial_catchup_seconds": first_seconds,
            "restart_catchup_seconds": second_seconds,
            "restart_records_tailed": replayed,
            "results_identical": identical,
        }
    finally:
        if storage_dir is None:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (threads-mode smoke of the paths)
# ----------------------------------------------------------------------
def test_replication_read_scaling_paths(benchmark, wiki_corpus, tmp_path):
    """Exercise the scaling measurement end to end (threads mode: the
    numbers are GIL-bound; the ≥2× bar applies to full process runs)."""
    result = benchmark.pedantic(
        run_read_scaling,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 10,
            "shards": 2,
            "replicas": 2,
            "readers": 2,
            "duration": 1.0,
            "use_processes": False,
            "storage_dir": str(tmp_path),
        },
        iterations=1,
        rounds=1,
    )
    assert result["baseline_queries"] > 0
    assert result["replicated_queries"] > 0
    assert sum(result["per_replica_queries"]) > 0
    assert all(records > 0 for records in result["replica_records_applied"])


def test_replication_follower_catchup(benchmark, wiki_corpus, tmp_path):
    """A restarted follower catches up and answers tuple-identically."""
    result = benchmark.pedantic(
        run_follower_catchup,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 10,
            "shards": 2,
            "extra_articles": 6,
            "storage_dir": str(tmp_path),
        },
        iterations=1,
        rounds=1,
    )
    assert result["results_identical"]
    assert result["restart_catchup_seconds"] > 0
    assert result["restart_records_tailed"] <= 6  # snapshot did the bulk


def test_router_overhead_is_negligible(benchmark, wiki_corpus, tmp_path):
    """Routing through a ReplicaSet costs ~a dict lookup per query."""

    def measure() -> dict:
        primary = KokoService(shards=2, storage_dir=str(tmp_path / "svc"))
        for index in range(8):
            primary.add_document(wiki_corpus.documents[index].text, f"doc{index}")
        shipper = LogShipper(primary)
        primary_end, replica_end = InProcessTransport.pair()
        shipper.serve(primary_end)
        replica = ReplicaService(replica_end)
        replica.wait_caught_up(primary.wal_position())
        router = ReplicaSet(primary, [replica])
        direct = _read_loop(primary.query, 0.5)
        routed = _read_loop(router.query, 0.5)
        replica.close()
        shipper.close()
        primary.close()
        return {"direct": direct, "routed": routed}

    result = benchmark.pedantic(measure, iterations=1, rounds=1)
    assert result["routed"] > 0 and result["direct"] > 0


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    import os

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=30)
        scaling = run_read_scaling(
            wiki, articles=8, shards=2, replicas=1, readers=2, duration=1.5
        )
        catchup = run_follower_catchup(wiki, articles=8, shards=2, extra_articles=4)
    else:
        wiki = generate_wikipedia_corpus(articles=120)
        scaling = run_read_scaling(
            wiki, articles=30, shards=2, replicas=3, readers=4, duration=6.0
        )
        catchup = run_follower_catchup(wiki, articles=30, shards=2, extra_articles=12)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    # parallel read speedup needs a core per busy actor: the primary plus
    # each process replica.  On fewer cores every process timeshares one
    # CPU and the ratio measures scheduling overhead, not replication.
    scaling["cpu_cores"] = cores
    scaling["bar_applicable"] = not smoke and cores > scaling["replicas"]
    summary = {"smoke": smoke, "read_scaling": scaling, "follower_catchup": catchup}
    print(json.dumps(summary, indent=2))
    if not catchup["results_identical"]:
        sys.exit("restarted follower returned different tuples")
    # the 2x bar needs real per-process parallelism and an idle machine;
    # smoke mode only proves the paths work end to end
    if scaling["bar_applicable"] and scaling["read_scaling"] < 2.0:
        sys.exit(
            f"read scaling {scaling['read_scaling']:.2f}x at "
            f"{scaling['replicas']} replicas is below the 2x bar"
        )
