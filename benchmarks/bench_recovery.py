"""Durability benchmarks: cold rebuild vs. warm restart, WAL replay throughput.

Two headline numbers for the persistence subsystem:

* **cold vs. warm** — a cold rebuild re-runs NLP annotation and index
  construction for the whole corpus; a warm restart
  (``KokoService.open``) loads the latest snapshot through the storage
  engine's ``from_database`` inverse and replays nothing.  The acceptance
  bar is warm ≥ 5× faster than cold, with tuple-identical query results.
* **WAL replay throughput** — after a simulated crash (fsynced log, no
  checkpoint), recovery replays the tail record by record; this measures
  documents/second through the replay path, which bounds worst-case
  restart time between checkpoints.

Run under pytest-benchmark like the other ``bench_*`` modules, or
directly to print a JSON summary for the perf trajectory:

    PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke]

``--smoke`` shrinks corpus sizes so CI can exercise the script in seconds.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.evaluation.queries import SCALEUP_QUERIES
from repro.nlp.types import Corpus
from repro.persistence import CheckpointPolicy
from repro.service import KokoService


def _rows(result):
    return [(t.doc_id, t.sid, t.values) for t in result]


def _crash(service: KokoService) -> None:
    """Abandon a durable service as a crash would: fsynced WAL, no checkpoint."""
    if service._checkpoint_scheduler is not None:
        service._checkpoint_scheduler.stop()
        service._checkpoint_scheduler = None
    if service._wal is not None:
        service._wal.close()
    if service._shard_pool is not None:
        service._shard_pool.shutdown(wait=True)


def run_cold_vs_warm(
    corpus: Corpus, articles: int = 40, shards: int = 4, storage_dir: str | None = None
) -> dict:
    """Seconds to rebuild from raw text vs. to reopen the durable directory."""
    texts = [document.text for document in corpus.documents[:articles]]
    queries = list(SCALEUP_QUERIES.values())
    root = Path(storage_dir) if storage_dir else Path(tempfile.mkdtemp(prefix="koko-bench-"))
    target = root / "service"
    try:
        cold_started = time.perf_counter()
        service = KokoService(shards=shards, storage_dir=str(target))
        for index, text in enumerate(texts):
            service.add_document(text, f"bench-{index}")
        cold_seconds = time.perf_counter() - cold_started
        reference = [_rows(service.query(q)) for q in queries]
        service.close()

        warm_started = time.perf_counter()
        warm = KokoService.open(str(target))
        warm_seconds = time.perf_counter() - warm_started
        try:
            identical = [_rows(warm.query(q)) for q in queries] == reference
            replayed = warm.stats.replayed_wal_records
            recovered = warm.stats.recovered_documents
        finally:
            warm.close()
        return {
            "articles": len(texts),
            "shards": shards,
            "cold_rebuild_seconds": cold_seconds,
            "warm_restart_seconds": warm_seconds,
            "warm_speedup": cold_seconds / max(warm_seconds, 1e-9),
            "results_identical": identical,
            "recovered_documents": recovered,
            "replayed_wal_records": replayed,
        }
    finally:
        if storage_dir is None:
            shutil.rmtree(root, ignore_errors=True)


def run_wal_replay_throughput(
    corpus: Corpus, articles: int = 40, shards: int = 2, storage_dir: str | None = None
) -> dict:
    """Documents/second through crash recovery's WAL replay path."""
    texts = [document.text for document in corpus.documents[:articles]]
    queries = list(SCALEUP_QUERIES.values())
    root = Path(storage_dir) if storage_dir else Path(tempfile.mkdtemp(prefix="koko-bench-"))
    target = root / "service"
    try:
        service = KokoService(
            shards=shards,
            storage_dir=str(target),
            checkpoint_policy=CheckpointPolicy.disabled(),
        )
        ingest_started = time.perf_counter()
        for index, text in enumerate(texts):
            service.add_document(text, f"bench-{index}")
        ingest_seconds = time.perf_counter() - ingest_started
        reference = [_rows(service.query(q)) for q in queries]
        wal_bytes = service.stats.wal_bytes_appended
        _crash(service)  # everything lives only in the fsynced log

        replay_started = time.perf_counter()
        recovered = KokoService.open(str(target))
        replay_seconds = time.perf_counter() - replay_started
        try:
            identical = [_rows(recovered.query(q)) for q in queries] == reference
            replayed = recovered.stats.replayed_wal_records
        finally:
            recovered.close()
        return {
            "articles": len(texts),
            "shards": shards,
            "wal_bytes": wal_bytes,
            "logged_ingest_seconds": ingest_seconds,
            "recovery_seconds": replay_seconds,
            "replayed_records": replayed,
            "replayed_records_per_second": replayed / max(replay_seconds, 1e-9),
            "replayed_mib_per_second": (wal_bytes / (1 << 20)) / max(replay_seconds, 1e-9),
            "results_identical": identical,
        }
    finally:
        if storage_dir is None:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def test_recovery_cold_vs_warm(benchmark, wiki_corpus, tmp_path):
    """Warm restart must beat cold rebuild decisively, with identical tuples.

    The 5x acceptance bar is checked at the full benchmark-corpus scale
    (cold annotation cost grows with the corpus; warm restart carries a
    fixed deserialisation overhead, so tiny corpora understate the gap).
    """
    result = benchmark.pedantic(
        run_cold_vs_warm,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 100,
            "shards": 4,
            "storage_dir": str(tmp_path),
        },
        iterations=1,
        rounds=1,
    )
    assert result["results_identical"]
    assert result["replayed_wal_records"] == 0  # clean close folded everything
    assert result["warm_speedup"] >= 5.0, result


def test_recovery_wal_replay_throughput(benchmark, wiki_corpus, tmp_path):
    """Crash recovery replays the whole tail and reproduces every tuple."""
    result = benchmark.pedantic(
        run_wal_replay_throughput,
        kwargs={
            "corpus": wiki_corpus,
            "articles": 20,
            "shards": 2,
            "storage_dir": str(tmp_path),
        },
        iterations=1,
        rounds=1,
    )
    assert result["results_identical"]
    assert result["replayed_records"] == 20
    assert result["replayed_records_per_second"] > 0


if __name__ == "__main__":
    import json
    import sys

    from repro.corpora.wikipedia import generate_wikipedia_corpus

    smoke = "--smoke" in sys.argv
    if smoke:
        wiki = generate_wikipedia_corpus(articles=16)
        cold_warm = run_cold_vs_warm(wiki, articles=12, shards=2)
        replay = run_wal_replay_throughput(wiki, articles=10, shards=2)
    else:
        wiki = generate_wikipedia_corpus(articles=60)
        cold_warm = run_cold_vs_warm(wiki, articles=60, shards=4)
        replay = run_wal_replay_throughput(wiki, articles=40, shards=2)
    summary = {"smoke": smoke, "cold_vs_warm": cold_warm, "wal_replay": replay}
    print(json.dumps(summary, indent=2))
    if not cold_warm["results_identical"] or not replay["results_identical"]:
        sys.exit("recovered service returned different tuples")
    # the 5x bar is a full-corpus acceptance check; smoke mode (tiny corpus,
    # noisy CI runners) only verifies the recovery paths end to end
    if not smoke and cold_warm["warm_speedup"] < 5.0:
        sys.exit(
            f"warm restart speedup {cold_warm['warm_speedup']:.1f}x is below the 5x bar"
        )
