"""The KOKO&NOGSP baseline of Table 1.

Identical to the KOKO engine except that the Generate-Skip-Plan module is
disabled: every variable of every horizontal condition — including elastic
spans — is evaluated by nested enumeration ("uses nested-loops to evaluate
every variable in a query according to the order of their definitions").
"""

from __future__ import annotations

from ..koko.engine import KokoEngine
from ..nlp.types import Corpus


class NoGspEngine(KokoEngine):
    """A :class:`~repro.koko.engine.KokoEngine` with the skip plan disabled."""

    def __init__(self, corpus: Corpus, **kwargs) -> None:
        kwargs["use_gsp"] = False
        super().__init__(corpus, **kwargs)
