"""A first-order linear-chain CRF trained with the averaged perceptron.

This is the CRFsuite stand-in of Section 6.1: a sequence tagger over BIO
labels whose score decomposes into emission features (see
``crf_features.py``) and first-order transition features, decoded with
Viterbi and trained with the structured averaged perceptron — the very
training algorithm the paper says it used ("we used the averaged perceptron
algorithm to train a first order Markov CRF").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..nlp.types import Corpus, Document
from .crf_features import sentence_features

_OUTSIDE = "O"


@dataclass
class TaggedSentence:
    """A training/test instance: tokens plus BIO labels."""

    tokens: list[str]
    labels: list[str]


class AveragedPerceptronCrf:
    """Linear-chain sequence tagger with averaged-perceptron training."""

    def __init__(self, epochs: int = 5, seed: int = 13) -> None:
        self.epochs = epochs
        self.seed = seed
        self.labels: list[str] = [_OUTSIDE]
        self._weights: dict[tuple[str, str], float] = defaultdict(float)
        self._totals: dict[tuple[str, str], float] = defaultdict(float)
        self._timestamps: dict[tuple[str, str], int] = defaultdict(int)
        # number of training examples seen (the averaging denominator);
        # incremented once per instance, whether or not an update happens
        self._steps = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(self, instances: list[TaggedSentence]) -> None:
        """Train on BIO-labelled sentences."""
        label_set = {_OUTSIDE}
        for instance in instances:
            label_set.update(instance.labels)
        self.labels = sorted(label_set)

        for _ in range(self.epochs):
            for instance in instances:
                self._steps += 1
                features = sentence_features(instance.tokens)
                predicted = self._viterbi(features)
                if predicted != instance.labels:
                    self._update(features, instance.labels, predicted)
        self._average()

    def _update(
        self,
        features: list[list[str]],
        gold: list[str],
        predicted: list[str],
    ) -> None:
        previous_gold, previous_pred = "<s>", "<s>"
        for i, feats in enumerate(features):
            gold_label, pred_label = gold[i], predicted[i]
            if gold_label != pred_label:
                for feat in feats:
                    self._adjust((feat, gold_label), +1.0)
                    self._adjust((feat, pred_label), -1.0)
            gold_transition = (f"prev={previous_gold}", gold_label)
            pred_transition = (f"prev={previous_pred}", pred_label)
            if gold_transition != pred_transition:
                self._adjust(gold_transition, +1.0)
                self._adjust(pred_transition, -1.0)
            previous_gold, previous_pred = gold_label, pred_label

    def _adjust(self, key: tuple[str, str], delta: float) -> None:
        # lazy averaging: accumulate weight * (steps since last change)
        self._totals[key] += (self._steps - self._timestamps[key]) * self._weights[key]
        self._timestamps[key] = self._steps
        self._weights[key] += delta

    def _average(self) -> None:
        for key, weight in list(self._weights.items()):
            total = self._totals[key] + (self._steps - self._timestamps[key]) * weight
            self._weights[key] = total / max(self._steps, 1)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _score(self, feats: list[str], previous: str, label: str) -> float:
        score = self._weights.get((f"prev={previous}", label), 0.0)
        for feat in feats:
            score += self._weights.get((feat, label), 0.0)
        return score

    def _viterbi(self, features: list[list[str]]) -> list[str]:
        if not features:
            return []
        labels = self.labels
        n = len(features)
        scores = [{} for _ in range(n)]  # type: list[dict[str, tuple[float, str]]]
        for label in labels:
            scores[0][label] = (self._score(features[0], "<s>", label), "<s>")
        for i in range(1, n):
            for label in labels:
                best = None
                for previous in labels:
                    value = scores[i - 1][previous][0] + self._score(
                        features[i], previous, label
                    )
                    if best is None or value > best[0]:
                        best = (value, previous)
                scores[i][label] = best
        # backtrack
        last_label = max(labels, key=lambda lab: scores[n - 1][lab][0])
        path = [last_label]
        for i in range(n - 1, 0, -1):
            last_label = scores[i][last_label][1]
            path.append(last_label)
        path.reverse()
        return path

    def predict(self, tokens: list[str]) -> list[str]:
        """BIO labels for one sentence."""
        return self._viterbi(sentence_features(tokens))


class CrfEntityExtractor:
    """Document-level entity extraction with the CRF tagger (the paper's baseline).

    ``train_fraction`` of the corpus documents (by document order) provide
    the supervision — their gold entities converted to BIO tags — exactly
    mirroring "we used 50% of the available data to train the CRFsuite
    algorithm".
    """

    def __init__(self, entity_label: str = "ENT", epochs: int = 5) -> None:
        self.entity_label = entity_label
        self.crf = AveragedPerceptronCrf(epochs=epochs)

    # ------------------------------------------------------------------
    # training data preparation
    # ------------------------------------------------------------------
    def build_instances(
        self, corpus: Corpus, gold_key: str, doc_ids: set[str]
    ) -> list[TaggedSentence]:
        """BIO-labelled sentences for the documents in *doc_ids*."""
        instances = []
        for document in corpus:
            if document.doc_id not in doc_ids:
                continue
            gold_names = {g.lower() for g in corpus.gold_for(gold_key, document.doc_id)}
            for sentence in document:
                tokens = [tok.text for tok in sentence]
                labels = self._bio_labels(tokens, gold_names)
                instances.append(TaggedSentence(tokens=tokens, labels=labels))
        return instances

    def _bio_labels(self, tokens: list[str], gold_names: set[str]) -> list[str]:
        labels = [_OUTSIDE] * len(tokens)
        lows = [t.lower() for t in tokens]
        for name in gold_names:
            name_tokens = name.split()
            if not name_tokens:
                continue
            for start in range(0, len(lows) - len(name_tokens) + 1):
                if lows[start : start + len(name_tokens)] == name_tokens:
                    labels[start] = f"B-{self.entity_label}"
                    for offset in range(1, len(name_tokens)):
                        labels[start + offset] = f"I-{self.entity_label}"
        return labels

    # ------------------------------------------------------------------
    # train / extract
    # ------------------------------------------------------------------
    def train(self, corpus: Corpus, gold_key: str, train_doc_ids: set[str]) -> None:
        instances = self.build_instances(corpus, gold_key, train_doc_ids)
        self.crf.train(instances)

    def extract(self, document: Document) -> set[str]:
        """The entity strings predicted anywhere in *document*."""
        found: set[str] = set()
        for sentence in document:
            tokens = [tok.text for tok in sentence]
            labels = self.crf.predict(tokens)
            i = 0
            while i < len(labels):
                if labels[i].startswith("B-"):
                    j = i + 1
                    while j < len(labels) and labels[j].startswith("I-"):
                        j += 1
                    found.add(" ".join(tokens[i:j]))
                    i = j
                else:
                    i += 1
        return found

    def extract_all(self, corpus: Corpus, doc_ids: set[str] | None = None) -> dict[str, set[str]]:
        """doc_id -> predicted entity strings, over the whole corpus or a subset."""
        results: dict[str, set[str]] = {}
        for document in corpus:
            if doc_ids is not None and document.doc_id not in doc_ids:
                continue
            results[document.doc_id] = self.extract(document)
        return results
