"""Feature extraction for the CRF named-entity baseline (Section 6.1).

The paper's CRFsuite baseline uses "the tokens along with their preceding and
following tokens, prefix and suffix of each token up to 3 characters, and a
set of binary features that test if the token matches a few regular
expressions (mostly to test if it has digits, or if the token is all digits
and so on)".  This module reproduces that feature set.
"""

from __future__ import annotations

import re

_HAS_DIGIT = re.compile(r"\d")
_ALL_DIGITS = re.compile(r"^\d+$")
_HAS_HYPHEN = re.compile(r"-")
_HAS_UPPER = re.compile(r"[A-Z]")


def token_features(tokens: list[str], index: int) -> list[str]:
    """The feature strings of token *index* within its sentence."""
    token = tokens[index]
    low = token.lower()
    features = [
        "bias",
        f"w={low}",
        f"w.istitle={token[:1].isupper()}",
        f"w.isupper={token.isupper()}",
        f"w.has_digit={bool(_HAS_DIGIT.search(token))}",
        f"w.all_digits={bool(_ALL_DIGITS.match(token))}",
        f"w.has_hyphen={bool(_HAS_HYPHEN.search(token))}",
        f"w.has_upper={bool(_HAS_UPPER.search(token))}",
    ]
    for size in (1, 2, 3):
        if len(low) >= size:
            features.append(f"prefix{size}={low[:size]}")
            features.append(f"suffix{size}={low[-size:]}")
    if index > 0:
        previous = tokens[index - 1]
        features.append(f"w-1={previous.lower()}")
        features.append(f"w-1.istitle={previous[:1].isupper()}")
    else:
        features.append("BOS")
    if index + 1 < len(tokens):
        nxt = tokens[index + 1]
        features.append(f"w+1={nxt.lower()}")
        features.append(f"w+1.istitle={nxt[:1].isupper()}")
    else:
        features.append("EOS")
    return features


def sentence_features(tokens: list[str]) -> list[list[str]]:
    """Feature lists for every token of a sentence."""
    return [token_features(tokens, i) for i in range(len(tokens))]
