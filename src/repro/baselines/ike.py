"""An IKE-style pattern extractor (Dalvi et al.; Sections 5 and 6.1).

IKE extracts noun phrases matched by surface patterns over single sentences,
with *distributional similarity* search: the pattern ``("serves coffee" ~ 10)``
matches the phrase itself or any of its 10 most similar phrases.  The key
contrasts with KOKO that the paper draws, and that this implementation
preserves:

* IKE is **sentence local** — it cannot aggregate partial evidence from
  several mentions of the same entity across a document,
* matches are all-or-nothing — there is no weighting or thresholding,
* it has no access to dependency structure.

Patterns are expressed with :class:`IkePattern`: a noun-phrase capture
before or after a context phrase, optionally with similarity expansion
(``expand_k``) and a proximity window (the ``~ 10`` of IKE query syntax).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..embeddings.expansion import DescriptorExpander
from ..nlp.types import Corpus, Document, Sentence


@dataclass(frozen=True)
class IkePattern:
    """One IKE query: capture an NP adjacent to (or near) a context phrase.

    ``np_side`` says where the captured noun phrase sits relative to the
    context phrase: ``"before"`` for ``(NP) ("serves coffee" ~ 10)``,
    ``"after"`` for ``("cafe called") (NP)``.  ``window`` is the maximum
    token distance between the NP and the context phrase (1 = adjacent).
    ``expand_k`` > 0 turns on distributional-similarity expansion of the
    context phrase.
    """

    context: str
    np_side: str = "before"
    window: int = 10
    expand_k: int = 0


class IkeExtractor:
    """Evaluate IKE patterns sentence by sentence."""

    def __init__(
        self,
        patterns: list[IkePattern],
        expander: DescriptorExpander | None = None,
    ) -> None:
        self.patterns = patterns
        self.expander = expander or DescriptorExpander()
        self._phrase_cache: dict[tuple[str, int], list[str]] = {}

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def extract(self, document: Document) -> set[str]:
        """Entity strings any pattern captures anywhere in *document*."""
        found: set[str] = set()
        for sentence in document:
            for pattern in self.patterns:
                found.update(self._match_pattern(sentence, pattern))
        return found

    def extract_all(self, corpus: Corpus, doc_ids: set[str] | None = None) -> dict[str, set[str]]:
        """doc_id -> captured entity strings."""
        results: dict[str, set[str]] = {}
        for document in corpus:
            if doc_ids is not None and document.doc_id not in doc_ids:
                continue
            results[document.doc_id] = self.extract(document)
        return results

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def _match_pattern(self, sentence: Sentence, pattern: IkePattern) -> set[str]:
        phrases = self._context_phrases(pattern)
        tokens = [tok.text.lower() for tok in sentence]
        lemmas = [tok.lemma for tok in sentence]
        captured: set[str] = set()
        for phrase in phrases:
            words = phrase.lower().split()
            if not words:
                continue
            for start in range(0, len(tokens) - len(words) + 1):
                window_tokens = tokens[start : start + len(words)]
                window_lemmas = lemmas[start : start + len(words)]
                if window_tokens != words and window_lemmas != words:
                    continue
                if pattern.np_side == "before":
                    noun_phrase = self._noun_phrase_ending_before(
                        sentence, start, pattern.window
                    )
                else:
                    noun_phrase = self._noun_phrase_starting_after(
                        sentence, start + len(words) - 1, pattern.window
                    )
                if noun_phrase:
                    captured.add(noun_phrase)
        return captured

    def _context_phrases(self, pattern: IkePattern) -> list[str]:
        if pattern.expand_k <= 0:
            return [pattern.context]
        key = (pattern.context, pattern.expand_k)
        cached = self._phrase_cache.get(key)
        if cached is None:
            expanded = self.expander.expand(pattern.context)
            cached = [e.phrase for e in expanded[: pattern.expand_k + 1]]
            self._phrase_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # noun-phrase capture
    # ------------------------------------------------------------------
    @staticmethod
    def _noun_phrase_ending_before(
        sentence: Sentence, context_start: int, window: int
    ) -> str | None:
        """The nearest NP (entity mention or noun run) ending before *context_start*."""
        best: tuple[int, str] | None = None
        for mention in sentence.entities:
            distance = context_start - mention.end - 1
            if 0 <= distance < window:
                if best is None or distance < best[0]:
                    best = (distance, mention.text)
        return best[1] if best else None

    @staticmethod
    def _noun_phrase_starting_after(
        sentence: Sentence, context_end: int, window: int
    ) -> str | None:
        """The nearest NP starting after token *context_end*."""
        best: tuple[int, str] | None = None
        for mention in sentence.entities:
            distance = mention.start - context_end - 1
            if 0 <= distance < window:
                if best is None or distance < best[0]:
                    best = (distance, mention.text)
        return best[1] if best else None
