"""Extraction baselines the paper compares against KOKO (Sections 5-6)."""

from .crf import AveragedPerceptronCrf, CrfEntityExtractor, TaggedSentence
from .crf_features import sentence_features, token_features
from .ike import IkeExtractor, IkePattern
from .nell import BootstrapState, NellBootstrapper
from .nogsp import NoGspEngine
from .odin import OdinMatcher, OdinMention, OdinRule

__all__ = [
    "AveragedPerceptronCrf",
    "BootstrapState",
    "CrfEntityExtractor",
    "IkeExtractor",
    "IkePattern",
    "NellBootstrapper",
    "NoGspEngine",
    "OdinMatcher",
    "OdinMention",
    "OdinRule",
    "TaggedSentence",
    "sentence_features",
    "token_features",
]
