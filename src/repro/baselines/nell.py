"""A NELL-style coupled-bootstrapping extractor (Carlson et al.; Section 6.1).

NELL learns extraction patterns for a category from a handful of seed
instances, then alternates between (a) finding new patterns that co-occur
with known instances and (b) promoting new instances matched by enough
learned patterns.  Its defining behaviour — which the paper's comparison
highlights — is conservatism: it only promotes instances supported by
patterns that are themselves supported by several known instances, so it
reaches high precision but very low recall on entities that are mentioned
only a few times (new cafes in blog posts).

The implementation below reproduces that behaviour with the same knobs:
seed instances, a minimum pattern support, a minimum instance support and a
fixed number of bootstrapping iterations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..nlp.types import Corpus, Sentence


@dataclass
class BootstrapState:
    """The evolving state of one bootstrapping run."""

    instances: set[str] = field(default_factory=set)
    patterns: set[tuple[str, str]] = field(default_factory=set)
    promoted_by_iteration: list[set[str]] = field(default_factory=list)


class NellBootstrapper:
    """Pattern/instance co-training for one category.

    Parameters
    ----------
    seeds:
        Seed instance strings ("the creators of NELL ... added cafes as a
        new category with 17 seed instances").
    min_pattern_support:
        A context pattern is promoted when it co-occurs with at least this
        many distinct known instances.
    min_instance_support:
        A candidate instance is promoted when at least this many distinct
        promoted patterns match it.
    iterations:
        Number of pattern-promotion / instance-promotion rounds.
    context_width:
        Number of tokens of left and right context forming a pattern.
    """

    def __init__(
        self,
        seeds: set[str],
        min_pattern_support: int = 2,
        min_instance_support: int = 2,
        iterations: int = 3,
        context_width: int = 2,
    ) -> None:
        self.seeds = {s.lower() for s in seeds}
        self.min_pattern_support = min_pattern_support
        self.min_instance_support = min_instance_support
        self.iterations = iterations
        self.context_width = context_width

    # ------------------------------------------------------------------
    # bootstrapping
    # ------------------------------------------------------------------
    def run(self, corpus: Corpus) -> BootstrapState:
        """Run the bootstrap over *corpus* and return its final state."""
        state = BootstrapState(instances=set(self.seeds))
        candidate_contexts = self._candidate_contexts(corpus)

        for _ in range(self.iterations):
            new_patterns = self._promote_patterns(candidate_contexts, state)
            state.patterns |= new_patterns
            new_instances = self._promote_instances(candidate_contexts, state)
            freshly_promoted = new_instances - state.instances
            state.instances |= new_instances
            state.promoted_by_iteration.append(freshly_promoted)
            if not freshly_promoted and not new_patterns:
                break
        return state

    def extract_all(self, corpus: Corpus) -> dict[str, set[str]]:
        """doc_id -> instances (other than seeds) found in that document."""
        state = self.run(corpus)
        learned = {i for i in state.instances}
        results: dict[str, set[str]] = {}
        for document in corpus:
            found = set()
            for sentence in document:
                for text, _ in self._mentions(sentence):
                    if text.lower() in learned:
                        found.add(text)
            results[document.doc_id] = found
        return results

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _candidate_contexts(
        self, corpus: Corpus
    ) -> list[tuple[str, tuple[str, str]]]:
        """(candidate text, (left context, right context)) for every mention."""
        contexts = []
        for _, sentence in corpus.all_sentences():
            tokens = [tok.text.lower() for tok in sentence]
            for text, (start, end) in self._mentions(sentence):
                left = " ".join(tokens[max(0, start - self.context_width) : start])
                right = " ".join(tokens[end + 1 : end + 1 + self.context_width])
                contexts.append((text, (left, right)))
        return contexts

    @staticmethod
    def _mentions(sentence: Sentence) -> list[tuple[str, tuple[int, int]]]:
        """Candidate noun phrases: the sentence's entity mentions."""
        return [
            (mention.text, (mention.start, mention.end))
            for mention in sentence.entities
        ]

    def _promote_patterns(
        self,
        contexts: list[tuple[str, tuple[str, str]]],
        state: BootstrapState,
    ) -> set[tuple[str, str]]:
        support: dict[tuple[str, str], set[str]] = {}
        for text, context in contexts:
            if text.lower() in state.instances:
                if not context[0] and not context[1]:
                    continue
                support.setdefault(context, set()).add(text.lower())
        return {
            context
            for context, instances in support.items()
            if len(instances) >= self.min_pattern_support
        }

    def _promote_instances(
        self,
        contexts: list[tuple[str, tuple[str, str]]],
        state: BootstrapState,
    ) -> set[str]:
        support: dict[str, set[tuple[str, str]]] = {}
        surface: dict[str, str] = {}
        for text, context in contexts:
            if context in state.patterns:
                support.setdefault(text.lower(), set()).add(context)
                surface.setdefault(text.lower(), text)
        promoted = {
            low
            for low, patterns in support.items()
            if len(patterns) >= self.min_instance_support
        }
        return promoted | state.instances

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def pattern_counts(self, corpus: Corpus) -> Counter:
        """How often each learned pattern fires (for inspection/tests)."""
        state = self.run(corpus)
        counts: Counter = Counter()
        for text, context in self._candidate_contexts(corpus):
            if context in state.patterns:
                counts[context] += 1
        return counts
