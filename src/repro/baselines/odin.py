"""An Odin-style cascaded rule matcher (Valenzuela-Escárcega et al.; Section 6.3).

Odin evaluates CPSL-style rule cascades over dependency-parsed sentences:
rules are grouped into priority levels, every rule is applied to every
sentence, and the cascade iterates until no rule produces a new mention.
Crucially for the paper's comparison, Odin uses **no indexes** — every rule
scans every sentence on every iteration — which is why it is 1.3x-40x slower
than KOKO depending on query selectivity, and why it cannot aggregate
evidence across sentences.

Rules here are dependency-pattern rules: a trigger word/POS plus a set of
argument paths from the trigger (child / descendant steps over parse
labels), mirroring how the paper translated its three wiki queries "to
Odin's syntax to the extent possible" (extract clauses only, no satisfying
clause).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..indexing.exact import match_path_in_sentence
from ..indexing.query_ir import TreePath
from ..nlp.types import Corpus, Sentence


@dataclass(frozen=True)
class OdinRule:
    """One cascade rule: a name, a priority level, and argument paths.

    Every argument is a root-anchored :class:`TreePath`; the rule fires on a
    sentence when every argument path has at least one binding, and yields
    one mention per binding combination of its *output* arguments.
    """

    name: str
    priority: int
    arguments: tuple[tuple[str, TreePath], ...]
    outputs: tuple[str, ...]


@dataclass
class OdinMention:
    """One mention produced by a rule."""

    rule: str
    sid: int
    values: dict[str, str] = field(default_factory=dict)


class OdinMatcher:
    """Iterate a rule cascade to fixpoint over a parsed corpus."""

    def __init__(self, rules: list[OdinRule], max_iterations: int = 5) -> None:
        self.rules = sorted(rules, key=lambda r: r.priority)
        self.max_iterations = max_iterations
        self.last_runtime = 0.0
        self.last_iterations = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, corpus: Corpus) -> list[OdinMention]:
        """Apply the cascade to every sentence until no new mentions appear."""
        started = time.perf_counter()
        mentions: list[OdinMention] = []
        seen: set[tuple[str, int, tuple[tuple[str, str], ...]]] = set()
        iterations = 0
        changed = True
        while changed and iterations < self.max_iterations:
            iterations += 1
            changed = False
            for rule in self.rules:
                for _, sentence in corpus.all_sentences():
                    for mention in self._apply_rule(rule, sentence):
                        key = (
                            mention.rule,
                            mention.sid,
                            tuple(sorted(mention.values.items())),
                        )
                        if key not in seen:
                            seen.add(key)
                            mentions.append(mention)
                            changed = True
        self.last_runtime = time.perf_counter() - started
        self.last_iterations = iterations
        return mentions

    def _apply_rule(self, rule: OdinRule, sentence: Sentence) -> list[OdinMention]:
        bindings: dict[str, list[int]] = {}
        for name, path in rule.arguments:
            matches = match_path_in_sentence(sentence, path)
            if not matches:
                return []
            bindings[name] = matches
        # one mention per combination of output-argument bindings
        mentions: list[OdinMention] = []
        combos: list[dict[str, str]] = [{}]
        for name in rule.outputs:
            new_combos = []
            for combo in combos:
                for tid in bindings.get(name, []):
                    extended = dict(combo)
                    extended[name] = sentence[tid].text
                    new_combos.append(extended)
            combos = new_combos
        for combo in combos:
            mentions.append(OdinMention(rule=rule.name, sid=sentence.sid, values=combo))
        return mentions

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def timed_run(self, corpus: Corpus) -> tuple[list[OdinMention], float]:
        mentions = self.run(corpus)
        return mentions, self.last_runtime
