"""Exception hierarchy for the repro (KOKO reproduction) package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class KokoSyntaxError(ReproError):
    """Raised when a KOKO query string cannot be parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the query text where the problem was detected,
        or ``None`` when the position is unknown.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        self.message = message
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class KokoSemanticError(ReproError):
    """Raised when a parsed query is structurally invalid.

    Examples include referencing a variable before it is declared, binding
    the same variable twice, or using a ``satisfying`` clause for a variable
    that is not part of the output tuple.
    """


class StorageError(ReproError):
    """Raised by the embedded storage engine (bad schema, unknown table...)."""


class SchemaError(StorageError):
    """Raised when a row does not conform to its table schema."""


class IndexError_(ReproError):
    """Raised by index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class PipelineError(ReproError):
    """Raised when the NLP pipeline cannot annotate its input."""


class ServiceError(ReproError):
    """Raised by the query-serving layer (duplicate or unknown document ids)."""


class DeadlineExceeded(ServiceError):
    """Raised when a query's deadline expires before execution completes.

    The serving layer checks the deadline cooperatively — on entry, before
    each shard is dispatched, and at the start of each shard's scan — so an
    expired deadline abandons the remaining work instead of letting it run
    to completion for a caller that has already given up.
    """


class RpcError(ReproError):
    """Base class for the network serving tier's typed failures.

    Every subclass carries a stable wire ``code`` so a fault can cross the
    connection as data and be re-raised as the same type on the client.
    """

    code = "rpc_error"


class RpcBadRequest(RpcError):
    """The request was malformed or named an operation the node lacks."""

    code = "bad_request"


class RpcRateLimited(RpcError):
    """The client exceeded its token-bucket admission rate."""

    code = "rate_limited"


class RpcDeadlineExceeded(RpcError):
    """The request's deadline expired before the server finished it."""

    code = "deadline_exceeded"


class RpcReadOnly(RpcError):
    """A write was sent to a read-only node (a replica)."""

    code = "read_only"


class RpcStaleRead(RpcError):
    """A read-your-writes token could not be satisfied by this node."""

    code = "stale_read"


class RpcUnavailable(RpcError):
    """The connection failed or the server is shutting down."""

    code = "unavailable"


class RpcServerError(RpcError):
    """The server raised an unexpected error while handling the request."""

    code = "server_error"


class PersistenceError(ReproError):
    """Raised by the durability subsystem (bad snapshot, corrupt WAL...)."""


class ReplicationError(ReproError):
    """Raised by the replication subsystem (shipping, replicas, routing)."""


class EmbeddingError(ReproError):
    """Raised by the embedding / descriptor-expansion subsystem."""


class EvaluationError(ReproError):
    """Raised by the experiment harness for invalid configurations."""
