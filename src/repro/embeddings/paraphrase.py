"""Paraphrase lexicon and counter-fitting-style retrofit.

The paper uses counter-fitted embeddings (Mrkšić et al.) so that descriptor
expansion follows *paraphrase* relations rather than mere topical
co-occurrence.  This module reproduces the behaviourally relevant part of
counter-fitting:

* **synonym attraction** — words in the same paraphrase group are pulled
  towards their group centroid,
* **antonym / non-paraphrase repulsion** — antonym pairs and topically
  related non-paraphrases (coffee/tea) are pushed apart,
* **vector-space preservation** — a pull back towards the original vector
  keeps the rest of the space intact.

It also exposes :class:`ParaphraseLexicon`, the symbolic view of the
paraphrase groups, which descriptor expansion uses directly when a word has
an exact group membership.
"""

from __future__ import annotations

import numpy as np

from .ontology import ANTONYM_PAIRS, SYNONYM_SETS, TOPICAL_NON_PARAPHRASES
from .vectors import VectorStore, _normalize


class ParaphraseLexicon:
    """Symbolic paraphrase groups with per-pair similarity scores."""

    def __init__(
        self,
        synonym_sets: list[set[str]] | None = None,
        antonym_pairs: list[tuple[str, str]] | None = None,
    ) -> None:
        self.synonym_sets = [
            {w.lower() for w in group} for group in (synonym_sets or SYNONYM_SETS)
        ]
        self.antonym_pairs = [
            (a.lower(), b.lower()) for a, b in (antonym_pairs or ANTONYM_PAIRS)
        ]
        self._groups_by_word: dict[str, list[int]] = {}
        for gid, group in enumerate(self.synonym_sets):
            for word in group:
                self._groups_by_word.setdefault(word, []).append(gid)

    def synonyms(self, word: str) -> set[str]:
        """All paraphrases of *word* (excluding the word itself)."""
        low = word.lower()
        result: set[str] = set()
        for gid in self._groups_by_word.get(low, []):
            result |= self.synonym_sets[gid] - {low}
        return result

    def are_paraphrases(self, word_a: str, word_b: str) -> bool:
        a, b = word_a.lower(), word_b.lower()
        if a == b:
            return True
        return b in self.synonyms(a)

    def are_antonyms(self, word_a: str, word_b: str) -> bool:
        a, b = word_a.lower(), word_b.lower()
        return (a, b) in self.antonym_pairs or (b, a) in self.antonym_pairs

    def all_words(self) -> set[str]:
        words = set(self._groups_by_word)
        for a, b in self.antonym_pairs:
            words.add(a)
            words.add(b)
        return words


class CounterFitter:
    """Retrofit a vector store with paraphrase attraction / antonym repulsion.

    The procedure is a simplified, deterministic version of counter-fitting:
    a fixed number of update sweeps where each constrained word's vector is
    moved towards its paraphrase centroid, away from its antonyms, and back
    towards its original position, then re-normalised.
    """

    def __init__(
        self,
        lexicon: ParaphraseLexicon | None = None,
        repel_pairs: list[tuple[str, str]] | None = None,
        iterations: int = 10,
        attract_weight: float = 0.6,
        repel_weight: float = 0.4,
        preserve_weight: float = 0.2,
    ) -> None:
        self.lexicon = lexicon or ParaphraseLexicon()
        self.repel_pairs = [
            (a.lower(), b.lower())
            for a, b in (repel_pairs if repel_pairs is not None else TOPICAL_NON_PARAPHRASES)
        ]
        self.iterations = iterations
        self.attract_weight = attract_weight
        self.repel_weight = repel_weight
        self.preserve_weight = preserve_weight

    def fit(self, store: VectorStore) -> VectorStore:
        """Return a retrofitted copy of *store* (the input is not mutated)."""
        result = store.copy()
        # Make sure every constrained word has a vector to move.
        for word in sorted(self.lexicon.all_words()):
            if word not in result and " " not in word:
                result.add(word, store.vector(word))
        original = {word: result.vector(word).copy() for word in result.words()}

        repel = list(self.repel_pairs) + list(self.lexicon.antonym_pairs)

        for _ in range(self.iterations):
            updates: dict[str, np.ndarray] = {}
            for word in result.words():
                vector = result.vector(word).copy()
                synonyms = [s for s in self.lexicon.synonyms(word) if " " not in s]
                if synonyms:
                    centroid = np.mean([result.vector(s) for s in synonyms], axis=0)
                    vector = vector + self.attract_weight * (centroid - vector)
                for a, b in repel:
                    other = None
                    if word == a:
                        other = b
                    elif word == b:
                        other = a
                    if other is not None and " " not in other:
                        away = vector - result.vector(other)
                        norm = np.linalg.norm(away)
                        if norm > 0:
                            vector = vector + self.repel_weight * (away / norm)
                vector = vector + self.preserve_weight * (original[word] - vector)
                updates[word] = _normalize(vector)
            for word, vector in updates.items():
                result.add(word, vector)
        return result
