"""Small hand-built domain ontologies and a paraphrase lexicon.

The paper's descriptor expansion relies on two resources:

* paraphrase-based (counter-fitted) word embeddings, which pull synonyms
  together and push antonyms apart, and
* an optional *domain ontology* with sets of interchangeable terms
  ("different coffee drinks such as cappuccino, macchiato").

Both are modelled here.  :data:`SYNONYM_SETS` provides groups of mutually
substitutable words (the paraphrase relation), :data:`ANTONYM_PAIRS` the
repelling pairs used by the counter-fitting retrofit, and
:class:`DomainOntology` groups of domain terms that may replace each other
during descriptor expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Groups of (near-)paraphrases.  Every word in a group may substitute any
# other word of the same group when expanding a descriptor.
SYNONYM_SETS: list[set[str]] = [
    {"serve", "sell", "offer", "provide", "pour"},
    {"employ", "hire", "recruit"},
    {"delicious", "tasty", "yummy", "flavorful", "scrumptious"},
    {"great", "excellent", "wonderful", "fantastic", "amazing", "superb"},
    {"happy", "glad", "joyful", "delighted", "pleased", "thrilled"},
    {"cafe", "coffeehouse", "coffeeshop"},
    {"city", "town", "metropolis", "municipality"},
    {"country", "nation", "state"},
    {"buy", "purchase"},
    {"make", "prepare", "craft", "produce"},
    {"open", "launch", "start", "inaugurate", "debut"},
    {"visit", "stop by", "drop by"},
    {"win", "defeat", "beat"},
    {"team", "club", "squad", "side"},
    {"stadium", "arena", "ballpark"},
    {"barista", "baristas"},
    {"born", "birth"},
    {"called", "named", "nicknamed", "known"},
    {"famous", "renowned", "celebrated", "noted"},
    {"small", "tiny", "little"},
    {"big", "large", "huge", "enormous"},
]

# Antonym pairs repelled by the counter-fitting retrofit.
ANTONYM_PAIRS: list[tuple[str, str]] = [
    ("happy", "sad"),
    ("big", "small"),
    ("open", "close"),
    ("win", "lose"),
    ("buy", "sell"),
    ("hot", "cold"),
    ("good", "bad"),
    ("best", "worst"),
    ("sweet", "bitter"),
    ("early", "late"),
    ("city", "country"),
]

# Topically related but NOT paraphrases: these pairs must stay apart so that
# descriptor expansion of "serves coffee" does not produce "serves tea"
# (the failure mode the paper attributes to plain co-occurrence embeddings).
TOPICAL_NON_PARAPHRASES: list[tuple[str, str]] = [
    ("coffee", "tea"),
    ("coffee", "beer"),
    ("espresso", "tea"),
    ("cafe", "restaurant"),
    ("barista", "bartender"),
    ("soccer", "chess"),
]


@dataclass
class DomainOntology:
    """Sets of domain terms that are interchangeable for expansion purposes."""

    groups: dict[str, set[str]] = field(default_factory=dict)

    def add_group(self, name: str, terms: set[str]) -> None:
        self.groups[name] = {t.lower() for t in terms}

    def related(self, term: str) -> set[str]:
        """All terms sharing a group with *term* (excluding the term itself)."""
        low = term.lower()
        out: set[str] = set()
        for terms in self.groups.values():
            if low in terms:
                out |= terms - {low}
        return out

    def group_of(self, term: str) -> str | None:
        low = term.lower()
        for name, terms in self.groups.items():
            if low in terms:
                return name
        return None


def default_ontology() -> DomainOntology:
    """The built-in domain ontology used by the cafe / sports experiments."""
    onto = DomainOntology()
    onto.add_group(
        "coffee_drinks",
        {
            "coffee", "espresso", "cappuccino", "macchiato", "latte", "mocha",
            "americano", "cortado", "cold brew", "pour-over",
        },
    )
    onto.add_group(
        "coffee_equipment",
        {"grinder", "roaster", "kettle", "french press", "aeropress", "v60"},
    )
    onto.add_group(
        "pastries",
        {"croissant", "pastry", "cookie", "muffin", "scone", "cake"},
    )
    onto.add_group(
        "sports",
        {"soccer", "football", "basketball", "baseball", "hockey", "tennis"},
    )
    onto.add_group(
        "venues",
        {"stadium", "arena", "park", "gym", "court", "field"},
    )
    return onto
