"""PPMI + truncated-SVD word embeddings.

A classical, training-data-free embedding model: build the positive
pointwise-mutual-information matrix from co-occurrence counts and factorise
it with a truncated SVD.  This provides the "conventional word embeddings"
the paper contrasts with paraphrase-based embeddings — topically related
words (coffee/tea) end up close, which is exactly the behaviour the
counter-fitting retrofit then corrects.
"""

from __future__ import annotations

import numpy as np

from ..errors import EmbeddingError
from .cooccurrence import CooccurrenceCounts
from .vectors import VectorStore


class PpmiSvdEmbedder:
    """Factorise a PPMI matrix into dense word vectors.

    Parameters
    ----------
    dimensions:
        Target vector dimensionality (clipped to the vocabulary size).
    shift:
        PMI shift ``log k`` subtracted before clamping at zero (the
        negative-sampling equivalence); 0 disables shifting.
    """

    def __init__(self, dimensions: int = 64, shift: float = 0.0) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.dimensions = dimensions
        self.shift = shift

    def fit(self, counts: CooccurrenceCounts) -> VectorStore:
        """Return a :class:`VectorStore` with one vector per vocabulary word."""
        vocabulary = counts.vocabulary
        if not vocabulary:
            raise EmbeddingError("cannot fit embeddings on an empty vocabulary")
        index = counts.index()
        n = len(vocabulary)

        matrix = np.zeros((n, n), dtype=np.float64)
        total = max(counts.total_pairs, 1)
        word_totals = np.zeros(n, dtype=np.float64)
        for word, count in counts.word_counts.items():
            word_totals[index[word]] = count
        word_prob = word_totals / max(word_totals.sum(), 1.0)

        for (word, context), count in counts.pair_counts.items():
            i, j = index[word], index[context]
            p_pair = count / total
            denom = word_prob[i] * word_prob[j]
            if denom <= 0:
                continue
            pmi = np.log(p_pair / denom)
            value = pmi - self.shift
            if value > 0:
                matrix[i, j] = value

        dims = min(self.dimensions, n)
        # Full SVD on a dense matrix is fine at the vocabulary sizes used in
        # the experiments (a few thousand words).
        u, s, _ = np.linalg.svd(matrix, full_matrices=False)
        vectors = u[:, :dims] * np.sqrt(s[:dims])

        store = VectorStore(dimensions=dims)
        for word, row in zip(vocabulary, vectors):
            store.add(word, row)
        return store
