"""A built-in 'pretrained' paraphrase-style vector store.

The paper's prototype downloads counter-fitted embeddings trained on large
corpora; offline, this module builds a deterministic stand-in:

* every *concept group* (synonym set, domain-ontology group, and a small set
  of taxonomic groups such as cities vs. countries) gets its own anchor
  direction,
* every member word's vector is its group anchor(s) plus a small
  word-specific deterministic perturbation, so that words in the same group
  are highly similar while words in different groups are nearly orthogonal,
* the counter-fitting retrofit is then applied, which keeps antonyms and
  topical non-paraphrases (coffee/tea) apart.

The result reproduces the behaviour KOKO relies on: ``similarTo "city"``
ranks Tokyo and Beijing far above China and Japan (Example 2.2), and
descriptor expansion of "serves coffee" reaches "sells espresso" but not
"serves tea".
"""

from __future__ import annotations

import hashlib

import numpy as np

from .ontology import SYNONYM_SETS, default_ontology
from .paraphrase import CounterFitter, ParaphraseLexicon
from .vectors import VectorStore, _normalize

# Taxonomic groups used by the paper's examples (GPE instances vs. concepts).
CITY_NAMES = {
    "beijing", "tokyo", "paris", "berlin", "rome", "madrid", "london",
    "lisbon", "sydney", "toronto", "seattle", "portland", "chicago",
    "boston", "austin", "denver", "oakland", "brooklyn", "melbourne",
    "oslo", "vienna", "prague", "dublin", "amsterdam", "barcelona",
    "milan", "kyoto", "osaka", "shanghai", "mumbai", "seoul", "reykjavik",
    "copenhagen", "helsinki", "stockholm", "zurich", "geneva", "brussels",
    "lyon", "marseille",
}

COUNTRY_NAMES = {
    "china", "japan", "france", "germany", "italy", "spain", "brazil",
    "canada", "mexico", "india", "australia", "england", "portugal",
}

PERSON_WORDS = {"person", "people", "man", "woman", "author", "writer", "actor"}

_TAXONOMIC_GROUPS: dict[str, set[str]] = {
    "city": CITY_NAMES | {"city", "cities", "town", "metropolis"},
    "country": COUNTRY_NAMES | {"country", "countries", "nation"},
    "person": PERSON_WORDS,
    "copula": {"is", "are", "was", "were", "be", "been"},
    "birth": {"born", "birth", "birthday", "birthdate"},
    "naming": {"called", "named", "nicknamed", "known"},
}


def _perturbation(word: str, dimensions: int, scale: float = 0.3) -> np.ndarray:
    """A word-specific direction with norm *scale* (relative to unit anchors)."""
    digest = hashlib.sha256(("perturb:" + word).encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return scale * _normalize(rng.standard_normal(dimensions))


def _anchor(group_name: str, dimensions: int) -> np.ndarray:
    digest = hashlib.sha256(("anchor:" + group_name).encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return _normalize(rng.standard_normal(dimensions))


# Memoised stores by (dimensions, counter_fit, frozen extra_groups): the
# build is deterministic and the store is treated as immutable by every
# consumer, so constructing many engines/services shares one instance.
_DEFAULT_VECTORS_CACHE: dict[tuple, VectorStore] = {}


def _freeze_groups(extra_groups: dict[str, set[str]] | None) -> tuple:
    if not extra_groups:
        return ()
    return tuple(
        sorted((name, tuple(sorted(members))) for name, members in extra_groups.items())
    )


def clear_default_vectors_cache() -> None:
    """Drop the memoised stores (tests that need isolation call this)."""
    _DEFAULT_VECTORS_CACHE.clear()


def build_default_vectors(
    dimensions: int = 64,
    counter_fit: bool = True,
    extra_groups: dict[str, set[str]] | None = None,
) -> VectorStore:
    """Build the deterministic paraphrase-style vector store.

    ``extra_groups`` lets corpora register additional concept groups (for
    example, generated cafe names anchored to the "cafe" concept) so that
    the similarity operator generalises to generated names.

    Identical arguments return the *same* memoised store — do not mutate
    the returned object.
    """
    cache_key = (dimensions, counter_fit, _freeze_groups(extra_groups))
    cached = _DEFAULT_VECTORS_CACHE.get(cache_key)
    if cached is not None:
        return cached
    groups: dict[str, set[str]] = {}
    for index, synonyms in enumerate(SYNONYM_SETS):
        groups[f"syn{index}"] = {w for w in synonyms if " " not in w}
    for name, members in default_ontology().groups.items():
        groups[f"onto_{name}"] = {w for w in members if " " not in w}
    for name, members in _TAXONOMIC_GROUPS.items():
        groups[f"tax_{name}"] = set(members)
    for name, members in (extra_groups or {}).items():
        groups[f"extra_{name}"] = {w.lower() for w in members if " " not in w.lower()}

    # accumulate each word's anchors (a word may belong to several groups)
    word_anchors: dict[str, list[np.ndarray]] = {}
    for group_name, members in groups.items():
        anchor = _anchor(group_name, dimensions)
        for word in members:
            word_anchors.setdefault(word.lower(), []).append(anchor)

    store = VectorStore(dimensions=dimensions)
    for word, anchors in sorted(word_anchors.items()):
        vector = np.sum(anchors, axis=0) + _perturbation(word, dimensions)
        store.add(word, _normalize(vector))

    if counter_fit:
        # A gentle retrofit: enough sweeps to separate antonyms and topical
        # non-paraphrases without washing out the taxonomic anchors.
        fitter = CounterFitter(
            lexicon=ParaphraseLexicon(),
            iterations=2,
            attract_weight=0.3,
            repel_weight=0.3,
            preserve_weight=0.4,
        )
        store = fitter.fit(store)
    _DEFAULT_VECTORS_CACHE[cache_key] = store
    return store
