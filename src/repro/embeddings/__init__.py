"""Embedding substrate: co-occurrence vectors, paraphrase retrofit, expansion.

Stands in for the counter-fitted paraphrase embeddings the paper relies on
for descriptor expansion (see DESIGN.md, substitution table).
"""

from .cooccurrence import CooccurrenceCounter, CooccurrenceCounts
from .expansion import DescriptorExpander, ExpandedDescriptor
from .ontology import (
    ANTONYM_PAIRS,
    SYNONYM_SETS,
    TOPICAL_NON_PARAPHRASES,
    DomainOntology,
    default_ontology,
)
from .paraphrase import CounterFitter, ParaphraseLexicon
from .ppmi import PpmiSvdEmbedder
from .pretrained import (
    CITY_NAMES,
    COUNTRY_NAMES,
    build_default_vectors,
    clear_default_vectors_cache,
)
from .vectors import VectorStore

__all__ = [
    "ANTONYM_PAIRS",
    "CITY_NAMES",
    "COUNTRY_NAMES",
    "CooccurrenceCounter",
    "build_default_vectors",
    "clear_default_vectors_cache",
    "CooccurrenceCounts",
    "CounterFitter",
    "DescriptorExpander",
    "DomainOntology",
    "ExpandedDescriptor",
    "ParaphraseLexicon",
    "PpmiSvdEmbedder",
    "SYNONYM_SETS",
    "TOPICAL_NON_PARAPHRASES",
    "VectorStore",
    "default_ontology",
]
