"""Dense word-vector store with cosine similarity and nearest neighbours."""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import EmbeddingError


class VectorStore:
    """A mapping from word to dense vector with similarity queries.

    Vectors are L2-normalised on insertion so that the dot product equals
    cosine similarity.  Unknown words can optionally be given deterministic
    pseudo-random vectors (hash seeded) so that similarity queries never
    fail; those vectors are effectively orthogonal to everything else.
    """

    def __init__(self, dimensions: int, backfill_unknown: bool = True) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.dimensions = dimensions
        self.backfill_unknown = backfill_unknown
        self._vectors: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, word: str, vector: np.ndarray) -> None:
        """Insert (or overwrite) the vector for *word*."""
        array = np.asarray(vector, dtype=np.float64)
        if array.shape != (self.dimensions,):
            raise EmbeddingError(
                f"vector for {word!r} has shape {array.shape}, expected ({self.dimensions},)"
            )
        self._vectors[word.lower()] = _normalize(array)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def words(self) -> list[str]:
        return sorted(self._vectors)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def vector(self, word: str) -> np.ndarray:
        """The (normalised) vector of *word*; deterministic backfill if unknown."""
        low = word.lower()
        if low in self._vectors:
            return self._vectors[low]
        if not self.backfill_unknown:
            raise EmbeddingError(f"unknown word {word!r} and backfill disabled")
        return _hash_vector(low, self.dimensions)

    def similarity(self, word_a: str, word_b: str) -> float:
        """Cosine similarity in [-1, 1]; identical words give 1.0."""
        if word_a.lower() == word_b.lower():
            return 1.0
        return float(np.dot(self.vector(word_a), self.vector(word_b)))

    def nearest(self, word: str, k: int = 10, minimum: float = 0.0) -> list[tuple[str, float]]:
        """The *k* most similar in-vocabulary words with similarity >= minimum."""
        low = word.lower()
        query = self.vector(word)
        scored = []
        for other, vec in self._vectors.items():
            if other == low:
                continue
            score = float(np.dot(query, vec))
            if score >= minimum:
                scored.append((other, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:k]

    # ------------------------------------------------------------------
    # phrase-level helpers
    # ------------------------------------------------------------------
    def phrase_vector(self, phrase: str) -> np.ndarray:
        """Mean vector of a whitespace-tokenised phrase."""
        words = [w for w in phrase.lower().split() if w]
        if not words:
            raise EmbeddingError("cannot embed an empty phrase")
        stacked = np.vstack([self.vector(w) for w in words])
        return _normalize(stacked.mean(axis=0))

    def phrase_similarity(self, phrase_a: str, phrase_b: str) -> float:
        """Cosine similarity between mean phrase vectors."""
        if phrase_a.strip().lower() == phrase_b.strip().lower():
            return 1.0
        return float(np.dot(self.phrase_vector(phrase_a), self.phrase_vector(phrase_b)))

    def copy(self) -> "VectorStore":
        """Deep copy (used by the retrofit, which mutates vectors)."""
        clone = VectorStore(self.dimensions, backfill_unknown=self.backfill_unknown)
        for word, vec in self._vectors.items():
            clone._vectors[word] = vec.copy()
        return clone


def _normalize(vector: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vector)
    if norm == 0:
        return vector
    return vector / norm


def _hash_vector(word: str, dimensions: int) -> np.ndarray:
    """Deterministic pseudo-random unit vector derived from the word text."""
    digest = hashlib.sha256(word.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    return _normalize(rng.standard_normal(dimensions))
