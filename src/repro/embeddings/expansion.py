"""Descriptor expansion — Section 4.4.1(a) of the paper.

A *descriptor* is a short phrase such as ``"serves coffee"``.  Expansion
produces a set ``E(d) = {(d_1, k_1), ..., (d_m, k_m)}`` of alternate
phrasings with closeness scores in (0, 1], by substituting content words
with

* their paraphrases from the paraphrase lexicon / counter-fitted vectors,
* their domain-ontology siblings (e.g. other coffee drinks),

never with merely topically related words (the "serves tea" failure the
paper calls out).  The original descriptor is always included with score 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..nlp.lemmatizer import Lemmatizer
from .ontology import DomainOntology, default_ontology
from .paraphrase import ParaphraseLexicon
from .vectors import VectorStore


@dataclass(frozen=True)
class ExpandedDescriptor:
    """One alternate phrasing of a descriptor with its closeness score."""

    phrase: str
    score: float


class DescriptorExpander:
    """Expand descriptors into scored alternate phrasings.

    Parameters
    ----------
    lexicon:
        Paraphrase lexicon used for word-level substitutions.
    ontology:
        Domain ontology; members of the same group may substitute each other.
    vectors:
        Optional vector store; when provided, each substitution's score is
        the phrase-level cosine similarity to the original descriptor,
        otherwise fixed scores are used (0.8 for paraphrases, 0.7 for
        ontology siblings).
    max_expansions:
        Upper bound on the number of alternate phrasings returned
        (the paper: "descriptors now default to a fixed number of expanded
        terms").
    """

    def __init__(
        self,
        lexicon: ParaphraseLexicon | None = None,
        ontology: DomainOntology | None = None,
        vectors: VectorStore | None = None,
        max_expansions: int = 20,
    ) -> None:
        self.lexicon = lexicon or ParaphraseLexicon()
        self.ontology = ontology or default_ontology()
        self.vectors = vectors
        self.max_expansions = max_expansions
        self._lemmatizer = Lemmatizer()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def expand(self, descriptor: str) -> list[ExpandedDescriptor]:
        """Return the expansion set of *descriptor*, original included first."""
        words = [w for w in descriptor.lower().split() if w]
        if not words:
            return []
        per_word_options = [self._word_options(word) for word in words]

        expansions: dict[str, float] = {descriptor.lower(): 1.0}
        for combination in product(*per_word_options):
            phrase = " ".join(option for option, _ in combination)
            if phrase == descriptor.lower():
                continue
            score = self._score(descriptor, phrase, combination)
            previous = expansions.get(phrase, 0.0)
            if score > previous:
                expansions[phrase] = score

        ordered = sorted(expansions.items(), key=lambda item: (-item[1], item[0]))
        limited = ordered[: self.max_expansions]
        return [ExpandedDescriptor(phrase=p, score=s) for p, s in limited]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _word_options(self, word: str) -> list[tuple[str, float]]:
        """Substitution options for one word: (replacement, per-word score)."""
        lemma = self._lemmatizer.lemma(word)
        options: dict[str, float] = {word: 1.0}

        for source in {word, lemma}:
            for synonym in self.lexicon.synonyms(source):
                options.setdefault(synonym, 0.8)
            for sibling in self.ontology.related(source):
                options.setdefault(sibling, 0.7)
        return sorted(options.items(), key=lambda item: (-item[1], item[0]))

    def _score(
        self,
        original: str,
        phrase: str,
        combination: tuple[tuple[str, float], ...],
    ) -> float:
        if self.vectors is not None:
            similarity = self.vectors.phrase_similarity(original, phrase)
            # clamp into (0, 1]; an orthogonal phrase should score near zero
            return max(0.0, min(1.0, similarity))
        # Without vectors: the product of per-word substitution scores.
        score = 1.0
        for _, word_score in combination:
            score *= word_score
        return score
