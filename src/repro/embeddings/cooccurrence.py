"""Windowed co-occurrence counting over an annotated corpus.

This is the first stage of the corpus-trained embedding model (the stand-in
for off-the-shelf word vectors): count how often each pair of words appears
within a symmetric window, then hand the counts to the PPMI+SVD factoriser.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..nlp.types import Corpus, Sentence


@dataclass
class CooccurrenceCounts:
    """Sparse co-occurrence statistics over a fixed vocabulary."""

    vocabulary: list[str] = field(default_factory=list)
    word_counts: Counter = field(default_factory=Counter)
    pair_counts: Counter = field(default_factory=Counter)
    total_pairs: int = 0

    def index(self) -> dict[str, int]:
        """Word → vocabulary position."""
        return {word: i for i, word in enumerate(self.vocabulary)}


class CooccurrenceCounter:
    """Count word co-occurrences within a symmetric token window.

    Parameters
    ----------
    window:
        Number of tokens on each side considered context.
    min_count:
        Words appearing fewer times than this are dropped from the
        vocabulary (and from the pair counts).
    lowercase:
        Whether to fold case before counting (default True).
    skip_punctuation:
        Whether to ignore punctuation tokens (default True).
    """

    def __init__(
        self,
        window: int = 4,
        min_count: int = 2,
        lowercase: bool = True,
        skip_punctuation: bool = True,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.min_count = min_count
        self.lowercase = lowercase
        self.skip_punctuation = skip_punctuation

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def count_corpus(self, corpus: Corpus) -> CooccurrenceCounts:
        """Count over every sentence of an annotated corpus."""
        sentences = (sentence for _, sentence in corpus.all_sentences())
        return self.count_sentences(sentences)

    def count_sentences(self, sentences: Iterable[Sentence]) -> CooccurrenceCounts:
        """Count over an iterable of annotated sentences."""
        token_lists = []
        for sentence in sentences:
            words = [
                (tok.text.lower() if self.lowercase else tok.text)
                for tok in sentence
                if not (self.skip_punctuation and tok.pos == "PUNCT")
            ]
            if words:
                token_lists.append(words)
        return self.count_token_lists(token_lists)

    def count_token_lists(self, token_lists: list[list[str]]) -> CooccurrenceCounts:
        """Count over pre-tokenised sentences (lists of strings)."""
        word_counts: Counter = Counter()
        for words in token_lists:
            word_counts.update(words)
        vocabulary = sorted(
            word for word, count in word_counts.items() if count >= self.min_count
        )
        vocab_set = set(vocabulary)

        pair_counts: Counter = Counter()
        total = 0
        for words in token_lists:
            n = len(words)
            for i, word in enumerate(words):
                if word not in vocab_set:
                    continue
                for j in range(max(0, i - self.window), min(n, i + self.window + 1)):
                    if j == i:
                        continue
                    context = words[j]
                    if context in vocab_set:
                        pair_counts[(word, context)] += 1
                        total += 1

        kept_counts = Counter({w: c for w, c in word_counts.items() if w in vocab_set})
        return CooccurrenceCounts(
            vocabulary=vocabulary,
            word_counts=kept_counts,
            pair_counts=pair_counts,
            total_pairs=total,
        )
