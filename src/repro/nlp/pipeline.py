"""The annotation pipeline: raw text in, annotated :class:`Document` out.

This is the drop-in replacement for the spaCy / Google NL preprocessing step
of the paper (Section 2, "Preprocessing the input").  The pipeline chains
the tokenizer, POS tagger, lemmatiser, dependency parser and entity
recogniser, and assigns sentence ids in document order.
"""

from __future__ import annotations

from ..errors import PipelineError
from .dependency import DependencyParser
from .lemmatizer import Lemmatizer
from .ner import EntityRecognizer
from .pos import PosTagger
from .tokenizer import Tokenizer
from .types import Corpus, Document, Sentence, Token


class Pipeline:
    """Deterministic NLP annotation pipeline.

    Parameters
    ----------
    tokenizer, tagger, parser, recognizer, lemmatizer:
        Component overrides; each defaults to the rule-based implementation
        in this package.  Passing custom components is how the tests inject
        controlled annotations.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        tagger: PosTagger | None = None,
        parser: DependencyParser | None = None,
        recognizer: EntityRecognizer | None = None,
        lemmatizer: Lemmatizer | None = None,
    ) -> None:
        self.tokenizer = tokenizer or Tokenizer()
        self.tagger = tagger or PosTagger()
        self.parser = parser or DependencyParser()
        self.recognizer = recognizer or EntityRecognizer()
        self.lemmatizer = lemmatizer or Lemmatizer()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def annotate(self, text: str, doc_id: str = "doc0", first_sid: int = 0) -> Document:
        """Annotate *text* and return a :class:`Document`.

        ``first_sid`` sets the sentence id of the first sentence, so that a
        corpus built document-by-document can assign globally unique
        sentence ids (the indexes key postings by sentence id).
        """
        if text is None:
            raise PipelineError("cannot annotate None")
        sentences: list[Sentence] = []
        sid = first_sid
        for raw_sentence in self.tokenizer.split_sentences(text):
            sentence = self.annotate_sentence(raw_sentence, sid)
            if len(sentence) == 0:
                continue
            sentences.append(sentence)
            sid += 1
        return Document(doc_id=doc_id, sentences=sentences, text=text)

    def annotate_sentence(self, raw_sentence: str, sid: int = 0) -> Sentence:
        """Annotate a single sentence string."""
        words = self.tokenizer.tokenize(raw_sentence)
        if not words:
            return Sentence(sid=sid, tokens=[], text=raw_sentence)
        tags = self.tagger.tag(words)
        heads, labels = self.parser.parse(words, tags)
        entities = self.recognizer.recognize(words, tags)
        tokens = [
            Token(
                index=i,
                text=words[i],
                pos=tags[i],
                label=labels[i],
                head=heads[i],
                lemma=self.lemmatizer.lemma(words[i], tags[i]),
            )
            for i in range(len(words))
        ]
        for mention in entities:
            for i in range(mention.start, mention.end + 1):
                tokens[i].entity_type = mention.etype
        return Sentence(sid=sid, tokens=tokens, entities=entities, text=raw_sentence)

    def annotate_corpus(
        self, texts: dict[str, str] | list[str], name: str = "corpus"
    ) -> Corpus:
        """Annotate many documents with globally consecutive sentence ids.

        *texts* is either a list of document strings or a mapping from
        document id to document string.
        """
        if isinstance(texts, dict):
            items = list(texts.items())
        else:
            items = [(f"doc{i}", text) for i, text in enumerate(texts)]
        corpus = Corpus(name=name)
        next_sid = 0
        for doc_id, text in items:
            document = self.annotate(text, doc_id=doc_id, first_sid=next_sid)
            next_sid += len(document)
            corpus.documents.append(document)
        return corpus
