"""Deterministic part-of-speech tagger over the Universal tagset.

The tagger works in three passes:

1. closed-class lookup (determiners, pronouns, adpositions, conjunctions,
   auxiliaries, particles, punctuation, numbers),
2. open-class lexicon lookup (common verbs / adjectives / adverbs / nouns),
3. suffix and capitalisation heuristics for unknown words, with a light
   contextual repair pass (e.g. a word after a determiner that was guessed
   as VERB is re-tagged NOUN).

It does not attempt to rival statistical taggers; it only needs to be
consistent, fast, and produce the tag inventory KOKO queries reference
(``verb``, ``noun``, ``propn``, ``adj`` ...).
"""

from __future__ import annotations

from . import lexicon
from .lexicon import (
    ADJ_SUFFIXES,
    ADPOSITIONS,
    ADV_SUFFIXES,
    AUXILIARY_VERBS,
    COMMON_ADJECTIVES,
    COMMON_ADVERBS,
    COMMON_NOUNS,
    COMMON_VERBS,
    CONJUNCTIONS,
    DETERMINERS,
    MONTHS,
    NOUN_SUFFIXES,
    PARTICLES,
    PRONOUNS,
    VERB_SUFFIXES,
    looks_like_number,
)


class PosTagger:
    """Rule-based Universal-POS tagger.

    Parameters
    ----------
    extra_nouns, extra_verbs, extra_adjectives:
        Optional additional lexicon entries, used by tests and by corpora
        that introduce domain words not in the built-in lists.
    """

    def __init__(
        self,
        extra_nouns: set[str] | None = None,
        extra_verbs: set[str] | None = None,
        extra_adjectives: set[str] | None = None,
    ) -> None:
        self._nouns = set(COMMON_NOUNS)
        self._verbs = set(COMMON_VERBS)
        self._adjectives = set(COMMON_ADJECTIVES)
        if extra_nouns:
            self._nouns |= {w.lower() for w in extra_nouns}
        if extra_verbs:
            self._verbs |= {w.lower() for w in extra_verbs}
        if extra_adjectives:
            self._adjectives |= {w.lower() for w in extra_adjectives}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def tag(self, words: list[str]) -> list[str]:
        """Return one Universal POS tag per word in *words*."""
        tags = [self._tag_word(word, position) for position, word in enumerate(words)]
        self._contextual_repair(words, tags)
        return tags

    # ------------------------------------------------------------------
    # per-word tagging
    # ------------------------------------------------------------------
    def _tag_word(self, word: str, position: int) -> str:
        low = word.lower()

        if not any(ch.isalnum() for ch in word):
            return "PUNCT"
        if looks_like_number(word):
            return "NUM"
        if word.startswith("@") or word.startswith("#"):
            return "PROPN"

        if low in DETERMINERS:
            return "DET"
        if low in PRONOUNS:
            return "PRON"
        if low in AUXILIARY_VERBS:
            return "VERB"
        if low in ADPOSITIONS:
            return "ADP"
        if low in CONJUNCTIONS:
            return "CONJ"
        if low in PARTICLES:
            return "PRT"
        if low in COMMON_ADVERBS:
            return "ADV"
        if low in MONTHS:
            return "NOUN"

        if low in self._verbs:
            return "VERB"
        if low in self._adjectives:
            return "ADJ"
        if low in self._nouns:
            return "NOUN"

        # Capitalised words that are not sentence-initial are proper nouns;
        # sentence-initial capitalised unknown words are also treated as
        # proper nouns unless a suffix rule says otherwise.
        if word[0].isupper():
            if position > 0:
                return "PROPN"
            if not self._suffix_tag(low):
                return "PROPN"

        suffix_tag = self._suffix_tag(low)
        if suffix_tag:
            return suffix_tag
        return "NOUN"

    def _suffix_tag(self, low: str) -> str | None:
        if low.endswith(ADV_SUFFIXES) and len(low) > 4:
            return "ADV"
        if low.endswith(ADJ_SUFFIXES) and len(low) > 4:
            return "ADJ"
        if low.endswith(VERB_SUFFIXES) and len(low) > 4:
            return "VERB"
        if low.endswith(NOUN_SUFFIXES) and len(low) > 4:
            return "NOUN"
        return None

    # ------------------------------------------------------------------
    # contextual repair
    # ------------------------------------------------------------------
    def _contextual_repair(self, words: list[str], tags: list[str]) -> None:
        """Fix common one-token mistakes using the neighbouring tags in place."""
        n = len(words)
        for i in range(n):
            low = words[i].lower()
            # sentence-initial gerund acting as a modifier ("Baking chocolate
            # is ...") is an adjective, not the main verb
            if (
                i == 0
                and tags[i] == "VERB"
                and low.endswith("ing")
                and n > 1
                and tags[1] in {"NOUN", "PROPN"}
            ):
                tags[i] = "ADJ"
            # determiner/adjective followed by a word guessed VERB -> NOUN
            if (
                tags[i] == "VERB"
                and low not in AUXILIARY_VERBS
                and low not in COMMON_VERBS
                and i > 0
                and tags[i - 1] in {"DET", "ADJ", "NUM"}
            ):
                tags[i] = "NOUN"
            # "to" before a verb is a particle, before a noun an adposition
            if low == "to":
                if i + 1 < n and tags[i + 1] == "VERB":
                    tags[i] = "PRT"
                else:
                    tags[i] = "ADP"
            # "that"/"which" after a noun introduces a relative clause -> PRON
            if low in {"that", "which", "who"} and i > 0 and tags[i - 1] in {
                "NOUN",
                "PROPN",
            }:
                tags[i] = "PRON"
            # an ADJ directly followed by end of sentence after a copula stays ADJ;
            # an unknown NOUN between an auxiliary and a noun is likely ADJ
            if (
                tags[i] == "NOUN"
                and 0 < i < n - 1
                and words[i - 1].lower() in AUXILIARY_VERBS
                and tags[i + 1] in {"NOUN", "PROPN"}
                and low.endswith(ADJ_SUFFIXES)
            ):
                tags[i] = "ADJ"
