"""Rule-based dependency parser.

The parser builds a single rooted dependency tree per sentence using
POS-driven attachment rules.  It emits the parse-label inventory the paper's
examples use (``root``, ``nsubj``, ``dobj``, ``det``, ``amod``, ``nn``,
``prep``, ``pobj``, ``advmod``, ``acomp``, ``rcmod``, ``conj``, ``cc``,
``aux``, ``p`` ...).

Accuracy expectations: the KOKO engine, its indexes, and every experiment in
this repository treat the parser as a black-box annotation source.  What
matters is that the trees are deterministic, rooted, and acyclic, and that
linguistically regular constructions (subject-verb-object, noun compounds,
prepositional phrases, relative clauses, copular adjectives) receive the
labels the example queries in the paper look for.
"""

from __future__ import annotations

from .lexicon import AUXILIARY_VERBS, NEGATIONS

# Tags that may head a noun phrase.
_NOMINAL = {"NOUN", "PROPN", "PRON", "NUM"}
_RELATIVE_PRONOUNS = {"which", "that", "who", "whom", "whose"}


class DependencyParser:
    """Deterministic attachment-rule dependency parser.

    The public entry point is :meth:`parse`, which takes the words and POS
    tags of one sentence and returns ``(heads, labels)`` where ``heads[i]``
    is the index of token *i*'s head (``-1`` for the root) and ``labels[i]``
    is the parse label of the arc.
    """

    def parse(self, words: list[str], tags: list[str]) -> tuple[list[int], list[str]]:
        n = len(words)
        if n == 0:
            return [], []
        heads = [None] * n  # type: list[int | None]
        labels = ["dep"] * n

        root = self._find_root(words, tags)
        heads[root] = -1
        labels[root] = "root"

        verbs = self._main_verbs(words, tags, root)
        np_heads = self._attach_noun_phrases(words, tags, heads, labels)
        self._attach_relative_clauses(words, tags, heads, labels, np_heads, verbs)
        self._attach_aux_and_neg(words, tags, heads, labels, verbs, root)
        self._attach_subjects_objects(words, tags, heads, labels, np_heads, verbs, root)
        self._attach_prepositions(words, tags, heads, labels, np_heads, verbs, root)
        self._attach_adverbs_adjectives(words, tags, heads, labels, verbs, root)
        self._attach_conjunctions(words, tags, heads, labels, root)
        self._attach_punctuation(tags, heads, labels, root)
        self._attach_leftovers(heads, labels, root)
        self._break_cycles(heads, labels, root)

        return [h if h is not None else root for h in heads], labels

    # ------------------------------------------------------------------
    # root selection
    # ------------------------------------------------------------------
    def _find_root(self, words: list[str], tags: list[str]) -> int:
        # Prefer the first non-auxiliary verb; then the first verb; then the
        # first nominal; finally the first token.
        first_main = None
        for i, tag in enumerate(tags):
            if tag == "VERB" and words[i].lower() not in AUXILIARY_VERBS:
                first_main = i
                break
        first_any = None
        for i, tag in enumerate(tags):
            if tag == "VERB":
                first_any = i
                break
        if first_main is not None:
            # A copular main clause followed by a relative clause ("X is a
            # type of Y that is prepared ...") roots at the copula, not at
            # the verb inside the relative clause.
            if (
                first_any is not None
                and first_any < first_main
                and any(
                    words[k].lower() in _RELATIVE_PRONOUNS
                    for k in range(first_any + 1, first_main)
                )
            ):
                return first_any
            return first_main
        if first_any is not None:
            return first_any
        for i, tag in enumerate(tags):
            if tag in _NOMINAL:
                return i
        return 0

    def _main_verbs(self, words: list[str], tags: list[str], root: int) -> list[int]:
        verbs = [
            i
            for i, tag in enumerate(tags)
            if tag == "VERB" and words[i].lower() not in AUXILIARY_VERBS
        ]
        if root not in verbs and tags[root] == "VERB":
            verbs.append(root)
            verbs.sort()
        if not verbs:
            verbs = [root]
        return verbs

    # ------------------------------------------------------------------
    # noun phrases: determiners, adjectives, compounds
    # ------------------------------------------------------------------
    def _attach_noun_phrases(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
    ) -> list[int]:
        """Attach NP-internal modifiers; return the NP head indexes."""
        n = len(words)
        np_heads: list[int] = []
        i = 0
        while i < n:
            if tags[i] in {"DET", "ADJ", "NUM"} or tags[i] in {"NOUN", "PROPN"}:
                start = i
                j = i
                while j < n and tags[j] in {"DET", "ADJ", "NUM", "NOUN", "PROPN"}:
                    j += 1
                # head of the phrase = rightmost NOUN/PROPN in the run
                head = None
                for k in range(j - 1, start - 1, -1):
                    if tags[k] in {"NOUN", "PROPN"}:
                        head = k
                        break
                if head is not None:
                    for k in range(start, j):
                        if k == head or heads[k] is not None:
                            continue
                        if tags[k] == "DET":
                            heads[k], labels[k] = head, "det"
                        elif tags[k] == "ADJ":
                            heads[k], labels[k] = head, "amod"
                        elif tags[k] == "NUM":
                            heads[k], labels[k] = head, "num"
                        elif tags[k] in {"NOUN", "PROPN"}:
                            heads[k], labels[k] = head, "nn"
                    np_heads.append(head)
                i = j
            else:
                i += 1
        # standalone pronouns also head (degenerate) noun phrases
        for i, tag in enumerate(tags):
            if tag == "PRON" and words[i].lower() not in _RELATIVE_PRONOUNS:
                np_heads.append(i)
        np_heads = sorted(set(np_heads))
        return np_heads

    # ------------------------------------------------------------------
    # auxiliaries and negation
    # ------------------------------------------------------------------
    def _attach_aux_and_neg(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        verbs: list[int],
        root: int,
    ) -> None:
        n = len(words)
        for i in range(n):
            if heads[i] is not None or i == root:
                continue
            low = words[i].lower()
            if tags[i] == "VERB" and low in AUXILIARY_VERBS:
                target = self._next_in(verbs, after=i)
                # An auxiliary only modifies a following main verb when the
                # two are close and in the same clause (no comma between);
                # otherwise the auxiliary is a copula heading its own clause
                # and is left for the later attachment passes.
                if (
                    target is not None
                    and target != i
                    and target - i <= 4
                    and not any(words[k] == "," for k in range(i + 1, target))
                ):
                    heads[i], labels[i] = target, "aux"
            elif low in NEGATIONS and tags[i] in {"ADV", "PRT", "DET"}:
                target = self._nearest_verb(verbs, i)
                if target is not None and target != i:
                    heads[i], labels[i] = target, "neg"

    # ------------------------------------------------------------------
    # relative clauses: "... cream , which was delicious"
    # ------------------------------------------------------------------
    def _attach_relative_clauses(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        np_heads: list[int],
        verbs: list[int],
    ) -> None:
        n = len(words)
        for i in range(n):
            if words[i].lower() not in _RELATIVE_PRONOUNS:
                continue
            if tags[i] not in {"PRON", "DET"}:
                continue
            antecedent = self._previous_in(np_heads, before=i)
            clause_verb = self._next_verb_any(words, tags, after=i)
            if antecedent is None or clause_verb is None:
                continue
            # The relative clause must start right after the antecedent noun
            # phrase (allowing an intervening comma); otherwise the pronoun
            # belongs to some later construction.
            gap = [
                words[k]
                for k in range(antecedent + 1, i)
                if tags[k] != "PUNCT"
            ]
            if gap:
                continue
            if heads[clause_verb] is None and labels[clause_verb] != "root":
                heads[clause_verb], labels[clause_verb] = antecedent, "rcmod"
            if heads[i] is None:
                heads[i], labels[i] = clause_verb, "nsubj"

    # ------------------------------------------------------------------
    # subjects and objects
    # ------------------------------------------------------------------
    def _attach_subjects_objects(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        np_heads: list[int],
        verbs: list[int],
        root: int,
    ) -> None:
        n = len(words)
        used: set[int] = set()
        for verb in verbs:
            # subject: the nearest unattached NP head to the left of the verb
            subject = None
            for cand in reversed([h for h in np_heads if h < verb]):
                if heads[cand] is None and cand not in used:
                    subject = cand
                    break
            if subject is not None:
                heads[subject], labels[subject] = verb, "nsubj"
                used.add(subject)
            # object: the nearest unattached NP head to the right of the verb
            # that is not governed by a preposition
            for cand in [h for h in np_heads if h > verb]:
                if heads[cand] is not None or cand in used:
                    continue
                if self._has_preposition_before(words, tags, heads, cand, verb):
                    continue
                # a nominal right after a copular verb is an attribute
                label = "dobj"
                if words[verb].lower() in AUXILIARY_VERBS:
                    label = "attr"
                heads[cand], labels[cand] = verb, label
                used.add(cand)
                break

    def _has_preposition_before(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        np_head: int,
        verb: int,
    ) -> bool:
        """True when an ADP occurs between *verb* and the start of the NP."""
        start = np_head
        while start > 0 and heads[start - 1] == np_head:
            start -= 1
        for k in range(verb + 1, start):
            if tags[k] == "ADP":
                return True
        return False

    # ------------------------------------------------------------------
    # prepositional phrases
    # ------------------------------------------------------------------
    def _attach_prepositions(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        np_heads: list[int],
        verbs: list[int],
        root: int,
    ) -> None:
        n = len(words)
        for i in range(n):
            if tags[i] != "ADP" or heads[i] is not None or i == root:
                continue
            # attachment site: nearest verb or NP head to the left
            site = None
            for k in range(i - 1, -1, -1):
                if k in verbs or (tags[k] in _NOMINAL and labels[k] not in {"det", "nn", "amod"}):
                    site = k
                    break
                if tags[k] in _NOMINAL:
                    site = k
                    break
            if site is None:
                site = root
            if site != i:
                heads[i], labels[i] = site, "prep"
            # its object: nearest unattached NP head to the right
            for cand in [h for h in np_heads if h > i]:
                if heads[cand] is None and cand != i:
                    heads[cand], labels[cand] = i, "pobj"
                    break

    # ------------------------------------------------------------------
    # adverbs and predicative adjectives
    # ------------------------------------------------------------------
    def _attach_adverbs_adjectives(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        verbs: list[int],
        root: int,
    ) -> None:
        n = len(words)
        for i in range(n):
            if heads[i] is not None or i == root:
                continue
            if tags[i] == "ADV":
                target = self._nearest_verb(verbs, i)
                if target is not None and target != i:
                    heads[i], labels[i] = target, "advmod"
            elif tags[i] == "ADJ":
                # predicative adjective after a copula -> acomp; otherwise
                # attach to the nearest verb as acomp too (e.g. "was delicious")
                target = self._previous_verb_any(words, tags, before=i)
                if target is None:
                    target = self._nearest_verb(verbs, i)
                if target is not None and target != i:
                    heads[i], labels[i] = target, "acomp"
            elif tags[i] == "PRT":
                target = self._nearest_verb(verbs, i)
                if target is not None and target != i:
                    heads[i], labels[i] = target, "prt"

    # ------------------------------------------------------------------
    # coordination
    # ------------------------------------------------------------------
    def _attach_conjunctions(
        self,
        words: list[str],
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        root: int,
    ) -> None:
        n = len(words)
        for i in range(n):
            if tags[i] != "CONJ" or heads[i] is not None or i == root:
                continue
            # right conjunct: nearest unattached content word to the right
            right = None
            for k in range(i + 1, n):
                if heads[k] is None and k != root and tags[k] in {
                    "VERB",
                    "NOUN",
                    "PROPN",
                    "ADJ",
                }:
                    right = k
                    break
            # left conjunct: prefer a token of the same broad category
            # (verbs coordinate with verbs, nominals with nominals), falling
            # back to the nearest content word and finally the root.
            left = None
            if right is not None:
                group = self._category_group(tags[right])
                # The root is the preferred left conjunct when it has the
                # same category ("ate ... and also ate ..."), which keeps
                # coordinated main clauses out of relative-clause subtrees.
                if root < i and self._category_group(tags[root]) == group:
                    left = root
                else:
                    for k in range(i - 1, -1, -1):
                        if k != right and self._category_group(tags[k]) == group:
                            left = k
                            break
            if left is None:
                for k in range(i - 1, -1, -1):
                    if tags[k] not in {"PUNCT", "CONJ"}:
                        left = k
                        break
            if left is None:
                left = root
            if left != i:
                heads[i], labels[i] = left, "cc"
            if right is not None and right != left:
                heads[right], labels[right] = left, "conj"

    @staticmethod
    def _category_group(tag: str) -> str:
        if tag == "VERB":
            return "verbal"
        if tag in {"NOUN", "PROPN", "PRON", "NUM"}:
            return "nominal"
        if tag in {"ADJ", "ADV"}:
            return "modifier"
        return "other"

    # ------------------------------------------------------------------
    # punctuation and leftovers
    # ------------------------------------------------------------------
    def _attach_punctuation(
        self,
        tags: list[str],
        heads: list[int | None],
        labels: list[str],
        root: int,
    ) -> None:
        for i, tag in enumerate(tags):
            if tag == "PUNCT" and heads[i] is None and i != root:
                heads[i], labels[i] = root, "p"

    def _attach_leftovers(
        self, heads: list[int | None], labels: list[str], root: int
    ) -> None:
        for i, head in enumerate(heads):
            if head is None and i != root:
                heads[i], labels[i] = root, "dep"

    def _break_cycles(
        self, heads: list[int | None], labels: list[str], root: int
    ) -> None:
        """Reattach to the root any token whose head chain never reaches the root."""
        n = len(heads)
        for i in range(n):
            seen = set()
            node = i
            while node != root and heads[node] is not None and heads[node] != -1:
                if node in seen:
                    heads[i], labels[i] = root, "dep"
                    break
                seen.add(node)
                node = heads[node]  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # small search helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _next_in(candidates: list[int], after: int) -> int | None:
        for cand in candidates:
            if cand > after:
                return cand
        return None

    @staticmethod
    def _previous_in(candidates: list[int], before: int) -> int | None:
        previous = None
        for cand in candidates:
            if cand < before:
                previous = cand
            else:
                break
        return previous

    @staticmethod
    def _nearest_verb(verbs: list[int], index: int) -> int | None:
        if not verbs:
            return None
        return min(verbs, key=lambda v: (abs(v - index), v))

    @staticmethod
    def _next_verb_any(words: list[str], tags: list[str], after: int) -> int | None:
        for k in range(after + 1, len(words)):
            if tags[k] == "VERB":
                return k
        return None

    @staticmethod
    def _previous_verb_any(words: list[str], tags: list[str], before: int) -> int | None:
        for k in range(before - 1, -1, -1):
            if tags[k] == "VERB":
                return k
        return None
