"""Lexical resources used by the deterministic NLP pipeline.

The paper's KOKO prototype obtains its annotations from spaCy or the Google
Cloud NL API.  Neither is available offline here, so the pipeline in this
package is driven by explicit word lists and suffix rules.  This module holds
those resources: closed-class word lists for POS tagging, verb/noun suffix
heuristics, gazetteers used by the NER component, and a small set of
irregular verb forms for lemmatisation.

The lists are intentionally sized for the synthetic corpora shipped with the
repository (see ``repro.corpora``) while remaining reasonable for arbitrary
English text: unknown words fall back to suffix and capitalisation rules.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Closed-class words (exhaustive enough for the corpora in this repo)
# ----------------------------------------------------------------------
DETERMINERS = {
    "a", "an", "the", "this", "that", "these", "those", "some", "any",
    "each", "every", "no", "another", "such", "both", "either", "neither",
    "which", "whose", "what",
    # possessive determiners
    "my", "your", "his", "her", "our", "their", "its",
}

PRONOUNS = {
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us",
    "them", "myself", "yourself", "himself", "herself", "itself",
    "ourselves", "themselves", "who", "whom", "there", "mine", "yours",
    "hers", "ours", "theirs", "someone", "something", "anyone", "anything",
    "everyone", "everything", "nobody", "nothing",
}

ADPOSITIONS = {
    "in", "on", "at", "by", "for", "with", "about", "against", "between",
    "into", "through", "during", "before", "after", "above", "below", "to",
    "from", "up", "down", "of", "off", "over", "under", "near", "since",
    "until", "among", "within", "without", "along", "across", "behind",
    "beyond", "around", "per", "like", "as", "than", "via", "inside",
    "outside", "toward", "towards", "upon",
}

CONJUNCTIONS = {
    "and", "or", "but", "nor", "so", "yet", "because", "although", "though",
    "while", "whereas", "if", "unless", "when", "whenever", "where",
    "wherever", "that", "whether",
}

AUXILIARY_VERBS = {
    "is", "am", "are", "was", "were", "be", "been", "being",
    "has", "have", "had", "having",
    "do", "does", "did", "doing",
    "will", "would", "shall", "should", "can", "could", "may", "might",
    "must",
}

COMMON_ADVERBS = {
    "so", "also", "very", "really", "quite", "too", "just", "now", "then", "here",
    "there", "always", "never", "often", "sometimes", "usually", "recently",
    "soon", "already", "still", "again", "almost", "only", "even", "well",
    "not", "n't", "today", "yesterday", "tomorrow", "early", "late",
    "together", "especially", "highly", "extremely", "finally", "currently",
    "originally", "previously", "formerly",
}

PARTICLES = {"to", "'s", "not", "n't"}

NEGATIONS = {"not", "n't", "never", "no"}

COMMON_VERBS = {
    "ate", "eat", "eats", "eating", "eaten",
    "serve", "serves", "served", "serving",
    "sell", "sells", "sold", "selling",
    "open", "opens", "opened", "opening",
    "visit", "visits", "visited", "visiting",
    "love", "loves", "loved", "loving",
    "like", "likes", "liked", "liking",
    "make", "makes", "made", "making",
    "brew", "brews", "brewed", "brewing",
    "roast", "roasts", "roasted", "roasting",
    "hire", "hires", "hired", "hiring",
    "employ", "employs", "employed", "employing",
    "win", "wins", "won", "winning",
    "play", "plays", "played", "playing",
    "host", "hosts", "hosted", "hosting",
    "go", "goes", "went", "gone", "going",
    "get", "gets", "got", "gotten", "getting",
    "see", "sees", "saw", "seen", "seeing",
    "say", "says", "said", "saying",
    "call", "calls", "called", "calling",
    "know", "knows", "knew", "known", "knowing",
    "write", "writes", "wrote", "written", "writing",
    "bear", "bears", "bore", "born", "borne",
    "marry", "marries", "married", "marrying",
    "found", "founded", "founds", "founding",
    "locate", "located", "locates", "locating",
    "move", "moved", "moves", "moving",
    "live", "lived", "lives", "living",
    "work", "worked", "works", "working",
    "buy", "buys", "bought", "buying",
    "bring", "brings", "brought", "bringing",
    "feel", "feels", "felt", "feeling",
    "take", "takes", "took", "taken", "taking",
    "give", "gives", "gave", "given", "giving",
    "enjoy", "enjoys", "enjoyed", "enjoying",
    "prepare", "prepares", "prepared", "preparing",
    "manufacture", "manufactures", "manufactured", "manufacturing",
    "offer", "offers", "offered", "offering",
    "feature", "features", "featured", "featuring",
    "pour", "pours", "poured", "pouring",
    "drink", "drinks", "drank", "drunk", "drinking",
    "become", "becomes", "became", "becoming",
    "begin", "begins", "began", "begun", "beginning",
    "start", "starts", "started", "starting",
    "announce", "announces", "announced", "announcing",
    "launch", "launches", "launched", "launching",
    "describe", "describes", "described", "describing",
    "release", "releases", "released", "releasing",
    "defeat", "defeats", "defeated", "defeating",
    "beat", "beats", "beaten", "beating",
    "score", "scores", "scored", "scoring",
    "train", "trains", "trained", "training",
    "compete", "competes", "competed", "competing",
    "watch", "watches", "watched", "watching",
    "finish", "finishes", "finished", "finishing",
    "receive", "receives", "received", "receiving",
    "graduate", "graduates", "graduated", "graduating",
    "sleep", "sleeps", "slept", "sleeping",
    "run", "runs", "ran", "running",
}

COMMON_ADJECTIVES = {
    "delicious", "salty", "sweet", "bitter", "happy", "sad", "great", "good",
    "bad", "best", "better", "worst", "new", "old", "young", "big", "small",
    "large", "little", "long", "short", "tall", "hot", "cold", "warm",
    "fresh", "local", "famous", "popular", "excellent", "amazing",
    "wonderful", "beautiful", "friendly", "cozy", "tasty", "perfect",
    "talented", "renowned", "award-winning", "specialty", "artisanal",
    "locally-roasted", "single-origin", "upcoming", "bright", "airy",
    "favorite", "favourite", "main", "former", "early", "late",
    "professional", "national", "international", "public", "several",
    "asian", "european", "american", "star", "grand", "central", "proud",
    "excited", "glad", "grateful", "first", "second", "third", "last",
    "next", "important", "major", "dark", "light", "single", "married",
    "baking", "iced", "signature", "seasonal", "annual", "daily", "weekly",
}

COMMON_NOUNS = {
    "cake", "cheese", "cheesecake", "cream", "ice", "pie", "peanut",
    "peanuts", "food", "coffee", "espresso", "cappuccino", "macchiato",
    "latte", "mocha", "americano", "tea", "barista", "baristas", "cafe",
    "cafes", "shop", "shops", "store", "stores", "menu", "cup", "cups",
    "roaster", "roasters", "bean", "beans", "grocery", "city", "cities",
    "country", "countries", "capital", "team", "teams", "game", "games",
    "match", "season", "league", "championship", "stadium", "arena", "park",
    "gym", "airport", "station", "mall", "library", "school", "hospital",
    "restaurant", "museum", "hotel", "theater", "theatre", "beach",
    "player", "players", "coach", "fans", "fan", "goal", "goals", "score",
    "moment", "moments", "day", "week", "month", "year", "years", "time",
    "morning", "evening", "afternoon", "night", "birthday", "wedding",
    "family", "friend", "friends", "wife", "husband", "daughter", "son",
    "mother", "father", "brother", "sister", "dog", "cat", "baby", "job",
    "work", "project", "promotion", "exam", "test", "dinner", "lunch",
    "breakfast", "article", "articles", "blog", "post", "writer", "author",
    "actor", "actress", "singer", "musician", "engineer", "scientist",
    "professor", "director", "president", "minister", "mayor", "type",
    "kind", "variety", "town", "village", "region", "district",
    "neighborhood", "street", "avenue", "road", "corner", "machine",
    "espresso", "pour-over", "press", "title", "name", "names", "people",
    "person", "world", "history", "career", "life", "university", "college",
    "company", "business", "owner", "owners", "location", "place", "places",
    "chocolate", "vanilla", "caramel", "pastry", "pastries", "croissant",
    "sandwich", "sandwiches", "cookie", "cookies", "brunch", "week",
    "opening", "celebration", "festival", "competition", "champion",
    "soccer", "football", "basketball", "baseball", "hockey", "tennis",
    "victory", "win", "defeat", "crowd", "ticket", "tickets", "tonight",
}

# Month names for DATE recognition.
MONTHS = {
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
}

# ----------------------------------------------------------------------
# Suffix heuristics for open-class tagging of unknown words
# ----------------------------------------------------------------------
ADJ_SUFFIXES = ("ous", "ful", "ive", "able", "ible", "al", "ic", "ish", "less", "est")
ADV_SUFFIXES = ("ly",)
NOUN_SUFFIXES = (
    "tion", "sion", "ment", "ness", "ity", "ship", "ance", "ence", "ery",
    "ism", "ist", "er", "or", "age",
)
VERB_SUFFIXES = ("ize", "ise", "ify", "ate", "ing", "ed")

# ----------------------------------------------------------------------
# Irregular verb lemmas (inflected form -> lemma)
# ----------------------------------------------------------------------
IRREGULAR_VERB_LEMMAS = {
    "ate": "eat", "eaten": "eat", "eats": "eat",
    "was": "be", "were": "be", "is": "be", "are": "be", "am": "be",
    "been": "be", "being": "be",
    "went": "go", "gone": "go", "goes": "go",
    "had": "have", "has": "have",
    "did": "do", "does": "do", "done": "do",
    "said": "say", "says": "say",
    "made": "make", "makes": "make",
    "got": "get", "gotten": "get", "gets": "get",
    "saw": "see", "seen": "see", "sees": "see",
    "took": "take", "taken": "take", "takes": "take",
    "gave": "give", "given": "give", "gives": "give",
    "bought": "buy", "buys": "buy",
    "brought": "bring", "brings": "bring",
    "felt": "feel", "feels": "feel",
    "won": "win", "wins": "win",
    "sold": "sell", "sells": "sell",
    "wrote": "write", "written": "write", "writes": "write",
    "knew": "know", "known": "know", "knows": "know",
    "became": "become", "becomes": "become",
    "began": "begin", "begun": "begin", "begins": "begin",
    "bore": "bear", "born": "bear", "borne": "bear",
    "drank": "drink", "drunk": "drink", "drinks": "drink",
    "beaten": "beat", "beats": "beat",
}

# ----------------------------------------------------------------------
# Gazetteers for named-entity recognition.  The corpora generators import
# these same lists, which keeps gold annotations and NER consistent.
# ----------------------------------------------------------------------
GAZETTEER_GPE = {
    "china", "japan", "france", "germany", "italy", "spain", "brazil",
    "canada", "mexico", "india", "australia", "england", "portugal",
    "beijing", "tokyo", "paris", "berlin", "rome", "madrid", "london",
    "lisbon", "sydney", "toronto", "seattle", "portland", "chicago",
    "boston", "austin", "denver", "oakland", "brooklyn", "manhattan",
    "melbourne", "oslo", "vienna", "prague", "dublin", "amsterdam",
    "barcelona", "milan", "kyoto", "osaka", "shanghai", "mumbai",
    "san francisco", "new york", "los angeles", "united states",
    "south korea", "seoul", "reykjavik", "copenhagen", "helsinki",
    "stockholm", "zurich", "geneva", "brussels", "lyon", "marseille",
}

GAZETTEER_PERSON_FIRST = {
    "anna", "john", "mary", "james", "linda", "robert", "patricia",
    "michael", "jennifer", "william", "elizabeth", "david", "barbara",
    "richard", "susan", "joseph", "jessica", "thomas", "sarah", "charles",
    "karen", "daniel", "nancy", "matthew", "lisa", "anthony", "betty",
    "mark", "sandra", "donald", "ashley", "steven", "emily", "paul",
    "donna", "andrew", "michelle", "joshua", "carol", "kenneth", "amanda",
    "kevin", "melissa", "brian", "deborah", "george", "stephanie",
    "edward", "rebecca", "ronald", "laura", "timothy", "helen", "jason",
    "sharon", "jeffrey", "cynthia", "ryan", "kathleen", "jacob", "amy",
    "gary", "angela", "nicholas", "shirley", "eric", "brenda", "cyd",
    "alys", "vera", "hidekazu", "alon", "wang", "sofia", "marco", "elena",
    "hiro", "yuki", "ines", "pedro", "lucas", "clara", "felix", "nora",
}

GAZETTEER_PERSON_LAST = {
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "charisse", "thomas", "tanaka", "sato", "suzuki",
    "kobayashi", "watanabe", "silva", "santos", "costa", "rossi", "ferrari",
    "bianchi", "moreau", "dubois", "lefevre", "novak", "kowalski",
}

GAZETTEER_ORG_SUFFIX = {
    "inc", "inc.", "corp", "corp.", "ltd", "ltd.", "llc", "co", "co.",
    "company", "corporation", "university", "institute", "college",
    "laboratories", "labs", "magazine", "press", "times", "united", "fc",
}

# Facility-indicating head nouns (used by NER to type capitalised spans).
FACILITY_HEAD_NOUNS = {
    "stadium", "arena", "park", "gym", "airport", "station", "mall",
    "library", "museum", "center", "centre", "hall", "field", "court",
    "garden", "gardens", "plaza", "bridge", "tower", "square",
}

TEAM_HEAD_NOUNS = {
    "united", "city", "rovers", "wanderers", "athletic", "fc", "sc",
    "tigers", "lions", "eagles", "hawks", "bears", "wolves", "sharks",
    "dragons", "giants", "royals", "rangers", "warriors", "knights",
    "falcons", "panthers", "bulls", "raptors", "comets", "stars",
}

CAFE_NAME_KEYWORDS = {
    "cafe", "café", "coffee", "roasters", "roastery", "espresso", "brew",
    "beans", "grind", "press", "cup", "kettle", "bakery",
}


def looks_like_number(word: str) -> bool:
    """True for digit strings, decimals, ordinals and four-digit years."""
    stripped = word.replace(",", "").replace(".", "")
    if stripped.isdigit():
        return True
    lowered = word.lower()
    if lowered.endswith(("st", "nd", "rd", "th")) and lowered[:-2].isdigit():
        return True
    return False
