"""Light-weight lemmatiser.

Descriptor matching, IKE patterns, and the NELL bootstrapper all compare
words at the lemma level so that "serves" matches "serve" and "baristas"
matches "barista".  This lemmatiser handles irregular verbs through a table
and regular inflection through suffix stripping.
"""

from __future__ import annotations

from .lexicon import IRREGULAR_VERB_LEMMAS


class Lemmatizer:
    """Rule-and-table lemmatiser for English inflection."""

    def lemma(self, word: str, pos: str | None = None) -> str:
        """Return the lemma of *word* given an optional Universal POS tag."""
        low = word.lower()
        if low in IRREGULAR_VERB_LEMMAS:
            return IRREGULAR_VERB_LEMMAS[low]
        if pos in (None, "VERB"):
            candidate = self._strip_verb(low)
            if candidate != low:
                return candidate
        if pos in (None, "NOUN", "PROPN"):
            candidate = self._strip_noun(low)
            if candidate != low:
                return candidate
        if pos == "ADJ":
            candidate = self._strip_adjective(low)
            if candidate != low:
                return candidate
        return low

    # ------------------------------------------------------------------
    # suffix stripping
    # ------------------------------------------------------------------
    @staticmethod
    def _strip_verb(low: str) -> str:
        if low.endswith("ies") and len(low) > 4:
            return low[:-3] + "y"
        if low.endswith("sses") or low.endswith("ches") or low.endswith("shes"):
            return low[:-2]
        if low.endswith("es") and len(low) > 4 and low[-3] in "sxz":
            return low[:-2]
        if low.endswith("s") and not low.endswith("ss") and len(low) > 3:
            return low[:-1]
        if low.endswith("ing") and len(low) > 5:
            stem = low[:-3]
            if len(stem) > 2 and stem[-1] == stem[-2]:
                stem = stem[:-1]
            return stem if len(stem) > 2 else low
        if low.endswith("ied") and len(low) > 4:
            return low[:-3] + "y"
        if low.endswith("ed") and len(low) > 4:
            stem = low[:-2]
            if len(stem) > 2 and stem[-1] == stem[-2]:
                stem = stem[:-1]
            return stem if len(stem) > 2 else low
        return low

    @staticmethod
    def _strip_noun(low: str) -> str:
        if low.endswith("ies") and len(low) > 4:
            return low[:-3] + "y"
        if low.endswith(("ches", "shes", "sses", "xes", "zes")):
            return low[:-2]
        if low.endswith("s") and not low.endswith(("ss", "us", "is")) and len(low) > 3:
            return low[:-1]
        return low

    @staticmethod
    def _strip_adjective(low: str) -> str:
        if low.endswith("est") and len(low) > 5:
            return low[:-3]
        if low.endswith("er") and len(low) > 4:
            return low[:-2]
        return low
