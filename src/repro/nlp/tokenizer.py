"""Sentence splitting and word tokenisation.

The tokenizer is deliberately rule based and deterministic: the same input
always yields the same token sequence, which keeps index construction and
query evaluation reproducible across runs (a property the experiments rely
on when comparing index designs).
"""

from __future__ import annotations

import re

# Abbreviations that end with a period but do not terminate a sentence.
_ABBREVIATIONS = {
    "mr.", "mrs.", "ms.", "dr.", "prof.", "st.", "ave.", "av.", "jr.",
    "sr.", "vs.", "etc.", "e.g.", "i.e.", "a.m.", "p.m.", "no.", "inc.",
    "corp.", "ltd.", "co.", "u.s.", "u.k.",
}

# A token is: a word with optional internal hyphens/apostrophes, a number
# (with optional decimal part), or a single punctuation character.
_TOKEN_RE = re.compile(
    r"""
    [A-Za-z]+(?:[-'’][A-Za-z]+)*   # words, hyphenated words, contractions
    | \d+(?:[.,]\d+)*              # numbers
    | @\w+                         # @-handles (tweets)
    | \#\w+                        # hashtags (tweets)
    | [^\w\s]                      # any single punctuation mark
    """,
    re.VERBOSE,
)

_SENTENCE_END = {".", "!", "?"}


def tokenize_words(text: str) -> list[str]:
    """Split *text* into word and punctuation tokens."""
    return _TOKEN_RE.findall(text)


def split_sentences(text: str) -> list[str]:
    """Split raw *text* into sentence strings.

    Splitting happens on ``.``, ``!`` and ``?`` followed by whitespace and an
    upper-case letter (or end of text), with an abbreviation guard, and on
    blank lines.  The terminator stays attached to its sentence.
    """
    sentences: list[str] = []
    for block in re.split(r"\n\s*\n", text):
        block = block.strip()
        if not block:
            continue
        sentences.extend(_split_block(block))
    return sentences


def _split_block(block: str) -> list[str]:
    sentences: list[str] = []
    start = 0
    i = 0
    length = len(block)
    while i < length:
        char = block[i]
        if char in _SENTENCE_END:
            # Look back for an abbreviation such as "Dr." or "p.m.".
            tail = block[max(start, i - 6) : i + 1].lower()
            is_abbrev = char == "." and any(
                tail.endswith(abbr) for abbr in _ABBREVIATIONS
            )
            # A period inside a number ("3.5") does not end a sentence.
            is_decimal = (
                char == "."
                and 0 < i < length - 1
                and block[i - 1].isdigit()
                and block[i + 1].isdigit()
            )
            next_non_space = _next_non_space(block, i + 1)
            boundary_ok = next_non_space is None or (
                block[next_non_space].isupper()
                or block[next_non_space].isdigit()
                or block[next_non_space] in "\"'("
            )
            if not is_abbrev and not is_decimal and boundary_ok:
                sentence = block[start : i + 1].strip()
                if sentence:
                    sentences.append(sentence)
                start = i + 1
        i += 1
    trailing = block[start:].strip()
    if trailing:
        sentences.append(trailing)
    return sentences


def _next_non_space(text: str, index: int) -> int | None:
    while index < len(text):
        if not text[index].isspace():
            return index
        index += 1
    return None


class Tokenizer:
    """Object wrapper bundling sentence splitting and word tokenisation."""

    def split_sentences(self, text: str) -> list[str]:
        """Return the sentence strings of *text*."""
        return split_sentences(text)

    def tokenize(self, sentence: str) -> list[str]:
        """Return the word tokens of a single *sentence*."""
        return tokenize_words(sentence)

    def tokenize_document(self, text: str) -> list[list[str]]:
        """Split *text* into sentences and tokenise each one."""
        return [self.tokenize(sent) for sent in self.split_sentences(text)]
