"""Named-entity recognition via gazetteers and capitalisation heuristics.

KOKO queries frequently bind variables to entity mentions (``a:Entity``,
``a:GPE``, ``a:Person``), and the entity index of Section 3.1 stores one
triple per mention.  The recogniser implemented here finds contiguous
capitalised spans, decides a type from gazetteers and head-noun cues, and
also recognises dates.  Entity mentions never cross sentence boundaries.
"""

from __future__ import annotations

from .lexicon import (
    CAFE_NAME_KEYWORDS,
    FACILITY_HEAD_NOUNS,
    GAZETTEER_GPE,
    GAZETTEER_ORG_SUFFIX,
    GAZETTEER_PERSON_FIRST,
    GAZETTEER_PERSON_LAST,
    MONTHS,
    TEAM_HEAD_NOUNS,
    looks_like_number,
)
from .types import EntityMention, detokenize

# Sentence-initial words we never treat as the start of a proper-noun span.
_STOP_INITIAL = {
    "the", "a", "an", "i", "we", "he", "she", "it", "they", "this", "that",
    "these", "those", "my", "our", "his", "her", "their", "its", "there",
    "here", "today", "yesterday", "tomorrow", "when", "while", "after",
    "before", "during", "if", "although", "once", "one",
}


class EntityRecognizer:
    """Gazetteer + heuristic entity mention detector.

    Parameters
    ----------
    extra_gazetteers:
        Optional mapping from entity type to additional lower-cased full
        names, e.g. ``{"ORGANIZATION": {"blue bottle coffee"}}``.  The
        synthetic corpora register their generated names here so that NER
        coverage is realistic rather than magically perfect: registration
        is optional and the heuristics still apply to unregistered names.
    """

    def __init__(self, extra_gazetteers: dict[str, set[str]] | None = None) -> None:
        self._extra: dict[str, set[str]] = {
            etype: {name.lower() for name in names}
            for etype, names in (extra_gazetteers or {}).items()
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def recognize(self, words: list[str], tags: list[str]) -> list[EntityMention]:
        """Return the entity mentions of one sentence.

        Three mention sources, in priority order: capitalised spans (typed
        via gazetteers and head-noun cues), dates, and common-noun chunks
        (typed OTHER) — the last mirrors the behaviour of the Google NL
        annotator used in the paper's Figure 1, where "chocolate ice cream"
        and "grocery store" are entities of type OTHER / LOCATION.
        """
        mentions = self._capitalized_spans(words, tags)
        mentions.extend(self._date_spans(words, tags, mentions))
        mentions.extend(self._noun_chunks(words, tags, mentions))
        mentions.sort(key=lambda m: m.start)
        return mentions

    def _noun_chunks(
        self,
        words: list[str],
        tags: list[str],
        existing: list[EntityMention],
    ) -> list[EntityMention]:
        """Maximal runs of common nouns not covered by another mention."""
        covered = set()
        for mention in existing:
            covered.update(range(mention.start, mention.end + 1))
        mentions: list[EntityMention] = []
        n = len(words)
        i = 0
        while i < n:
            if tags[i] == "NOUN" and i not in covered:
                j = i
                while j < n and tags[j] == "NOUN" and j not in covered:
                    j += 1
                mentions.append(
                    EntityMention(
                        start=i,
                        end=j - 1,
                        etype="OTHER",
                        text=detokenize(words[i:j]),
                    )
                )
                i = j
            else:
                i += 1
        return mentions

    def add_gazetteer(self, etype: str, names: set[str]) -> None:
        """Register additional known names for *etype*."""
        bucket = self._extra.setdefault(etype, set())
        bucket.update(name.lower() for name in names)

    # ------------------------------------------------------------------
    # capitalised spans
    # ------------------------------------------------------------------
    def _capitalized_spans(
        self, words: list[str], tags: list[str]
    ) -> list[EntityMention]:
        mentions: list[EntityMention] = []
        n = len(words)
        i = 0
        while i < n:
            if self._starts_span(words, tags, i):
                j = i
                while j < n and self._continues_span(words, tags, i, j):
                    j += 1
                # trim trailing connector words ("of", "the", "&")
                while j - 1 > i and words[j - 1].lower() in {"of", "the", "&", "and"}:
                    j -= 1
                if j > i:
                    text = detokenize(words[i:j])
                    etype = self._classify(words[i:j], text)
                    mentions.append(
                        EntityMention(start=i, end=j - 1, etype=etype, text=text)
                    )
                i = j
            else:
                i += 1
        return mentions

    def _starts_span(self, words: list[str], tags: list[str], i: int) -> bool:
        word = words[i]
        if not word or not word[0].isupper() or not word[0].isalpha():
            return False
        if i == 0 and word.lower() in _STOP_INITIAL:
            return False
        if tags[i] in {"DET", "ADP", "CONJ", "PRON", "PUNCT", "PRT"}:
            return False
        # Sentence-initial common words ("Baking", "She") start a span only
        # when followed by another capitalised word.
        if i == 0 and tags[i] != "PROPN":
            return (
                i + 1 < len(words)
                and words[i + 1][:1].isupper()
                and words[i + 1][:1].isalpha()
            )
        return tags[i] in {"PROPN", "NOUN", "ADJ", "NUM"} or word[0].isupper()

    def _continues_span(
        self, words: list[str], tags: list[str], start: int, j: int
    ) -> bool:
        if j == start:
            return True
        word = words[j]
        low = word.lower()
        if word[:1].isupper() and word[:1].isalpha():
            return tags[j] not in {"PUNCT"}
        # lower-case connectors inside names ("University of Tokyo",
        # "Cup & Kettle") continue the span when followed by a capital.
        # "and" is NOT a connector: "China and Japan" is a coordination of
        # two mentions, not one mention.
        if low in {"of", "the", "&"} and j + 1 < len(words):
            nxt = words[j + 1]
            return nxt[:1].isupper() and nxt[:1].isalpha()
        return False

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _classify(self, span_words: list[str], text: str) -> str:
        low_text = text.lower()
        lows = [w.lower() for w in span_words]

        for etype, names in self._extra.items():
            if low_text in names:
                return etype

        if all(w in MONTHS or looks_like_number(w) for w in lows):
            return "DATE"
        if low_text in GAZETTEER_GPE or all(w in GAZETTEER_GPE for w in lows):
            return "GPE"
        if any(w in GAZETTEER_ORG_SUFFIX for w in lows):
            return "ORGANIZATION"
        if any(w in TEAM_HEAD_NOUNS for w in lows) and len(lows) >= 2:
            return "TEAM"
        if any(w in FACILITY_HEAD_NOUNS for w in lows):
            return "FACILITY"
        if any(w in CAFE_NAME_KEYWORDS for w in lows):
            return "ORGANIZATION"
        if lows and lows[0] in GAZETTEER_PERSON_FIRST:
            if len(lows) == 1 or lows[-1] in GAZETTEER_PERSON_LAST or len(lows) == 2:
                return "PERSON"
        if lows and lows[-1] in GAZETTEER_PERSON_LAST:
            return "PERSON"
        return "OTHER"

    # ------------------------------------------------------------------
    # dates: "1 December 1900", "December 1900", "in 1911"
    # ------------------------------------------------------------------
    def _date_spans(
        self,
        words: list[str],
        tags: list[str],
        existing: list[EntityMention],
    ) -> list[EntityMention]:
        covered = set()
        for mention in existing:
            covered.update(range(mention.start, mention.end + 1))
        mentions: list[EntityMention] = []
        n = len(words)
        i = 0
        while i < n:
            if i in covered:
                i += 1
                continue
            low = words[i].lower()
            if low in MONTHS:
                start = i
                end = i
                if i > 0 and looks_like_number(words[i - 1]) and (i - 1) not in covered:
                    start = i - 1
                if i + 1 < n and looks_like_number(words[i + 1]):
                    end = i + 1
                mentions.append(
                    EntityMention(
                        start=start,
                        end=end,
                        etype="DATE",
                        text=detokenize(words[start : end + 1]),
                    )
                )
                i = end + 1
                continue
            if looks_like_number(words[i]) and self._looks_like_year(words[i]):
                mentions.append(
                    EntityMention(start=i, end=i, etype="DATE", text=words[i])
                )
            i += 1
        return mentions

    @staticmethod
    def _looks_like_year(word: str) -> bool:
        return word.isdigit() and len(word) == 4 and 1000 <= int(word) <= 2999
