"""NLP substrate: tokenisation, tagging, parsing, NER, clause segmentation.

This subpackage replaces the spaCy / Google Cloud NL preprocessing used by
the original KOKO prototype with a deterministic, dependency-free pipeline
(see DESIGN.md, substitution table).
"""

from .clauses import CanonicalClause, ClauseSegmenter
from .dependency import DependencyParser
from .lemmatizer import Lemmatizer
from .ner import EntityRecognizer
from .pipeline import Pipeline
from .pos import PosTagger
from .tokenizer import Tokenizer, split_sentences, tokenize_words
from .types import (
    ENTITY_TYPES,
    PARSE_LABELS,
    UNIVERSAL_POS_TAGS,
    Corpus,
    Document,
    EntityMention,
    Sentence,
    Span,
    Token,
    detokenize,
)

__all__ = [
    "CanonicalClause",
    "ClauseSegmenter",
    "Corpus",
    "DependencyParser",
    "Document",
    "ENTITY_TYPES",
    "EntityMention",
    "EntityRecognizer",
    "Lemmatizer",
    "PARSE_LABELS",
    "Pipeline",
    "PosTagger",
    "Sentence",
    "Span",
    "Token",
    "Tokenizer",
    "UNIVERSAL_POS_TAGS",
    "detokenize",
    "split_sentences",
    "tokenize_words",
]
