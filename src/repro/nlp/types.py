"""Core annotation data model produced by the NLP pipeline.

The KOKO engine (and every index described in the paper) consumes documents
annotated with four layers of information per token:

* the surface form (the token text),
* a Universal part-of-speech tag (Petrov et al., 2012),
* a dependency parse label and a pointer to the head token,
* optionally, membership in a named-entity mention with an entity type.

This module defines the immutable-by-convention containers for those
annotations: :class:`Token`, :class:`Sentence`, :class:`EntityMention`,
:class:`Span`, and :class:`Document`.  The containers are deliberately plain
(dataclasses with explicit fields) so they are cheap to construct in bulk,
easy to serialise, and independent of any particular parser implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

# Universal POS tagset (Petrov, Das, McDonald 2012) with PROPN split out,
# matching the tags used in the paper's Figure 1.
UNIVERSAL_POS_TAGS = frozenset(
    {
        "NOUN",
        "PROPN",
        "VERB",
        "ADJ",
        "ADV",
        "PRON",
        "DET",
        "ADP",
        "NUM",
        "CONJ",
        "PRT",
        "PUNCT",
        "X",
    }
)

# Dependency parse labels (a Universal-Dependencies-v1 style inventory, the
# same family of labels used in the paper's running examples).
PARSE_LABELS = frozenset(
    {
        "root",
        "nsubj",
        "nsubjpass",
        "dobj",
        "iobj",
        "det",
        "amod",
        "nn",
        "advmod",
        "prep",
        "pobj",
        "cc",
        "conj",
        "acomp",
        "xcomp",
        "ccomp",
        "rcmod",
        "aux",
        "auxpass",
        "neg",
        "num",
        "poss",
        "appos",
        "attr",
        "dep",
        "p",
    }
)

# Entity types recognised by the NER component; "OTHER" covers capitalised
# mentions that do not fall into a known gazetteer (e.g. cafe names).
ENTITY_TYPES = frozenset(
    {
        "PERSON",
        "LOCATION",
        "GPE",
        "ORGANIZATION",
        "DATE",
        "EVENT",
        "FACILITY",
        "TEAM",
        "OTHER",
    }
)


@dataclass
class Token:
    """A single token of a sentence with all its annotations.

    Attributes
    ----------
    index:
        Zero-based position of the token within its sentence.
    text:
        Surface form.
    pos:
        Universal POS tag (one of :data:`UNIVERSAL_POS_TAGS`).
    label:
        Dependency parse label of the arc from this token to its head
        (``"root"`` for the root token).
    head:
        Sentence-relative index of the head token; ``-1`` for the root.
    lemma:
        Lower-cased lemma (a light-weight lemmatisation; falls back to the
        lower-cased surface form).
    entity_type:
        Entity type if this token is part of a named-entity mention,
        otherwise ``None``.
    """

    index: int
    text: str
    pos: str = "X"
    label: str = "dep"
    head: int = -1
    lemma: str = ""
    entity_type: str | None = None

    def __post_init__(self) -> None:
        if not self.lemma:
            self.lemma = self.text.lower()

    @property
    def is_root(self) -> bool:
        """True when this token is the root of its dependency tree."""
        return self.head < 0

    def matches_label(self, label: str) -> bool:
        """Return True if *label* names this token's word, POS tag or parse label.

        This is the label-matching rule used throughout the KOKO path
        language: a path step such as ``verb`` matches on the POS tag,
        ``dobj`` matches on the parse label, and a quoted word matches the
        surface form (case-insensitively).
        """
        low = label.lower()
        return (
            low == self.label.lower()
            or low == self.pos.lower()
            or low == self.text.lower()
            or low == self.lemma
        )


@dataclass
class EntityMention:
    """A named-entity mention: a contiguous span of tokens with a type.

    ``start`` and ``end`` are inclusive token indexes within the sentence,
    mirroring the ``(x, u-v)`` triples stored in the paper's entity index.
    """

    start: int
    end: int
    etype: str
    text: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"entity mention end ({self.end}) precedes start ({self.start})"
            )

    def __len__(self) -> int:
        return self.end - self.start + 1

    def covers(self, token_index: int) -> bool:
        """True when *token_index* falls inside this mention."""
        return self.start <= token_index <= self.end


class Sentence:
    """A parsed sentence: a sequence of tokens plus entity mentions.

    The sentence owns the dependency tree implicitly through the ``head``
    field of its tokens and exposes the tree-navigation helpers the KOKO
    evaluator relies on: children lookup, subtree extent, and depth.
    """

    def __init__(
        self,
        sid: int,
        tokens: Sequence[Token],
        entities: Sequence[EntityMention] | None = None,
        text: str | None = None,
    ) -> None:
        self.sid = sid
        self.tokens: list[Token] = list(tokens)
        self.entities: list[EntityMention] = list(entities or [])
        self._text = text
        self._children: list[list[int]] | None = None
        self._subtree_spans: list[tuple[int, int]] | None = None
        self._depths: list[int] | None = None

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self.tokens)

    def __getitem__(self, index: int) -> Token:
        return self.tokens[index]

    @property
    def text(self) -> str:
        """The (reconstructed) surface text of the sentence."""
        if self._text is None:
            self._text = detokenize(tok.text for tok in self.tokens)
        return self._text

    @property
    def words(self) -> list[str]:
        """The token surface forms, in order."""
        return [tok.text for tok in self.tokens]

    # ------------------------------------------------------------------
    # dependency-tree navigation
    # ------------------------------------------------------------------
    def root_index(self) -> int:
        """Index of the root token (first token with head < 0)."""
        for tok in self.tokens:
            if tok.is_root:
                return tok.index
        raise ValueError(f"sentence {self.sid} has no root token")

    def children(self, index: int) -> list[int]:
        """Indexes of the direct dependents of token *index*."""
        self._ensure_tree_caches()
        assert self._children is not None
        return self._children[index]

    def subtree_span(self, index: int) -> tuple[int, int]:
        """Inclusive ``(first, last)`` token indexes of the subtree rooted at *index*.

        This is the ``u-v`` component of the quintuples stored by every
        KOKO index (Section 3.1 of the paper).
        """
        self._ensure_tree_caches()
        assert self._subtree_spans is not None
        return self._subtree_spans[index]

    def depth(self, index: int) -> int:
        """Depth of token *index* in the dependency tree (root has depth 0)."""
        self._ensure_tree_caches()
        assert self._depths is not None
        return self._depths[index]

    def tree_columns(self) -> tuple[list[list[int]], list[tuple[int, int]], list[int]]:
        """The memoised tree structure as whole-sentence columns.

        Returns ``(children, subtree_spans, depths)`` — the per-token lists
        backing :meth:`children`, :meth:`subtree_span` and :meth:`depth` —
        so the columnar index splice can read the whole sentence without a
        per-token method call.  Treat the returned lists as read-only.
        """
        self._ensure_tree_caches()
        assert self._children is not None
        assert self._subtree_spans is not None
        assert self._depths is not None
        return self._children, self._subtree_spans, self._depths

    def subtree_indices(self, index: int) -> list[int]:
        """All token indexes in the subtree rooted at *index*, in surface order."""
        first, last = self.subtree_span(index)
        return list(range(first, last + 1))

    def is_ancestor(self, ancestor: int, descendant: int) -> bool:
        """True when token *ancestor* dominates token *descendant* (strictly)."""
        if ancestor == descendant:
            return False
        node = descendant
        seen = 0
        while node >= 0 and seen <= len(self.tokens):
            node = self.tokens[node].head
            seen += 1
            if node == ancestor:
                return True
        return False

    def span_text(self, start: int, end: int) -> str:
        """Surface text of tokens ``start..end`` (inclusive)."""
        return detokenize(tok.text for tok in self.tokens[start : end + 1])

    def entity_at(self, index: int) -> EntityMention | None:
        """The entity mention covering token *index*, if any."""
        for mention in self.entities:
            if mention.covers(index):
                return mention
        return None

    # ------------------------------------------------------------------
    # internal caches
    # ------------------------------------------------------------------
    def _ensure_tree_caches(self) -> None:
        if self._children is not None:
            return
        n = len(self.tokens)
        children: list[list[int]] = [[] for _ in range(n)]
        for tok in self.tokens:
            if 0 <= tok.head < n and tok.head != tok.index:
                children[tok.head].append(tok.index)

        # Depth by walking up the head chain (with cycle guard).
        depths = [0] * n
        for i in range(n):
            depth = 0
            node = i
            while not self.tokens[node].is_root and depth <= n:
                node = self.tokens[node].head
                depth += 1
            depths[i] = depth
        self._depths = depths

        # Subtree spans: the contiguous extent is computed as the min/max
        # token index reachable in the subtree.  Rule-based trees in this
        # package are projective so the extent is exactly the subtree.
        spans = [(i, i) for i in range(n)]
        order = sorted(range(n), key=lambda i: depths[i], reverse=True)
        for i in order:
            first, last = spans[i]
            for child in children[i]:
                cf, cl = spans[child]
                first = min(first, cf)
                last = max(last, cl)
            spans[i] = (first, last)
        self._subtree_spans = spans

        # Assigned last: concurrent readers key the "caches ready" check on
        # _children, so the other caches must already be visible by then.
        self._children = children

    def invalidate_caches(self) -> None:
        """Drop memoised tree structure (call after mutating tokens)."""
        self._children = None
        self._subtree_spans = None
        self._depths = None

    def __getstate__(self) -> dict:
        """Pickle without the memoised tree caches.

        The caches are pure functions of the tokens and rebuild lazily on
        first use; dropping them keeps serialised sentences (snapshot
        corpus files, WAL records) small and load fast.
        """
        state = self.__dict__.copy()
        state["_children"] = None
        state["_subtree_spans"] = None
        state["_depths"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Sentence(sid={self.sid}, tokens={len(self.tokens)})"


@dataclass(frozen=True)
class Span:
    """A contiguous span of tokens within one sentence.

    Spans are the values bound to KOKO span variables; ``start`` and ``end``
    are inclusive token indexes.  A span knows which sentence it came from so
    that output tuples can be traced back to their provenance.
    """

    sid: int
    start: int
    end: int
    text: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span end ({self.end}) precedes start ({self.start})")

    def __len__(self) -> int:
        return self.end - self.start + 1

    def contains(self, other: "Span") -> bool:
        """True when *other* lies entirely within this span (same sentence)."""
        return (
            self.sid == other.sid
            and self.start <= other.start
            and other.end <= self.end
        )

    def precedes(self, other: "Span") -> bool:
        """True when this span ends strictly before *other* starts."""
        return self.sid == other.sid and self.end < other.start

    def immediately_precedes(self, other: "Span") -> bool:
        """True when *other* starts exactly one token after this span ends."""
        return self.sid == other.sid and other.start == self.end + 1


class Document:
    """A fully annotated document: an ordered list of parsed sentences."""

    def __init__(self, doc_id: str, sentences: Sequence[Sentence], text: str = "") -> None:
        self.doc_id = doc_id
        self.sentences: list[Sentence] = list(sentences)
        self.text = text

    def __len__(self) -> int:
        return len(self.sentences)

    def __iter__(self) -> Iterator[Sentence]:
        return iter(self.sentences)

    def __getitem__(self, index: int) -> Sentence:
        return self.sentences[index]

    @property
    def num_tokens(self) -> int:
        """Total number of tokens across all sentences."""
        return sum(len(sentence) for sentence in self.sentences)

    def sentence_by_sid(self, sid: int) -> Sentence:
        """Return the sentence whose ``sid`` equals *sid*."""
        for sentence in self.sentences:
            if sentence.sid == sid:
                return sentence
        raise KeyError(f"no sentence with sid={sid} in document {self.doc_id!r}")

    def entity_texts(self, etype: str | None = None) -> list[str]:
        """All entity-mention texts in the document, optionally filtered by type."""
        found = []
        for sentence in self.sentences:
            for mention in sentence.entities:
                if etype is None or mention.etype == etype:
                    found.append(mention.text)
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Document(doc_id={self.doc_id!r}, sentences={len(self.sentences)})"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
_NO_SPACE_BEFORE = {".", ",", ";", ":", "!", "?", ")", "]", "}", "'s", "n't", "%", "'"}
_NO_SPACE_AFTER = {"(", "[", "{", "$"}


def detokenize(tokens: Iterable[str]) -> str:
    """Join tokens back into a readable string with conventional spacing."""
    pieces: list[str] = []
    previous = ""
    for token in tokens:
        if not pieces:
            pieces.append(token)
        elif token in _NO_SPACE_BEFORE or previous in _NO_SPACE_AFTER:
            pieces.append(token)
        else:
            pieces.append(" " + token)
        previous = token
    return "".join(pieces)


@dataclass
class Corpus:
    """A named collection of documents plus optional gold annotations.

    Gold annotations map an annotation key (for example ``"cafe"`` or
    ``"team"``) to the set of gold strings for each document id.  The
    extraction experiments use them to compute precision and recall.
    """

    name: str
    documents: list[Document] = field(default_factory=list)
    gold: dict[str, dict[str, set[str]]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    @property
    def num_sentences(self) -> int:
        return sum(len(doc) for doc in self.documents)

    @property
    def num_tokens(self) -> int:
        return sum(doc.num_tokens for doc in self.documents)

    def all_sentences(self) -> Iterator[tuple[Document, Sentence]]:
        """Iterate over ``(document, sentence)`` pairs across the corpus."""
        for doc in self.documents:
            for sentence in doc.sentences:
                yield doc, sentence

    def gold_for(self, key: str, doc_id: str) -> set[str]:
        """Gold strings of kind *key* for document *doc_id* (empty set if none)."""
        return self.gold.get(key, {}).get(doc_id, set())
