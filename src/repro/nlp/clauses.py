"""Sentence decomposition into canonical clauses.

Section 4.4.1(b) of the paper scores descriptor conditions against
*canonical sentences* obtained by segmenting each sentence into clauses
(stage (1) of the decomposition of Angeli et al., 2015; stage (2), word
deletion, is intentionally not performed, exactly as the paper states).

The segmenter implemented here splits a parsed sentence at clause
boundaries derived from the dependency tree and from surface cues:

* coordinating conjunctions between verbs ("... , and also ate a pie"),
* relative-clause boundaries ("which was delicious"),
* subordinating conjunctions and semicolons.

Each canonical clause carries a weight ``l_j`` in (0, 1]: full clauses that
contain the main verb get weight 1.0, subordinate/relative fragments get a
slightly smaller weight, mirroring the intuition that evidence found in the
main clause is stronger.
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexicon import CONJUNCTIONS
from .types import Sentence, detokenize

_SUBORDINATORS = {
    "because", "although", "though", "while", "whereas", "if", "unless",
    "when", "whenever", "where", "wherever", "since", "after", "before",
}
_RELATIVE_PRONOUNS = {"which", "that", "who", "whom", "whose"}


@dataclass(frozen=True)
class CanonicalClause:
    """One canonical clause: its token range, text, and weight ``l_j``."""

    start: int
    end: int
    text: str
    weight: float

    def token_range(self) -> range:
        return range(self.start, self.end + 1)


class ClauseSegmenter:
    """Split sentences into canonical clauses for descriptor scoring."""

    def __init__(self, main_weight: float = 1.0, subordinate_weight: float = 0.8) -> None:
        if not 0.0 < subordinate_weight <= main_weight <= 1.0:
            raise ValueError("weights must satisfy 0 < subordinate <= main <= 1")
        self.main_weight = main_weight
        self.subordinate_weight = subordinate_weight

    def segment(self, sentence: Sentence) -> list[CanonicalClause]:
        """Return the canonical clauses of *sentence* (at least one)."""
        n = len(sentence)
        if n == 0:
            return []
        boundaries = self._boundaries(sentence)
        clauses: list[CanonicalClause] = []
        start = 0
        for boundary in boundaries + [n]:
            end = boundary - 1
            if end < start:
                start = boundary
                continue
            start, end = self._trim(sentence, start, end)
            if end >= start:
                clauses.append(self._make_clause(sentence, start, end))
            start = boundary
        if not clauses:
            clauses.append(self._make_clause(sentence, 0, n - 1))
        return clauses

    # ------------------------------------------------------------------
    # boundary detection
    # ------------------------------------------------------------------
    def _boundaries(self, sentence: Sentence) -> list[int]:
        """Token indexes at which a new clause starts."""
        boundaries: list[int] = []
        verbs = {
            tok.index
            for tok in sentence
            if tok.pos == "VERB"
        }
        for tok in sentence:
            low = tok.text.lower()
            # clause-opening relative pronoun
            if low in _RELATIVE_PRONOUNS and tok.pos in {"PRON", "DET"}:
                if any(v > tok.index for v in verbs):
                    boundaries.append(tok.index)
            # subordinator mid-sentence
            elif low in _SUBORDINATORS and low in CONJUNCTIONS and tok.index > 0:
                boundaries.append(tok.index)
            # coordinating conjunction directly linking two verbal conjuncts
            elif low in {"and", "but", "or"} and tok.pos == "CONJ":
                if any(v > tok.index for v in verbs) and any(
                    v < tok.index for v in verbs
                ):
                    boundaries.append(tok.index)
            elif tok.text == ";":
                boundaries.append(tok.index + 1)
        return sorted(set(b for b in boundaries if 0 < b < len(sentence)))

    def _trim(self, sentence: Sentence, start: int, end: int) -> tuple[int, int]:
        """Strip leading/trailing punctuation and connectives from a clause."""
        while start <= end and (
            sentence[start].pos == "PUNCT"
            or sentence[start].text.lower() in {"and", "but", "or", ","}
        ):
            start += 1
        while end >= start and sentence[end].pos == "PUNCT":
            end -= 1
        return start, end

    def _make_clause(self, sentence: Sentence, start: int, end: int) -> CanonicalClause:
        has_root = any(
            sentence[i].label == "root" for i in range(start, end + 1)
        )
        weight = self.main_weight if has_root else self.subordinate_weight
        text = detokenize(tok.text for tok in sentence.tokens[start : end + 1])
        return CanonicalClause(start=start, end=end, text=text, weight=weight)
