"""Synthetic cafe-blog corpora: BARISTAMAG-like and SPRUDGE-like (Section 6.1).

The paper's cafe experiment scrapes two coffee publications, crowd-sources
gold cafe names, and extracts "new and upcoming cafes" — entities with rare
mentions.  The generators here produce behaviour-preserving substitutes:

* every article introduces one or two *new* cafe names (the gold labels),
* evidence about them is spread over several sentences, each individually
  weak — the property KOKO's evidence aggregation exploits,
* evidence comes in two flavours: *direct* phrases ("serves coffee",
  "employs baristas", "a cafe called X") and *paraphrase variants* ("pours
  silky cortados", "hired a star barista") that only descriptor expansion
  can reach,
* articles also contain the classic false positives the paper lists —
  street addresses, espresso-machine brands (La Marzocco), barista
  championships, and bare city names — which exercise the excluding clause,
* BARISTAMAG articles are short (fewer, mostly paraphrased evidence
  sentences), SPRUDGE articles are long (more, mostly direct evidence),
  which is what makes descriptors help on the former but not the latter
  (Figure 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus
from . import names


@dataclass
class CafeBlogConfig:
    """Knobs for one cafe-blog corpus."""

    name: str
    articles: int
    sentences_low: int
    sentences_high: int
    #: probability that an evidence sentence uses a direct (non-paraphrased)
    #: formulation the query's boolean / exact-descriptor conditions can match
    direct_evidence_prob: float
    seed: int = 7


BARISTAMAG = CafeBlogConfig(
    name="baristamag",
    articles=42,
    sentences_low=4,
    sentences_high=7,
    direct_evidence_prob=0.35,
    seed=11,
)

SPRUDGE = CafeBlogConfig(
    name="sprudge",
    articles=120,
    sentences_low=9,
    sentences_high=15,
    direct_evidence_prob=0.7,
    seed=23,
)

# ----------------------------------------------------------------------
# sentence templates
# ----------------------------------------------------------------------
_INTRO_DIRECT = [
    "{cafe}, a cafe in {city}, opened its doors last month.",
    "The owners announced a new cafe called {cafe} in {city}.",
    "Local roasters celebrated cafes such as {cafe} during the opening week.",
    "{cafe} is a cafe that opened near the old market in {city}.",
]
_INTRO_SOFT = [
    "{person} opened {cafe} on a quiet corner of {city}.",
    "The team behind {cafe} spent two years planning the space in {city}.",
    "{cafe} started as a tiny cart before moving into the new location.",
    "Visitors to {city} keep asking about {cafe}.",
]
_EVIDENCE_DIRECT = [
    "{cafe} serves coffee from local farms.",
    "{cafe} employs baristas who trained in {city}.",
    "{cafe} serves coffee and fresh pastries every morning.",
    "The coffee menu at {cafe} changes every season.",
    "{cafe} sells coffee beans from a small importer.",
]
# Gapped paraphrase evidence: the key words of a descriptor appear in order
# but not contiguously, so sentence-local exact-phrase systems miss them
# while descriptor matching (in-order with gaps, over canonical clauses)
# still scores them.
_EVIDENCE_PARAPHRASE = [
    "{cafe} pours a remarkably silky espresso all day.",
    "{cafe} sells seasonal cappuccinos and little pastries.",
    "{cafe} offers single-origin espresso from a rotating list.",
    "{cafe} hired the celebrated barista {person} last spring.",
    "{cafe} recruited talented baristas from three countries.",
    "{cafe} serves carefully sourced coffee on weekends.",
    "{cafe} sells locally roasted coffee by the bag.",
    "{cafe} employs two young baristas from {city}.",
    "{cafe} provides hand-poured macchiatos on a vintage machine.",
]
# Weak mentions: the cafe is named but nothing about it matches any query
# condition — these lower recall for every system.
_EVIDENCE_WEAK = [
    "{cafe} sits across from the old library.",
    "People line up outside {cafe} on Saturday mornings.",
    "The chairs at {cafe} came from a flea market.",
    "{person} met an old friend at {cafe} by accident.",
    "A mural covers the back wall of {cafe}.",
]
_FILLER = [
    "{person} wrote about the neighborhood for a travel magazine.",
    "The weather in {city} was perfect for a walk.",
    "Many visitors come to {city} for the food scene.",
    "{person} moved to {city} three years ago.",
    "The bakery next door sells bread and cookies.",
]
# Distractor traps: the evidence phrases occur contiguously next to entities
# that are NOT cafes (cities, people, events, hotels, machine brands), which
# is what drags down the precision of sentence-local pattern matching.
_DISTRACTOR = [
    "{city} produces and sells the best coffee.",
    "{city} serves coffee to thousands of tourists every year.",
    "{person} serves coffee at home every single morning.",
    "The {event} employs baristas from around the world.",
    "The hotel at {address} serves coffee in the lobby.",
    "The new cafe on {address} has the best cup of espresso.",
    "They installed a {brand} espresso machine behind the bar.",
    "{brand} machines pour espresso at every championship booth.",
    "{person} won the {event} last year.",
    "Tickets for the {event} sold out in a day.",
    "The shop at {address} also fixes grinders.",
]


def generate_cafe_corpus(
    config: CafeBlogConfig,
    pipeline: Pipeline | None = None,
    articles: int | None = None,
) -> Corpus:
    """Generate and annotate one cafe-blog corpus with gold cafe names."""
    rng = random.Random(config.seed)
    pipeline = pipeline or Pipeline()
    texts: dict[str, str] = {}
    gold: dict[str, set[str]] = {}

    article_count = articles if articles is not None else config.articles
    for index in range(article_count):
        doc_id = f"{config.name}-{index:04d}"
        text, cafes = _generate_article(rng, config)
        texts[doc_id] = text
        gold[doc_id] = cafes

    corpus = pipeline.annotate_corpus(texts, name=config.name)
    corpus.gold["cafe"] = gold
    return corpus


def _generate_article(rng: random.Random, config: CafeBlogConfig) -> tuple[str, set[str]]:
    num_cafes = 1 if rng.random() < 0.7 else 2
    cafes = []
    for _ in range(num_cafes):
        cafes.append(names.cafe_name(rng))
    the_city = names.city(rng)
    sentences: list[str] = []
    total = rng.randint(config.sentences_low, config.sentences_high)

    # the first cafe always gets an introduction sentence
    intro_pool = _INTRO_DIRECT if rng.random() < config.direct_evidence_prob else _INTRO_SOFT
    sentences.append(
        rng.choice(intro_pool).format(
            cafe=cafes[0], city=the_city, person=names.person_name(rng)
        )
    )
    if num_cafes == 2:
        pool = _INTRO_DIRECT if rng.random() < config.direct_evidence_prob else _INTRO_SOFT
        sentences.append(
            rng.choice(pool).format(
                cafe=cafes[1], city=the_city, person=names.person_name(rng)
            )
        )

    while len(sentences) < total:
        roll = rng.random()
        cafe = rng.choice(cafes)
        if roll < 0.45:
            if rng.random() < config.direct_evidence_prob:
                pool = _EVIDENCE_DIRECT
            elif rng.random() < 0.65:
                pool = _EVIDENCE_PARAPHRASE
            else:
                pool = _EVIDENCE_WEAK
            sentences.append(
                rng.choice(pool).format(
                    cafe=cafe, city=the_city, person=names.person_name(rng)
                )
            )
        elif roll < 0.65:
            sentences.append(
                rng.choice(_FILLER).format(
                    person=names.person_name(rng), city=the_city
                )
            )
        else:
            sentences.append(
                rng.choice(_DISTRACTOR).format(
                    city=the_city,
                    address=names.street_address(rng),
                    brand=names.machine_brand(rng),
                    person=names.person_name(rng),
                    event=names.coffee_event(rng),
                )
            )
    rng.shuffle(sentences[2:])
    return " ".join(sentences), set(cafes)
