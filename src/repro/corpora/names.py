"""Deterministic name generators shared by the synthetic corpora.

All generators take a :class:`random.Random` instance so every corpus is
fully reproducible from a seed.  The name inventories deliberately overlap
with the NER gazetteers (``repro.nlp.lexicon``) only partially: person and
place names are recognisable, but generated cafe names, team names and
facility names are *new* strings the extraction systems have never seen —
the very setting the paper's cafe experiment targets ("entities with
relatively rare mentions").
"""

from __future__ import annotations

import random

# ----------------------------------------------------------------------
# cafes
# ----------------------------------------------------------------------
_CAFE_FIRST = [
    "Blue", "Golden", "Silver", "Copper", "Velvet", "Rustic", "Urban",
    "Wild", "Quiet", "Bright", "Lucky", "Humble", "Crooked", "Maple",
    "Cedar", "Willow", "Juniper", "Harbor", "Summit", "Meadow", "Ember",
    "Canyon", "Salt", "Iron", "Marble", "Paper", "Stone", "River",
    "Morning", "Twilight", "Northern", "Southern", "Little", "Grand",
]
_CAFE_SECOND = [
    "Bottle", "Anchor", "Sparrow", "Fox", "Bear", "Owl", "Heron", "Pine",
    "Oak", "Wheel", "Lantern", "Compass", "Harvest", "Garden", "Door",
    "Window", "Bridge", "Mill", "Spoon", "Saucer", "Whisk", "Crane",
    "Magpie", "Finch", "Poppy", "Clover", "Thistle", "Acorn", "Pebble",
]
# Suffixes: roughly half carry an explicit coffee keyword (caught by the
# boolean conditions of the cafe query), half do not (descriptor territory).
_CAFE_SUFFIX_KEYWORD = [
    "Cafe", "Coffee", "Coffee Roasters", "Roasters", "Espresso Bar",
    "Coffee Co", "Coffee House",
]
_CAFE_SUFFIX_PLAIN = ["Collective", "Workshop", "Social", "Room", "House", "Society", ""]


def cafe_name(rng: random.Random, with_keyword: bool | None = None) -> str:
    """A generated cafe name, optionally forcing a coffee keyword suffix."""
    if with_keyword is None:
        with_keyword = rng.random() < 0.45
    first = rng.choice(_CAFE_FIRST)
    second = rng.choice(_CAFE_SECOND)
    suffix = rng.choice(_CAFE_SUFFIX_KEYWORD if with_keyword else _CAFE_SUFFIX_PLAIN)
    name = f"{first} {second}"
    if suffix:
        name = f"{name} {suffix}"
    return name


# ----------------------------------------------------------------------
# people
# ----------------------------------------------------------------------
_PERSON_FIRST = [
    "Anna", "John", "Mary", "James", "Linda", "Robert", "Michael",
    "Jennifer", "William", "Elizabeth", "David", "Sarah", "Daniel",
    "Laura", "Kevin", "Emily", "Marco", "Sofia", "Elena", "Lucas",
    "Clara", "Felix", "Nora", "Pedro", "Ines", "Hiro", "Yuki",
]
_PERSON_LAST = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Wilson", "Anderson", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Thompson", "White", "Harris", "Clark", "Lewis", "Walker",
    "Young", "King", "Wright", "Scott", "Hill", "Green", "Adams",
    "Baker", "Nelson", "Carter", "Mitchell", "Roberts", "Campbell",
    "Tanaka", "Sato", "Silva", "Santos", "Rossi", "Moreau", "Novak",
]


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(_PERSON_FIRST)} {rng.choice(_PERSON_LAST)}"


# ----------------------------------------------------------------------
# places
# ----------------------------------------------------------------------
CITIES = [
    "Portland", "Seattle", "Chicago", "Boston", "Austin", "Denver",
    "Oakland", "Brooklyn", "Melbourne", "Oslo", "Vienna", "Prague",
    "Dublin", "Amsterdam", "Barcelona", "Milan", "Kyoto", "Osaka",
    "London", "Paris", "Berlin", "Tokyo", "Toronto", "Sydney", "Lisbon",
]
COUNTRIES = [
    "France", "Germany", "Italy", "Spain", "Brazil", "Canada", "Mexico",
    "India", "Australia", "Japan", "China", "Portugal", "England",
]
_STREETS = ["Mission", "Division", "Hawthorne", "Alberta", "Valencia", "Bedford", "King"]


def city(rng: random.Random) -> str:
    return rng.choice(CITIES)


def country(rng: random.Random) -> str:
    return rng.choice(COUNTRIES)


def street_address(rng: random.Random) -> str:
    """A street address — a classic false positive for cafe extraction."""
    number = rng.randint(10, 4999)
    suffix = rng.choice(["St", "Street", "Ave", "Avenue"])
    return f"{number} {rng.choice(_STREETS)} {suffix}"


# ----------------------------------------------------------------------
# sports teams and facilities (the WNUT experiment)
# ----------------------------------------------------------------------
_TEAM_CITY = CITIES
_TEAM_MASCOT = [
    "Tigers", "Lions", "Eagles", "Hawks", "Bears", "Wolves", "Sharks",
    "Dragons", "Giants", "Royals", "Rangers", "Warriors", "Knights",
    "Falcons", "Panthers", "Bulls", "Raptors", "Comets", "Stars",
    "United", "City", "Rovers", "Athletic",
]
_FACILITY_KIND = [
    "Stadium", "Arena", "Park", "Gym", "Mall", "Library", "Museum",
    "Station", "Garden", "Plaza", "Hall", "Field",
]
_FACILITY_FIRST = [
    "Riverside", "Central", "Memorial", "Lakeside", "Heritage", "Union",
    "Liberty", "Victory", "Highland", "Crescent", "Harbor", "Jubilee",
]


def team_name(rng: random.Random) -> str:
    return f"{rng.choice(_TEAM_CITY)} {rng.choice(_TEAM_MASCOT)}"


def facility_name(rng: random.Random) -> str:
    return f"{rng.choice(_FACILITY_FIRST)} {rng.choice(_FACILITY_KIND)}"


# ----------------------------------------------------------------------
# distractors for the cafe experiment's excluding clause
# ----------------------------------------------------------------------
ESPRESSO_MACHINE_BRANDS = ["La Marzocco", "Synesso", "Aeropress", "V60"]
COFFEE_EVENTS = [
    "Barista Championship", "Brewers Cup", "Coffee Fest", "Latte Art Festival",
]


def machine_brand(rng: random.Random) -> str:
    return rng.choice(ESPRESSO_MACHINE_BRANDS)


def coffee_event(rng: random.Random) -> str:
    return f"{rng.choice(CITIES)} {rng.choice(COFFEE_EVENTS)}"
