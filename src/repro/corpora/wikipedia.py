"""Synthetic Wikipedia-like articles (Sections 6.2-6.3).

The scale-up experiments and the three example queries of Section 6.3 run
over Wikipedia.  The generator produces three article families whose mix
reproduces the selectivities the paper reports for those queries:

* **biography** articles (~70% of the corpus) — almost all contain a
  "born ... <date>" sentence (the high-selectivity DateOfBirth query),
  and a configurable fraction contain a "had been called <name>" sentence
  (the medium-selectivity Title query, ~10% of articles),
* **food** articles (a few percent) — a subset are about chocolate types
  ("Baking chocolate is a type of chocolate that ..."), the
  low-selectivity Chocolate query (<1% of articles),
* **place** articles — capitals, landmarks, filler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus
from . import names

_CHOCOLATE_KINDS = ["Baking", "Dark", "Milk", "White", "Bitter", "Sweet"]
_FOOD_ITEMS = ["cheese", "bread", "pastry", "noodle", "sausage", "dumpling"]
_PROFESSIONS = ["writer", "actor", "singer", "engineer", "scientist", "professor", "director"]
_NICKNAMES = ["Sid", "Bud", "Dot", "Kit", "Max", "Ace", "Bea", "Gus", "Lou", "Pip"]


@dataclass
class WikipediaConfig:
    """Mix of article families in a generated wiki corpus."""

    articles: int = 200
    biography_fraction: float = 0.70
    called_fraction: float = 0.14
    chocolate_fraction: float = 0.02
    food_fraction: float = 0.08
    seed: int = 17


def generate_wikipedia_corpus(
    config: WikipediaConfig | None = None,
    articles: int | None = None,
    pipeline: Pipeline | None = None,
) -> Corpus:
    """Generate and annotate a wiki-style corpus."""
    config = config or WikipediaConfig()
    if articles is not None:
        config = WikipediaConfig(
            articles=articles,
            biography_fraction=config.biography_fraction,
            called_fraction=config.called_fraction,
            chocolate_fraction=config.chocolate_fraction,
            food_fraction=config.food_fraction,
            seed=config.seed,
        )
    rng = random.Random(config.seed)
    pipeline = pipeline or Pipeline()
    texts: dict[str, str] = {}
    kinds: dict[str, str] = {}

    for index in range(config.articles):
        doc_id = f"wiki-{index:06d}"
        roll = rng.random()
        if roll < config.chocolate_fraction:
            text, kind = _chocolate_article(rng), "chocolate"
        elif roll < config.chocolate_fraction + config.food_fraction:
            text, kind = _food_article(rng), "food"
        elif roll < (
            config.chocolate_fraction + config.food_fraction + config.biography_fraction
        ):
            with_called = rng.random() < (config.called_fraction / config.biography_fraction)
            text, kind = _biography_article(rng, with_called), "biography"
        else:
            text, kind = _place_article(rng), "place"
        texts[doc_id] = text
        kinds[doc_id] = kind

    corpus = pipeline.annotate_corpus(texts, name="wikipedia")
    corpus.gold["article_kind"] = {doc_id: {kind} for doc_id, kind in kinds.items()}
    return corpus


# ----------------------------------------------------------------------
# article families
# ----------------------------------------------------------------------
def _random_date(rng: random.Random) -> str:
    months = [
        "January", "February", "March", "April", "May", "June", "July",
        "August", "September", "October", "November", "December",
    ]
    return f"{rng.randint(1, 28)} {rng.choice(months)} {rng.randint(1860, 1995)}"


def _biography_article(rng: random.Random, with_called: bool) -> str:
    person = names.person_name(rng)
    spouse = names.person_name(rng)
    the_city = names.city(rng)
    the_country = names.country(rng)
    profession = rng.choice(_PROFESSIONS)
    sentences = [
        f"{person} was a {profession} from {the_country}.",
        f"{person} was born on {_random_date(rng)} in {the_city}.",
        f"{person} studied in {the_city} and later moved to {names.city(rng)}.",
    ]
    if with_called:
        nickname = rng.choice(_NICKNAMES)
        sentences.append(f"{person} had been called {nickname} for years.")
    if rng.random() < 0.6:
        sentences.append(
            f"{person} was married to {spouse} on {_random_date(rng)} in {the_city}, "
            f"and the couple had a daughter born in {rng.randint(1900, 2000)}."
        )
    if rng.random() < 0.5:
        sentences.append(f"{person} received a national award in {rng.randint(1950, 2010)}.")
    sentences.append(f"{person} died in {names.city(rng)}.")
    return " ".join(sentences)


def _chocolate_article(rng: random.Random) -> str:
    kind = rng.choice(_CHOCOLATE_KINDS)
    sentences = [
        f"{kind} chocolate is a type of chocolate that is prepared or manufactured for baking.",
        f"{kind} chocolate contains a high share of cocoa solids.",
        f"Bakers in {names.country(rng)} rely on chocolate for traditional desserts.",
        f"The industrial production of chocolate began in the nineteenth century.",
    ]
    return " ".join(sentences)


def _food_article(rng: random.Random) -> str:
    item = rng.choice(_FOOD_ITEMS)
    the_country = names.country(rng)
    sentences = [
        f"The {item} is a traditional food from {the_country}.",
        f"Cooks prepare the {item} with local ingredients.",
        f"Festivals in {names.city(rng)} celebrate the {item} every autumn.",
    ]
    return " ".join(sentences)


def _place_article(rng: random.Random) -> str:
    the_city = names.city(rng)
    the_country = names.country(rng)
    sentences = [
        f"{the_city} is a large city in {the_country}.",
        f"The population of {the_city} grew quickly after the war.",
        f"{the_city} hosts a famous museum and a central station.",
        f"Visitors come to {the_city} for its markets and gardens.",
    ]
    return " ".join(sentences)
