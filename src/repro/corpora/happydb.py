"""Synthetic HappyDB-like corpus: short first-person "happy moment" entries.

HappyDB (Asai et al., 2018) is a crowd-sourced collection of ~100k happy
moments, used by the paper as the smaller of its two performance corpora.
Entries are one to three sentences of everyday language, which gives the
dependency trees a different shape profile (short, first-person, few named
entities) than the wiki-style corpus.
"""

from __future__ import annotations

import random

from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus
from . import names

_MOMENTS = [
    "I was so happy when my {relative} graduated from college.",
    "I ate delicious {food} with my friends at the new place downtown.",
    "My {relative} surprised me with tickets to the game.",
    "I finally finished the big project at work and my manager was thrilled.",
    "We adopted a puppy and it fell asleep on my lap.",
    "I got a promotion after months of hard work.",
    "My {relative} called me just to say hello and it made my day.",
    "I went for a long run in the park and the weather was perfect.",
    "We visited {city} for the weekend and tried every bakery.",
    "I cooked dinner for my family and everyone asked for seconds.",
    "My team won the local soccer match yesterday.",
    "I found my lost wallet with everything still inside.",
    "The barista remembered my order and drew a little heart on the cup.",
    "I passed my driving test on the first try.",
    "My {relative} and I watched the sunrise from the roof.",
    "I planted tomatoes in the garden and the first one is finally ripe.",
    "I read a wonderful book that made me laugh out loud on the train.",
    "We celebrated my {relative}'s birthday with a chocolate cake.",
    "I fixed the old bike in the garage and rode it to work.",
    "A stranger complimented my jacket on the bus this morning.",
]
_FOLLOWUPS = [
    "It was the best day of the month.",
    "I could not stop smiling for hours.",
    "We took so many pictures.",
    "I told everyone at dinner about it.",
    "It felt like a small victory.",
    "",
    "",
]
_RELATIVES = ["daughter", "son", "sister", "brother", "mother", "father", "wife", "husband"]
_FOODS = ["cheesecake", "ice cream", "pie", "chocolate cake", "dumplings", "pancakes"]


def generate_happydb_corpus(
    moments: int = 300,
    seed: int = 5,
    pipeline: Pipeline | None = None,
) -> Corpus:
    """Generate and annotate a HappyDB-like corpus of happy moments."""
    rng = random.Random(seed)
    pipeline = pipeline or Pipeline()
    texts: dict[str, str] = {}
    for index in range(moments):
        doc_id = f"happy-{index:05d}"
        sentence = rng.choice(_MOMENTS).format(
            relative=rng.choice(_RELATIVES),
            food=rng.choice(_FOODS),
            city=names.city(rng),
        )
        followup = rng.choice(_FOLLOWUPS)
        texts[doc_id] = f"{sentence} {followup}".strip()
    return pipeline.annotate_corpus(texts, name="happydb")
