"""Synthetic corpora and query benchmarks used by the experiments."""

from .cafe_blogs import BARISTAMAG, SPRUDGE, CafeBlogConfig, generate_cafe_corpus
from .happydb import generate_happydb_corpus
from .synthetic_queries import (
    SpanBenchmarkQuery,
    TreeBenchmarkQuery,
    generate_span_benchmark,
    generate_tree_benchmark,
)
from .tweets import generate_tweet_corpus
from .wikipedia import WikipediaConfig, generate_wikipedia_corpus

__all__ = [
    "BARISTAMAG",
    "CafeBlogConfig",
    "SPRUDGE",
    "SpanBenchmarkQuery",
    "TreeBenchmarkQuery",
    "WikipediaConfig",
    "generate_cafe_corpus",
    "generate_happydb_corpus",
    "generate_span_benchmark",
    "generate_tree_benchmark",
    "generate_tweet_corpus",
    "generate_wikipedia_corpus",
]
