"""Synthetic WNUT-like tweets with gold sports teams and facilities (Section 6.1).

Each tweet is one short, stand-alone document — the property the paper uses
to explain why KOKO's cross-sentence evidence aggregation gives a smaller
advantage here than on cafe blogs.  Gold annotations cover two entity kinds:
sports teams and facilities.
"""

from __future__ import annotations

import random

from ..nlp.pipeline import Pipeline
from ..nlp.types import Corpus
from . import names

_TEAM_TEMPLATES = [
    "Go {team}!",
    "{team} vs {team2} tonight, cannot wait.",
    "{team} to host {team2} this weekend.",
    "Huge win for {team} in the soccer derby.",
    "{team} versus {team2} was the best game all season.",
    "So proud of {team} after that comeback.",
]
_FACILITY_TEMPLATES = [
    "Watching the game at {facility} with friends.",
    "Went to {facility} today, the place was packed.",
    "Meet me at {facility} around 7 pm.",
    "Long lines at {facility} again this morning.",
    "They are renovating {facility} before the new season.",
    "Go to {facility} early if you want good seats.",
]
_BOTH_TEMPLATES = [
    "{team} play at {facility} tonight.",
    "Saw {team} practice at {facility} this afternoon.",
    "{facility} will host {team} vs {team2} next week.",
]
_NOISE_TEMPLATES = [
    "Best coffee I have had in weeks, so happy right now.",
    "Traffic was terrible today, missed half the morning.",
    "New phone arrived and the battery lasts forever.",
    "Anyone have plans for tomorrow at 8 pm?",
    "That movie last night was such a letdown.",
    "Happy birthday to my favorite person in the world!",
]


def generate_tweet_corpus(
    tweets: int = 400,
    seed: int = 31,
    pipeline: Pipeline | None = None,
) -> Corpus:
    """Generate and annotate a tweet corpus with gold teams and facilities."""
    rng = random.Random(seed)
    pipeline = pipeline or Pipeline()
    texts: dict[str, str] = {}
    gold_teams: dict[str, set[str]] = {}
    gold_facilities: dict[str, set[str]] = {}

    for index in range(tweets):
        doc_id = f"tweet-{index:05d}"
        roll = rng.random()
        teams: set[str] = set()
        facilities: set[str] = set()
        if roll < 0.30:
            team, team2 = names.team_name(rng), names.team_name(rng)
            text = rng.choice(_TEAM_TEMPLATES).format(team=team, team2=team2)
            teams.add(team)
            if "{team2}" in rng.choice(_TEAM_TEMPLATES):
                pass
            if team2 in text:
                teams.add(team2)
        elif roll < 0.55:
            facility = names.facility_name(rng)
            text = rng.choice(_FACILITY_TEMPLATES).format(facility=facility)
            facilities.add(facility)
        elif roll < 0.70:
            team, team2 = names.team_name(rng), names.team_name(rng)
            facility = names.facility_name(rng)
            text = rng.choice(_BOTH_TEMPLATES).format(
                team=team, team2=team2, facility=facility
            )
            teams.add(team)
            if team2 in text:
                teams.add(team2)
            facilities.add(facility)
        else:
            text = rng.choice(_NOISE_TEMPLATES)
        texts[doc_id] = text
        gold_teams[doc_id] = teams
        gold_facilities[doc_id] = facilities

    corpus = pipeline.annotate_corpus(texts, name="wnut")
    corpus.gold["team"] = gold_teams
    corpus.gold["facility"] = gold_facilities
    return corpus
