"""Synthetic query benchmarks (Sections 6.2.2 and 6.2.3).

Two benchmarks drive the index and skip-plan experiments:

* **SyntheticTree** — tree-pattern queries over node variables, varying the
  path length (2-5), the attribute layers used (parse labels only; parse
  labels + POS tags; parse labels + POS tags + words), wildcard presence,
  root anchoring, and — for multi-variable queries — the number of labels in
  the tree pattern (3-10).  Queries are *sampled from the corpus* so that
  every query has non-zero selectivity and the selectivity varies naturally,
  exactly as in the paper's benchmark.
* **SyntheticSpan** — extract clauses with span variables made of 1, 3 or 5
  atoms (mixing paths, elastic spans and words), rendered as KOKO query
  strings, used to measure the Generate-Skip-Plan module (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..indexing.query_ir import (
    CHILD,
    DESCENDANT,
    KIND_ANY,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePath,
    TreePatternQuery,
    TreeStep,
)
from ..nlp.types import Corpus, Sentence

_ATTRIBUTE_SETTINGS = ("pl", "pl_pos", "pl_pos_text")
_PATH_LENGTHS = (2, 3, 4, 5)
_TREE_LABEL_COUNTS = (3, 4, 5, 6, 7, 8, 9, 10)


# ----------------------------------------------------------------------
# SyntheticTree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TreeBenchmarkQuery:
    """One benchmark query plus the knobs that generated it."""

    query: TreePatternQuery
    length: int
    attributes: str
    wildcard: bool
    anchored: bool
    multi_variable: bool


def generate_tree_benchmark(
    corpus: Corpus,
    queries_per_setting: int = 5,
    seed: int = 41,
) -> list[TreeBenchmarkQuery]:
    """Generate the SyntheticTree benchmark by sampling paths from *corpus*.

    With the default ``queries_per_setting`` of 5 the benchmark contains
    4 lengths x 3 attribute settings x 2 wildcard x 2 anchoring x 5 = 240
    single-variable queries plus 8 label counts x 5 = 40 multi-variable
    queries. The paper's benchmark has 350 queries built over the same
    parameter grid; pass a larger ``queries_per_setting`` to scale up.
    """
    rng = random.Random(seed)
    sentences = [sentence for _, sentence in corpus.all_sentences() if len(sentence) >= 6]
    if not sentences:
        raise ValueError("corpus has no sentences long enough to sample queries from")

    benchmark: list[TreeBenchmarkQuery] = []
    counter = 0
    for length in _PATH_LENGTHS:
        for attributes in _ATTRIBUTE_SETTINGS:
            for wildcard in (False, True):
                for anchored in (True, False):
                    for _ in range(queries_per_setting):
                        query = _sample_path_query(
                            rng, sentences, length, attributes, wildcard, anchored,
                            name=f"tree-{counter:04d}",
                        )
                        counter += 1
                        if query is None:
                            continue
                        benchmark.append(
                            TreeBenchmarkQuery(
                                query=query,
                                length=length,
                                attributes=attributes,
                                wildcard=wildcard,
                                anchored=anchored,
                                multi_variable=False,
                            )
                        )
    for label_count in _TREE_LABEL_COUNTS:
        for _ in range(queries_per_setting):
            query = _sample_tree_query(
                rng, sentences, label_count, name=f"tree-{counter:04d}"
            )
            counter += 1
            if query is None:
                continue
            benchmark.append(
                TreeBenchmarkQuery(
                    query=query,
                    length=label_count,
                    attributes="pl_pos",
                    wildcard=False,
                    anchored=True,
                    multi_variable=True,
                )
            )
    return benchmark


def _sample_root_path(
    rng: random.Random, sentences: list[Sentence], length: int
) -> tuple[Sentence, list[int]] | None:
    """A random root-to-node token chain of *length* tokens, or None."""
    for _ in range(200):
        sentence = rng.choice(sentences)
        deep_tokens = [
            tok.index for tok in sentence if sentence.depth(tok.index) == length - 1
        ]
        if not deep_tokens:
            continue
        tid = rng.choice(deep_tokens)
        chain = [tid]
        while not sentence[chain[-1]].is_root:
            chain.append(sentence[chain[-1]].head)
        chain.reverse()
        if len(chain) == length:
            return sentence, chain
    return None


def _step_for_token(
    sentence: Sentence, tid: int, layer: str, axis: str
) -> TreeStep:
    token = sentence[tid]
    if layer == "pos":
        return TreeStep(axis=axis, label=token.pos.lower(), kind=KIND_POS)
    if layer == "word":
        return TreeStep(axis=axis, label=token.text.lower(), kind=KIND_WORD)
    return TreeStep(axis=axis, label=token.label.lower(), kind=KIND_PARSE_LABEL)


def _choose_layer(rng: random.Random, attributes: str, is_last: bool) -> str:
    if attributes == "pl":
        return "pl"
    if attributes == "pl_pos":
        return rng.choice(["pl", "pos"])
    if is_last and rng.random() < 0.5:
        return "word"
    return rng.choice(["pl", "pos", "word"])


def _sample_path_query(
    rng: random.Random,
    sentences: list[Sentence],
    length: int,
    attributes: str,
    wildcard: bool,
    anchored: bool,
    name: str,
) -> TreePatternQuery | None:
    sampled = _sample_root_path(rng, sentences, length)
    if sampled is None:
        return None
    sentence, chain = sampled
    steps: list[TreeStep] = []
    for position, tid in enumerate(chain):
        layer = _choose_layer(rng, attributes, is_last=position == len(chain) - 1)
        axis = CHILD
        steps.append(_step_for_token(sentence, tid, layer, axis))
    if wildcard and length >= 3:
        middle = rng.randrange(1, length - 1)
        steps[middle] = TreeStep(axis=steps[middle].axis, label="*", kind=KIND_ANY)
    if not anchored:
        # drop the root step and make the new first step a descendant step
        steps = steps[1:]
        steps[0] = TreeStep(axis=DESCENDANT, label=steps[0].label, kind=steps[0].kind)
    if not steps:
        return None
    return TreePatternQuery(name=name, paths=[TreePath(steps=tuple(steps))])


def _sample_tree_query(
    rng: random.Random, sentences: list[Sentence], label_count: int, name: str
) -> TreePatternQuery | None:
    """A multi-variable query: a shared prefix path plus child branches."""
    base_length = max(2, min(4, label_count - 1))
    sampled = _sample_root_path(rng, sentences, base_length)
    if sampled is None:
        return None
    sentence, chain = sampled
    prefix_steps = [
        _step_for_token(sentence, tid, _choose_layer(rng, "pl_pos", False), CHILD)
        for tid in chain
    ]
    paths = [TreePath(steps=tuple(prefix_steps))]
    labels_used = base_length
    anchor = chain[-1]
    children = sentence.children(anchor)
    child_index = 0
    while labels_used < label_count and child_index < len(children):
        child = children[child_index]
        child_index += 1
        branch_steps = prefix_steps + [
            _step_for_token(sentence, child, _choose_layer(rng, "pl_pos", True), CHILD)
        ]
        paths.append(TreePath(steps=tuple(branch_steps)))
        labels_used += 1
    if labels_used < label_count:
        # extend with descendant steps sampled from the subtree
        subtree = [t for t in sentence.subtree_indices(anchor) if t != anchor]
        rng.shuffle(subtree)
        for tid in subtree:
            if labels_used >= label_count:
                break
            branch_steps = prefix_steps + [
                _step_for_token(sentence, tid, _choose_layer(rng, "pl_pos", True), DESCENDANT)
            ]
            paths.append(TreePath(steps=tuple(branch_steps)))
            labels_used += 1
    return TreePatternQuery(name=name, paths=paths)


# ----------------------------------------------------------------------
# SyntheticSpan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanBenchmarkQuery:
    """One span-variable benchmark query: its KOKO text and its atom count."""

    text: str
    atoms: int


def generate_span_benchmark(
    corpus: Corpus,
    queries_per_setting: int = 100,
    seed: int = 53,
) -> list[SpanBenchmarkQuery]:
    """Generate the SyntheticSpan benchmark (1 / 3 / 5 atoms per span variable).

    Atoms are sampled from real sentences of *corpus* so every query has at
    least one match; odd-numbered positions become elastic ``^`` atoms,
    which is what gives the skip plan something to skip (at most 0, 1 and 2
    skippable atoms respectively, as in the paper).
    """
    rng = random.Random(seed)
    sentences = [sentence for _, sentence in corpus.all_sentences() if len(sentence) >= 8]
    if not sentences:
        raise ValueError("corpus has no sentences long enough to sample queries from")

    benchmark: list[SpanBenchmarkQuery] = []
    for atoms in (1, 3, 5):
        produced = 0
        attempts = 0
        while produced < queries_per_setting and attempts < queries_per_setting * 50:
            attempts += 1
            query_text = _sample_span_query(rng, sentences, atoms)
            if query_text is None:
                continue
            benchmark.append(SpanBenchmarkQuery(text=query_text, atoms=atoms))
            produced += 1
    return benchmark


def _sample_span_query(
    rng: random.Random, sentences: list[Sentence], atoms: int
) -> str | None:
    sentence = rng.choice(sentences)
    content = [
        tok for tok in sentence if tok.pos not in {"PUNCT"} and not tok.is_root
    ]
    anchors_needed = (atoms + 1) // 2
    if len(content) < anchors_needed:
        return None
    picked = sorted(rng.sample(range(len(content)), anchors_needed))
    anchor_tokens = [content[i] for i in picked]

    parts: list[str] = []
    for position in range(atoms):
        if position % 2 == 1:
            parts.append("^")
            continue
        token = anchor_tokens[position // 2]
        choice = rng.random()
        if choice < 0.4:
            parts.append(f"//{token.pos.lower()}")
        elif choice < 0.7:
            parts.append(f"//{token.label.lower()}" if token.label != "root" else "//verb")
        else:
            escaped = token.text.replace('"', "")
            parts.append(f'"{escaped}"')
    span_definition = " + ".join(parts)
    return (
        "extract s:Str from input.txt if (\n"
        "/ROOT:{\n"
        f"s = {span_definition}\n"
        "})"
    )
