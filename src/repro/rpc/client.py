"""Clients for the query/ingest RPC tier: blocking and asyncio.

:class:`RpcClient` is the blocking client.  Because the RPC wire dialect
is the replication transport's framing plus the same HMAC handshake, the
blocking client simply *is* a
:class:`~repro.replication.transport.TcpTransport` obtained from
``connect_tcp`` — no second framing implementation to keep in sync.

:class:`AsyncRpcClient` is the asyncio twin for event-loop callers (and
for tests that drive many concurrent requests without threads).

Both expose the same surface: ``query``, ``query_batch``,
``add_document`` / ``add_documents`` (with ``wait_durable=False`` for
pipelined acks), ``remove_document``, ``flush`` (the durability
barrier), ``ping`` and ``info``.  Server faults come back as the typed
:class:`~repro.errors.RpcError` subclasses (``raise_fault``); a dropped
connection surfaces as :class:`~repro.errors.RpcUnavailable`.

Every request carries the client's ``client_id`` (the admission-control
identity — defaults to a per-process-unique name) and an optional
``deadline``: a **relative** seconds budget the server anchors to its own
clock, immune to client/server clock skew.

**Tracing and timing.**  Both clients accept ``trace_sample_rate``: a
sampled call opens a client-side ``rpc.call`` root span, sends its
:class:`~repro.observability.tracing.TraceContext` in the request header
(the server continues the trace instead of sampling locally), and
records the finished span — split into wire vs server time using the
response's ``server_ms`` — into the client's own small
:class:`~repro.observability.tracestore.TraceStore` (``client.traces``).
Even untraced, every response's ``server_ms`` feeds the running
:meth:`~_CallMixin.stats` wire/server split.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import socket
import threading
import time

from ..errors import RpcError, RpcUnavailable
from ..observability.tracestore import TraceStore
from ..observability.tracing import Span, TraceContext, Tracer
from ..replication.transport import (
    TcpTransport,
    TransportClosed,
    answer_auth_challenge,
)
from .wire import (
    RpcRequest,
    RpcResponse,
    answer_auth_challenge_async,
    decode_message,
    encode_message,
    frame_message,
    raise_fault,
    read_frame,
)

__all__ = ["AsyncRpcClient", "RpcClient"]

_client_counter = itertools.count()


def _default_client_id() -> str:
    """A per-process-unique admission identity for anonymous clients."""
    return f"client-{os.getpid()}-{next(_client_counter)}"


class _CallMixin:
    """The op surface shared by the blocking and asyncio clients.

    Subclasses provide ``_call(op, args, deadline)``; every public method
    is a thin, documented wrapper assembling the ``args`` payload.  The
    blocking client's ``_call`` is synchronous and the async client's is
    a coroutine — callers of the mixin methods inherit that coloring.
    """

    def _call(self, op: str, args: dict, deadline: float | None):
        raise NotImplementedError  # pragma: no cover - subclasses override

    # -- client-side tracing + wire/server timing ----------------------
    def _init_tracing(self, trace_sample_rate: float) -> None:
        """Set up the sampler, the client-local trace store and stats."""
        self._tracer = Tracer(trace_sample_rate)
        #: completed client-side ``rpc.call`` traces (small local ring)
        self.traces = TraceStore(capacity=32)
        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "faults": 0,
            "rtt_ms_total": 0.0,
            "server_ms_total": 0.0,
            "timed": 0,  # responses that carried server_ms
        }

    def _begin_call(self, op: str):
        """Sampling decision for one call: ``(context, span, started)``."""
        ctx: TraceContext | None = None
        span: Span | None = None
        if self._tracer.should_sample():
            ctx = TraceContext.root()
            span = Span(
                "rpc.call",
                op=op,
                client_id=self.client_id,
                trace_id=ctx.trace_id,
            )
        return ctx, span, time.perf_counter()

    def _finish_call(
        self,
        ctx: TraceContext | None,
        span: Span | None,
        started: float,
        server_ms: float | None,
        fault_code: str | None = None,
    ) -> None:
        """Account one completed exchange; record the span when traced."""
        rtt_ms = (time.perf_counter() - started) * 1000.0
        with self._stats_lock:
            self._stats["requests"] += 1
            self._stats["rtt_ms_total"] += rtt_ms
            if fault_code is not None:
                self._stats["faults"] += 1
            if server_ms is not None:
                self._stats["server_ms_total"] += server_ms
                self._stats["timed"] += 1
        if span is None or ctx is None:
            return
        if server_ms is not None:
            span.annotate(
                server_ms=server_ms,
                wire_ms=round(max(rtt_ms - server_ms, 0.0), 3),
            )
        if fault_code is not None:
            span.annotate(fault=fault_code)
        span.finish()
        self.traces.record(ctx, span, kind="client", node=self.client_id)

    def stats(self) -> dict:
        """Running request counters with the wire-vs-server time split.

        ``server_ms_avg`` / ``wire_ms_avg`` are computed over the
        responses that carried ``server_ms`` (``timed``); ``wire`` is the
        round trip minus the server's dispatch time — framing, kernel,
        network and client-side scheduling.
        """
        with self._stats_lock:
            snapshot = dict(self._stats)
        timed = snapshot["timed"]
        snapshot["rtt_ms_avg"] = (
            round(snapshot["rtt_ms_total"] / snapshot["requests"], 3)
            if snapshot["requests"]
            else None
        )
        snapshot["server_ms_avg"] = (
            round(snapshot["server_ms_total"] / timed, 3) if timed else None
        )
        if timed and snapshot["requests"]:
            wire = snapshot["rtt_ms_avg"] - snapshot["server_ms_avg"]
            snapshot["wire_ms_avg"] = round(max(wire, 0.0), 3)
        else:
            snapshot["wire_ms_avg"] = None
        return snapshot

    def ping(self):
        """Liveness probe; returns the server's identity dict."""
        return self._call("ping", {}, None)

    def info(self):
        """The server's name, node kind, document count and shard count."""
        return self._call("info", {}, None)

    def query(
        self,
        query: str,
        *,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        read_your_writes=None,
        prefer_primary: bool = False,
        deadline: float | None = None,
    ):
        """Evaluate one KOKO query on the server; returns a ``KokoResult``.

        ``read_your_writes`` takes a ``WalPosition`` token from a prior
        write; a non-router server that has not caught up answers with a
        ``stale_read`` fault, a router routes around stale replicas.
        ``deadline`` is a relative seconds budget enforced server-side.
        """
        return self._call(
            "query",
            {
                "query": query,
                "threshold_override": threshold_override,
                "keep_all_scores": keep_all_scores,
                "read_your_writes": read_your_writes,
                "prefer_primary": prefer_primary,
            },
            deadline,
        )

    def query_batch(
        self,
        queries,
        *,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        read_your_writes=None,
        prefer_primary: bool = False,
        deadline: float | None = None,
    ):
        """Evaluate *queries* in order under one shared deadline."""
        return self._call(
            "query_batch",
            {
                "queries": list(queries),
                "threshold_override": threshold_override,
                "keep_all_scores": keep_all_scores,
                "read_your_writes": read_your_writes,
                "prefer_primary": prefer_primary,
            },
            deadline,
        )

    def add_document(
        self,
        text: str,
        *,
        doc_id: str | None = None,
        wait_durable: bool = True,
        deadline: float | None = None,
    ):
        """Ingest one document; returns an ack dict.

        With ``wait_durable=False`` the server acks after the in-memory
        splice, before the WAL fsync (``durable: False`` in the ack);
        :meth:`flush` is the durability barrier.  The ack's ``token`` is
        a read-your-writes ``WalPosition``.
        """
        return self._call(
            "add_document",
            {"text": text, "doc_id": doc_id, "wait_durable": wait_durable},
            deadline,
        )

    def add_documents(
        self,
        texts,
        *,
        doc_ids=None,
        batch_size: int | None = None,
        wait_durable: bool = True,
        deadline: float | None = None,
    ):
        """Bulk-ingest *texts* in one round trip; returns an ack dict.

        Server-side this maps to ``KokoService.add_documents`` — one
        claim/commit round and roughly one group-committed fsync per
        ``batch_size`` documents instead of one of each per document.
        """
        return self._call(
            "add_documents",
            {
                "texts": list(texts),
                "doc_ids": list(doc_ids) if doc_ids is not None else None,
                "batch_size": batch_size,
                "wait_durable": wait_durable,
            },
            deadline,
        )

    def remove_document(self, doc_id: str, *, deadline: float | None = None):
        """Remove one document through the server's write path."""
        return self._call("remove_document", {"doc_id": doc_id}, deadline)

    def flush(self):
        """Durability barrier: fsync the server's WAL; returns the
        durable ``WalPosition`` token."""
        return self._call("flush", {}, None)


class RpcClient(_CallMixin):
    """Blocking RPC client over a :class:`TcpTransport` connection.

    Thread-safe: a lock serialises request/response exchanges, so one
    client may be shared across threads (each call holds the connection
    for its full round trip).

    ``trace_sample_rate`` samples calls into client-side ``rpc.call``
    root spans whose :class:`TraceContext` the server continues; the
    finished traces land in ``client.traces`` and :meth:`stats` keeps
    the wire-vs-server time split for every call, traced or not.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        auth_token: bytes | str | None = None,
        client_id: str | None = None,
        timeout: float = 30.0,
        default_deadline: float | None = None,
        trace_sample_rate: float = 0.0,
    ) -> None:
        self.client_id = client_id if client_id is not None else _default_client_id()
        self.default_deadline = default_deadline
        self.timeout = timeout
        self._init_tracing(trace_sample_rate)
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            if auth_token is not None:
                answer_auth_challenge(sock, auth_token)
        except Exception:
            sock.close()
            raise
        self._transport = TcpTransport(sock)
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)

    def _call(self, op: str, args: dict, deadline: float | None):
        """One request/response exchange; faults re-raise typed."""
        if deadline is None:
            deadline = self.default_deadline
        ctx, span, started = self._begin_call(op)
        request = RpcRequest(
            op=op,
            args=args,
            request_id=next(self._request_ids),
            client_id=self.client_id,
            deadline=deadline,
            trace=ctx,
        )
        with self._lock:
            try:
                self._transport.send(request)
                response = self._transport.recv(timeout=self.timeout)
            except TransportClosed as exc:
                raise RpcUnavailable(f"server connection lost: {exc}") from exc
            except OSError as exc:
                raise RpcUnavailable(f"server connection failed: {exc}") from exc
        if not isinstance(response, RpcResponse):
            raise RpcError(f"unexpected message from server: {response!r}")
        if response.request_id != request.request_id:
            raise RpcError(
                f"response id {response.request_id} does not match "
                f"request id {request.request_id}"
            )
        self._finish_call(
            ctx,
            span,
            started,
            response.server_ms,
            fault_code=response.fault.code if response.fault is not None else None,
        )
        if response.fault is not None:
            raise_fault(response.fault)
        return response.value

    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._transport.close()

    def __enter__(self) -> "RpcClient":
        """Context-manager entry: returns the connected client."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()


class AsyncRpcClient(_CallMixin):
    """asyncio RPC client; every op method is a coroutine.

    Create with :meth:`connect`.  An asyncio lock serialises exchanges so
    one client can be shared across tasks.
    """

    def __init__(
        self,
        reader,
        writer,
        client_id: str | None = None,
        trace_sample_rate: float = 0.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.client_id = client_id if client_id is not None else _default_client_id()
        self.default_deadline: float | None = None
        self._lock = asyncio.Lock()
        self._request_ids = itertools.count(1)
        self._init_tracing(trace_sample_rate)

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        auth_token: bytes | str | None = None,
        client_id: str | None = None,
        timeout: float = 10.0,
        trace_sample_rate: float = 0.0,
    ) -> "AsyncRpcClient":
        """Open a connection (and run the handshake when *auth_token*)."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
        try:
            if auth_token is not None:
                await asyncio.wait_for(
                    answer_auth_challenge_async(reader, writer, auth_token),
                    timeout=timeout,
                )
        except Exception:
            writer.close()
            raise
        return cls(
            reader, writer, client_id=client_id, trace_sample_rate=trace_sample_rate
        )

    async def _call(self, op: str, args: dict, deadline: float | None):
        """One request/response exchange; faults re-raise typed."""
        if deadline is None:
            deadline = self.default_deadline
        ctx, span, started = self._begin_call(op)
        request = RpcRequest(
            op=op,
            args=args,
            request_id=next(self._request_ids),
            client_id=self.client_id,
            deadline=deadline,
            trace=ctx,
        )
        async with self._lock:
            try:
                self._writer.write(frame_message(encode_message(request)))
                await self._writer.drain()
                payload = await read_frame(self._reader)
            except (ConnectionError, OSError) as exc:
                raise RpcUnavailable(f"server connection failed: {exc}") from exc
        if payload is None:
            raise RpcUnavailable("server closed the connection")
        response = decode_message(payload)
        if not isinstance(response, RpcResponse):
            raise RpcError(f"unexpected message from server: {response!r}")
        if response.request_id != request.request_id:
            raise RpcError(
                f"response id {response.request_id} does not match "
                f"request id {request.request_id}"
            )
        self._finish_call(
            ctx,
            span,
            started,
            response.server_ms,
            fault_code=response.fault.code if response.fault is not None else None,
        )
        if response.fault is not None:
            raise_fault(response.fault)
        return response.value

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:  # pragma: no cover - peer already gone
            pass

    async def __aenter__(self) -> "AsyncRpcClient":
        """Async context-manager entry: returns the connected client."""
        return self

    async def __aexit__(self, *exc_info) -> None:
        """Async context-manager exit: :meth:`close`."""
        await self.close()
