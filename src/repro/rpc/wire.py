"""Wire format of the query/ingest RPC tier.

The RPC tier speaks the **same framing** as the replication transport
(:class:`~repro.replication.transport.TcpTransport`): a little-endian
``u64`` length prefix followed by a pickled message, and the same mutual
HMAC challenge-response before any byte is unpickled (async variants of
the handshake live here for the asyncio server and client).  Keeping the
frame format shared means a blocking RPC client literally *is* a
``TcpTransport`` — one wire dialect across the whole system.

Messages are two frozen dataclasses:

* :class:`RpcRequest` — ``op`` (operation name), ``args`` (keyword
  payload), plus four headers: ``request_id`` (echoed back so a client
  can pipeline), ``client_id`` (the admission-control identity),
  ``deadline`` (a **relative** seconds budget — relative so clock skew
  between client and server cannot distort it; the server anchors it to
  its own monotonic clock at receipt) and ``trace`` (an optional
  :class:`~repro.observability.tracing.TraceContext` — the server
  continues the caller's trace instead of sampling locally).
* :class:`RpcResponse` — the echoed ``request_id``, either a ``value``
  or an :class:`RpcFault` carrying a stable error ``code`` that
  :func:`raise_fault` maps back to the typed
  :class:`~repro.errors.RpcError` hierarchy on the client, and
  ``server_ms`` (server-side dispatch wall time, so every client —
  traced or not — can split wire time from server time).

**Trust model**: identical to the replication transport — pickled frames
stay inside one trust domain, the token gates accidental exposure.
"""

from __future__ import annotations

import asyncio
import hmac
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import NoReturn

from ..errors import (
    DeadlineExceeded,
    KokoSemanticError,
    KokoSyntaxError,
    ReplicationError,
    RpcBadRequest,
    RpcDeadlineExceeded,
    RpcError,
    RpcRateLimited,
    RpcReadOnly,
    RpcServerError,
    RpcStaleRead,
    RpcUnavailable,
    ServiceError,
)
from ..observability.tracing import TraceContext
from ..replication.transport import (
    _AUTH_DIGEST_LEN,
    _AUTH_NONCE_LEN,
    _auth_digest,
)

__all__ = [
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "FrameError",
    "FrameTooLarge",
    "RpcFault",
    "RpcRequest",
    "RpcResponse",
    "TraceContext",
    "answer_auth_challenge_async",
    "decode_message",
    "encode_message",
    "fault_for",
    "frame_message",
    "issue_auth_challenge_async",
    "raise_fault",
    "read_frame",
]

#: the length prefix — identical to ``TcpTransport``'s, on purpose
FRAME_HEADER = struct.Struct("<Q")

#: default upper bound on one frame; a header announcing more is treated
#: as garbage and the connection is dropped before any allocation
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(RpcError):
    """The byte stream did not contain a well-formed frame."""

    code = "bad_frame"


class FrameTooLarge(FrameError):
    """A frame header announced a payload over the configured bound."""

    code = "frame_too_large"


@dataclass(frozen=True)
class RpcRequest:
    """One client request: operation, payload, and the four headers."""

    op: str
    args: dict = field(default_factory=dict)
    request_id: int = 0
    client_id: str | None = None
    deadline: float | None = None  # relative seconds budget, None = none
    trace: TraceContext | None = None  # propagated trace context, None = untraced


@dataclass(frozen=True)
class RpcFault:
    """A typed failure crossing the wire as data (code + message)."""

    code: str
    message: str


@dataclass(frozen=True)
class RpcResponse:
    """One server response: the echoed id and a value *or* a fault.

    ``server_ms`` is the server-side dispatch wall time in milliseconds
    (admission wait + queue wait + handler), set on success *and* fault
    responses; subtracting it from the client-observed round trip gives
    the wire + handshake share without any tracing enabled.
    """

    request_id: int
    value: object = None
    fault: RpcFault | None = None
    server_ms: float | None = None


def encode_message(message: object) -> bytes:
    """Serialise one message — byte-identical to ``TcpTransport.send``'s
    payload encoding (highest-protocol pickle)."""
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def decode_message(payload: bytes) -> object:
    """Inverse of :func:`encode_message`; raises :class:`FrameError` on
    bytes that do not decode."""
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"undecodable frame payload: {exc!r}") from exc


def frame_message(payload: bytes) -> bytes:
    """Prefix an encoded payload with the u64 length header."""
    return FRAME_HEADER.pack(len(payload)) + payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    timeout: float | None = None,
) -> bytes | None:
    """Read one whole frame payload from an asyncio stream.

    Returns ``None`` on a clean EOF at a frame boundary.  Raises
    :class:`FrameTooLarge` when the header announces more than
    *max_frame_bytes* (the stream cannot be resynchronised — drop the
    connection), :class:`FrameError` on a mid-frame EOF, and
    :class:`asyncio.TimeoutError` when *timeout* elapses first (the
    slow-loris guard: a peer trickling header bytes forever is cut off).
    """

    async def _read() -> bytes | None:
        try:
            header = await reader.readexactly(FRAME_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between frames
            raise FrameError("connection closed mid-header") from exc
        (length,) = FRAME_HEADER.unpack(header)
        if length > max_frame_bytes:
            raise FrameTooLarge(
                f"frame of {length} bytes exceeds the {max_frame_bytes}-byte bound"
            )
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise FrameError("connection closed mid-frame") from exc

    if timeout is None:
        return await _read()
    return await asyncio.wait_for(_read(), timeout=timeout)


# -- fault mapping ------------------------------------------------------

_FAULT_TYPES: dict[str, type[RpcError]] = {
    cls.code: cls
    for cls in (
        RpcBadRequest,
        RpcRateLimited,
        RpcDeadlineExceeded,
        RpcReadOnly,
        RpcStaleRead,
        RpcUnavailable,
        RpcServerError,
        FrameError,
        FrameTooLarge,
    )
}


def fault_for(exc: BaseException) -> RpcFault:
    """Map a server-side exception to the :class:`RpcFault` it ships as.

    Typed RPC errors keep their code; the service layer's client-caused
    failures (bad query syntax/semantics, duplicate or unknown doc ids)
    become ``bad_request``; a replica's read-only rejection becomes
    ``read_only``; an expired cooperative deadline becomes
    ``deadline_exceeded``; everything else is a ``server_error``.
    """
    if isinstance(exc, RpcError):
        return RpcFault(code=exc.code, message=str(exc))
    if isinstance(exc, DeadlineExceeded):
        return RpcFault(code=RpcDeadlineExceeded.code, message=str(exc))
    if isinstance(exc, (KokoSyntaxError, KokoSemanticError, ServiceError)):
        return RpcFault(
            code=RpcBadRequest.code, message=f"{type(exc).__name__}: {exc}"
        )
    if isinstance(exc, ReplicationError):
        return RpcFault(code=RpcReadOnly.code, message=str(exc))
    return RpcFault(
        code=RpcServerError.code, message=f"{type(exc).__name__}: {exc}"
    )


def raise_fault(fault: RpcFault) -> NoReturn:
    """Re-raise a wire fault as its typed client-side exception."""
    raise _FAULT_TYPES.get(fault.code, RpcServerError)(fault.message)


# -- async HMAC handshake ----------------------------------------------
#
# The same mutual challenge-response as the replication transport (see
# its module docstring for the protocol), transliterated to asyncio
# streams for the RPC server and async client.


async def issue_auth_challenge_async(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    token: bytes | str,
) -> bool:
    """Listener side of the mutual handshake (asyncio); True on success."""
    server_nonce = os.urandom(_AUTH_NONCE_LEN)
    writer.write(server_nonce)
    await writer.drain()
    answer = await reader.readexactly(_AUTH_NONCE_LEN + _AUTH_DIGEST_LEN)
    client_nonce, digest = answer[:_AUTH_NONCE_LEN], answer[_AUTH_NONCE_LEN:]
    if not hmac.compare_digest(
        digest, _auth_digest(token, b"client", server_nonce)
    ):
        return False
    writer.write(_auth_digest(token, b"server", client_nonce))
    await writer.drain()
    return True


async def answer_auth_challenge_async(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    token: bytes | str,
) -> None:
    """Dialer side of the mutual handshake (asyncio); raises
    :class:`RpcUnavailable` when the listener cannot prove the token."""
    server_nonce = await reader.readexactly(_AUTH_NONCE_LEN)
    client_nonce = os.urandom(_AUTH_NONCE_LEN)
    writer.write(client_nonce + _auth_digest(token, b"client", server_nonce))
    await writer.drain()
    proof = await reader.readexactly(_AUTH_DIGEST_LEN)
    if not hmac.compare_digest(
        proof, _auth_digest(token, b"server", client_nonce)
    ):
        raise RpcUnavailable(
            "server failed the auth handshake: wrong or missing token"
        )
