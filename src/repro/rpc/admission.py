"""Admission control for the RPC tier: per-client token buckets.

PR 5's ingest admission is FIFO-ticketed *inside* the service — it orders
writers fairly once they are in the building.  The network tier needs the
complementary gate at the front door: **per-client rate limits**, so one
greedy client cannot monopolise the serving capacity of everyone sharing
the endpoint.  The generalisation is a classic token bucket per
``(client, kind)``:

* each bucket refills continuously at ``rate`` tokens/second up to a
  ``burst`` cap, so short bursts are absorbed but sustained overload is
  rejected with a typed :class:`~repro.errors.RpcRateLimited` fault —
  the client can back off instead of queueing blindly;
* *fairness falls out of the per-client split*: every client draws from
  its own bucket, so a rate-limited client is rejected while the others
  proceed untouched (tested explicitly in ``tests/rpc``);
* queries and ingests are limited independently (``kind``), matching how
  their costs differ by orders of magnitude.

Buckets are created lazily and the table is bounded: past
``max_tracked_clients`` the least-recently-seen client's bucket is
evicted (it re-admits at full burst later — a deliberate bias toward
availability over perfect memory).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..errors import RpcRateLimited

__all__ = ["AdmissionController", "AdmissionPolicy", "TokenBucket"]


class TokenBucket:
    """A thread-safe token bucket refilling on the monotonic clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be > 0 tokens, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; False (no blocking) otherwise."""
        now = time.monotonic()
        with self._lock:
            elapsed = now - self._refilled_at
            self._refilled_at = now
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """The current (refill-adjusted) token count."""
        now = time.monotonic()
        with self._lock:
            return min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Rate-limit knobs of one RPC endpoint (``None`` = unlimited).

    ``*_rate`` is the sustained per-client budget in operations/second;
    ``*_burst`` is the bucket depth (defaults to ``max(rate, 1)`` so a
    fresh client can always issue at least one operation immediately).
    """

    query_rate: float | None = None
    query_burst: float | None = None
    ingest_rate: float | None = None
    ingest_burst: float | None = None

    def limit_for(self, kind: str) -> tuple[float, float] | None:
        """The ``(rate, burst)`` pair for *kind*, or ``None`` (unlimited)."""
        rate = self.query_rate if kind == "query" else self.ingest_rate
        if rate is None:
            return None
        burst = self.query_burst if kind == "query" else self.ingest_burst
        return rate, burst if burst is not None else max(rate, 1.0)


class AdmissionController:
    """Per-client token-bucket admission with a bounded client table."""

    def __init__(
        self, policy: AdmissionPolicy, max_tracked_clients: int = 4096
    ) -> None:
        self.policy = policy
        self.max_tracked_clients = max_tracked_clients
        self._buckets: OrderedDict[tuple[str, str], TokenBucket] = OrderedDict()
        self._lock = threading.Lock()

    def admit(self, client_id: str, kind: str, cost: float = 1.0) -> None:
        """Admit one *kind* operation for *client_id* or raise.

        Raises :class:`RpcRateLimited` when the client's bucket lacks
        *cost* tokens.  Unlimited kinds admit without touching the table.
        """
        limit = self.policy.limit_for(kind)
        if limit is None:
            return
        rate, burst = limit
        key = (client_id, kind)
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(rate, burst)
                self._buckets[key] = bucket
            self._buckets.move_to_end(key)
            while len(self._buckets) > self.max_tracked_clients:
                self._buckets.popitem(last=False)
        if not bucket.try_acquire(cost):
            raise RpcRateLimited(
                f"client {client_id!r} exceeded its {kind} rate "
                f"({rate:g}/s, burst {burst:g}); retry later"
            )

    def tracked_clients(self) -> int:
        """How many ``(client, kind)`` buckets are live (observability)."""
        with self._lock:
            return len(self._buckets)
