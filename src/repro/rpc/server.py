"""The asyncio RPC server: one node's network front door.

``RpcServer`` serves queries and ingest over TCP for any node kind —
a primary :class:`~repro.service.service.KokoService`, a read-only
:class:`~repro.replication.replica.ReplicaService` follower (closing the
"replica query RPC" item: replicas answer the same ``query`` op,
tuple-identically), or a :class:`~repro.replication.router.ReplicaSet`
(reads fan across replicas with read-your-writes tokens, writes go to the
primary).  The wire dialect is the replication transport's framing plus
the same mutual HMAC handshake (:mod:`repro.rpc.wire`).

Production admission machinery lives at this boundary:

* **per-client token buckets** (:mod:`repro.rpc.admission`) reject a
  client that exceeds its query/ingest rate with a typed
  ``rate_limited`` fault while other clients proceed;
* **server-side deadlines** — a request's relative budget is anchored to
  the server's monotonic clock at receipt; an already-expired deadline is
  rejected before any work runs, and an in-flight query is cooperatively
  cancelled through ``KokoService.query(deadline=...)`` (queued shards of
  a timed-out query never start);
* **bulk ingest** maps to :meth:`KokoService.add_documents` (one
  claim/commit round and ~one fsync per batch);
* **pipelined acks** — ``add_document(wait_durable=False)`` acks after
  the splice, before the fsync; the ``flush`` op is the commit barrier;
* **trace continuation** — a request carrying a
  :class:`~repro.observability.tracing.TraceContext` header continues
  the *caller's* trace (the caller's sampling decision wins — the
  server never samples RPC work locally): a sampled request gets an
  ``rpc.server`` fragment with admission-wait, executor queue-wait and
  deadline-slack spans, recorded into the node's ``TraceStore``, and
  the context is threaded into the service call so the query/ingest
  span tree (and, for ingest, the WAL record → shipper → replica
  chain) joins the same trace.  Every response carries ``server_ms``
  so even untraced clients can split wire time from server time.

Lifecycle follows the telemetry server: an asyncio loop on a daemon
thread, ``start()`` returning the bound address, idempotent ``close()``.
Faulty connections (garbage frames, oversized headers, handshake
failures, slow-loris idling) are dropped — counted in the node's metrics
registry under ``koko_rpc_transport_errors_total`` — without disturbing
the other connections.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..errors import (
    ReplicationError,
    RpcBadRequest,
    RpcDeadlineExceeded,
    RpcReadOnly,
    RpcStaleRead,
)
from ..observability.exposition import _node_kind
from ..observability.tracing import Span, TraceContext
from ..replication.shipper import _is_loopback
from ..service.service import IngestAck
from .admission import AdmissionController, AdmissionPolicy
from .wire import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameTooLarge,
    RpcRequest,
    RpcResponse,
    decode_message,
    encode_message,
    fault_for,
    frame_message,
    issue_auth_challenge_async,
    read_frame,
)

__all__ = ["RpcServer"]

#: ops that mutate state — rejected on replicas, ingest-bucket admitted
_WRITE_OPS = frozenset({"add_document", "add_documents", "remove_document", "flush"})

#: ops exempt from admission control (health plumbing, not user work)
_UNMETERED_OPS = frozenset({"ping", "info"})


class RpcServer:
    """Serve the query/ingest RPC protocol for one node.

    Parameters
    ----------
    node:
        A ``KokoService``, ``ReplicaService`` or ``ReplicaSet``; the kind
        is duck-typed and decides write admission and token checking.
    host / port:
        Bind address; port 0 picks a free port (returned by
        :meth:`start`).  A non-loopback *host* requires ``auth_token``
        unless ``allow_unauthenticated=True`` — frames are pickles, the
        same trust model as the replication listener.
    auth_token:
        Shared secret for the mutual HMAC handshake; clients must present
        it before any frame is exchanged.
    admission:
        An :class:`AdmissionPolicy` (or prepared
        :class:`AdmissionController`); ``None`` admits everything.
    max_frame_bytes / idle_timeout / handshake_timeout:
        Transport hardening: frames over the bound, connections idle past
        the timeout, and handshakes that stall are dropped (and counted).
    default_deadline:
        Budget in seconds applied to requests that carry none
        (``None`` = no server-imposed deadline).
    max_workers:
        Executor threads running the blocking node calls.
    name:
        Label for thread names and ``ping``/``info`` responses.
    """

    def __init__(
        self,
        node,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        auth_token: bytes | str | None = None,
        allow_unauthenticated: bool = False,
        admission: AdmissionPolicy | AdmissionController | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout: float = 300.0,
        handshake_timeout: float = 5.0,
        default_deadline: float | None = None,
        max_workers: int = 8,
        name: str | None = None,
    ) -> None:
        if auth_token is None and not allow_unauthenticated and not _is_loopback(host):
            raise ReplicationError(
                f"refusing to serve unauthenticated RPC on {host!r}: frames "
                "are pickles (remote code execution for anyone who can "
                "connect) — pass auth_token=..., or allow_unauthenticated="
                "True on an otherwise-isolated network"
            )
        self.node = node
        self.name = name if name is not None else getattr(node, "name", "rpc")
        self.auth_token = auth_token
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout = idle_timeout
        self.handshake_timeout = handshake_timeout
        self.default_deadline = default_deadline
        self._host = host
        self._port = port
        self._kind = _node_kind(node)
        if isinstance(admission, AdmissionPolicy):
            admission = AdmissionController(admission)
        self._admission = admission
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=f"rpc-{self.name}"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None
        registry = node.metrics
        self._requests = registry.counter(
            "koko_rpc_requests_total", "RPC requests received", ("op",)
        )
        self._faults = registry.counter(
            "koko_rpc_faults_total", "RPC requests answered with a fault", ("code",)
        )
        self._transport_errors = registry.counter(
            "koko_rpc_transport_errors_total",
            "RPC connections dropped by fault kind",
            ("kind",),
        )
        self._connections = registry.gauge(
            "koko_rpc_open_connections", "Currently open RPC connections"
        )
        self._latency = registry.histogram(
            "koko_rpc_request_seconds", "RPC request service time", ("op",)
        )
        self._inflight = registry.gauge(
            "koko_rpc_inflight_requests",
            "RPC requests currently being dispatched",
        )
        self._queue_wait = registry.histogram(
            "koko_rpc_executor_queue_wait_seconds",
            "Time a dispatched request waited for an executor thread",
        )
        self._handlers = {
            "query": self._op_query,
            "query_batch": self._op_query_batch,
            "add_document": self._op_add_document,
            "add_documents": self._op_add_documents,
            "remove_document": self._op_remove_document,
            "flush": self._op_flush,
            "info": self._op_info,
        }

    # ------------------------------------------------------------------
    # lifecycle (the telemetry-server pattern: loop on a daemon thread)
    # ------------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``."""
        if self._thread is not None:
            return self.address
        ready = threading.Event()
        failure: list[BaseException] = []
        loop = asyncio.new_event_loop()
        self._loop = loop

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(self._serve_connection, self._host, self._port)
                )
            except BaseException as exc:  # bind failure: surface to start()
                failure.append(exc)
                ready.set()
                return
            self.address = server.sockets[0].getsockname()[:2]
            ready.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(
            target=run, name=f"rpc-server-{self.name}", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        if failure:
            self._thread.join(timeout=1.0)
            self._thread = None
            self._loop = None
            raise failure[0]
        return self.address

    def close(self) -> None:
        """Stop serving (idempotent); open connections are abandoned."""
        loop, thread = self._loop, self._thread
        self._loop = self._thread = None
        if loop is not None:
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
            if thread is not None:
                thread.join(timeout=5.0)
        self._executor.shutdown(wait=False)

    @property
    def listening(self) -> bool:
        """True while the server thread is alive and bound."""
        thread = self._thread
        return thread is not None and thread.is_alive() and self.address is not None

    def __enter__(self) -> "RpcServer":
        """Context-manager entry: :meth:`start`, returning the server."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: :meth:`close`."""
        self.close()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        """One accepted connection: handshake, then a request loop.

        Any transport-level fault (garbage, oversized frame, mid-frame
        disconnect, idle timeout, failed handshake) drops **this**
        connection only — the serve loop keeps accepting others.
        """
        self._connections.inc()
        peername = writer.get_extra_info("peername") or ("unknown", 0)
        peer = f"{peername[0]}:{peername[1]}"
        try:
            if self.auth_token is not None:
                try:
                    ok = await asyncio.wait_for(
                        issue_auth_challenge_async(reader, writer, self.auth_token),
                        timeout=self.handshake_timeout,
                    )
                except Exception:
                    ok = False
                if not ok:
                    self._transport_errors.labels("auth_failure").inc()
                    return
            while True:
                try:
                    payload = await read_frame(
                        reader, self.max_frame_bytes, timeout=self.idle_timeout
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self._transport_errors.labels("idle_timeout").inc()
                    return
                except FrameTooLarge:
                    self._transport_errors.labels("oversized_frame").inc()
                    return
                except FrameError:
                    self._transport_errors.labels("bad_frame").inc()
                    return
                if payload is None:
                    return  # clean disconnect at a frame boundary
                received_at = time.monotonic()
                try:
                    message = decode_message(payload)
                except FrameError:
                    self._transport_errors.labels("garbage_frame").inc()
                    return
                if not isinstance(message, RpcRequest):
                    self._transport_errors.labels("garbage_frame").inc()
                    return
                response = await self._dispatch(message, received_at, peer)
                writer.write(frame_message(encode_message(response)))
                await writer.drain()
        except (ConnectionError, OSError):
            self._transport_errors.labels("disconnect").inc()
        finally:
            self._connections.dec()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - peer already gone
                pass

    async def _dispatch(
        self, request: RpcRequest, received_at: float, peer: str
    ) -> RpcResponse:
        """Admission → deadline → execute; every failure becomes a fault.

        A request whose ``trace`` header is sampled gets an ``rpc.server``
        fragment continuing the caller's trace — admission wait, executor
        queue wait and the handler's deadline slack become spans — and the
        derived context is threaded into the node call so the service's
        own span tree joins the trace.  Every response (success or fault)
        carries ``server_ms``.
        """
        self._requests.labels(request.op).inc()
        self._inflight.inc()
        started = time.perf_counter()
        ctx = request.trace if isinstance(request.trace, TraceContext) else None
        span: Span | None = None
        frag: TraceContext | None = None
        if ctx is not None and ctx.sampled and request.op != "ping":
            frag = ctx.child()
            span = Span(
                "rpc.server",
                op=request.op,
                node=self.name,
                trace_id=ctx.trace_id,
                client_id=request.client_id or peer,
            )
        try:
            if request.op == "ping":
                value: object = {"ok": True, "kind": self._kind, "name": self.name}
            else:
                if self._admission is not None and request.op not in _UNMETERED_OPS:
                    client = request.client_id or peer
                    kind = "ingest" if request.op in _WRITE_OPS else "query"
                    admit_started = time.perf_counter()
                    self._admission.admit(client, kind)
                    if span is not None:
                        span.record(
                            "admission_wait",
                            time.perf_counter() - admit_started,
                            kind=kind,
                        )
                budget = (
                    request.deadline
                    if request.deadline is not None
                    else self.default_deadline
                )
                deadline_at = None if budget is None else received_at + budget
                if deadline_at is not None and time.monotonic() >= deadline_at:
                    raise RpcDeadlineExceeded(
                        f"deadline of {budget:g}s expired before "
                        f"{request.op!r} started"
                    )
                value = await self._execute(request, deadline_at, frag, span)
                if span is not None and deadline_at is not None:
                    span.annotate(
                        deadline_slack_ms=round(
                            (deadline_at - time.monotonic()) * 1000.0, 3
                        )
                    )
            fault = None
        except Exception as exc:
            value = None
            fault = fault_for(exc)
            self._faults.labels(fault.code).inc()
            if span is not None:
                span.annotate(fault=fault.code)
        finally:
            self._inflight.dec()
        elapsed = time.perf_counter() - started
        self._latency.labels(request.op).observe(elapsed)
        if span is not None and frag is not None:
            span.finish()
            store = getattr(self._underlying_service(), "trace_store", None)
            if store is not None:
                store.record(
                    frag,
                    span,
                    parent_span_id=ctx.span_id,
                    kind="rpc",
                    node=self.name,
                )
        return RpcResponse(
            request_id=request.request_id,
            value=value,
            fault=fault,
            server_ms=round(elapsed * 1000.0, 3),
        )

    async def _execute(
        self,
        request: RpcRequest,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        span: Span | None = None,
    ):
        """Run one op's blocking handler on the executor, deadline-bounded.

        The deadline is enforced twice: cooperatively inside the service
        (queued shards never start once it passes) and as an
        ``asyncio.wait_for`` backstop here, so even an op with no
        cooperative checks cannot hold the response past its budget.
        The time between submission and the handler actually starting is
        the executor queue wait — observed into the queue-wait histogram
        and, when traced, recorded as a ``queue_wait`` span.
        """
        handler = self._handlers.get(request.op)
        if handler is None:
            raise RpcBadRequest(f"unknown op {request.op!r}")
        loop = asyncio.get_running_loop()
        submitted = time.perf_counter()
        args = dict(request.args)
        client_id = request.client_id

        def run():
            queue_wait = time.perf_counter() - submitted
            self._queue_wait.observe(queue_wait)
            if span is not None:
                span.record("queue_wait", queue_wait)
            return handler(args, deadline_at, trace_ctx, client_id)

        future = loop.run_in_executor(self._executor, run)
        if deadline_at is None:
            return await future
        remaining = deadline_at - time.monotonic()
        try:
            return await asyncio.wait_for(future, timeout=max(remaining, 0.001))
        except (asyncio.TimeoutError, TimeoutError):
            raise RpcDeadlineExceeded(
                f"deadline expired while {request.op!r} was executing"
            ) from None

    # ------------------------------------------------------------------
    # op handlers (run on the executor; blocking is fine here)
    # ------------------------------------------------------------------
    def _underlying_service(self):
        """The ``KokoService`` behind this node (itself, for a primary)."""
        if self._kind == "replica":
            return self.node.service
        if self._kind == "router":
            return self.node.primary
        return self.node

    def _require_writable(self) -> None:
        """Reject writes on read-only nodes with a typed fault."""
        if self._kind == "replica":
            raise RpcReadOnly(f"{self.name} is a read-only replica")

    def _check_token(self, token) -> None:
        """Enforce a read-your-writes token on a non-router node.

        A replica must have applied past the token
        (:meth:`ReplicaService.caught_up_to`); a primary compares its own
        durable position.  Routers skip this — their ``query`` already
        routes around stale replicas and falls back to the primary.
        """
        if token is None:
            return
        if self._kind == "replica":
            if not self.node.caught_up_to(token):
                raise RpcStaleRead(
                    f"{self.name} has not applied up to {token} yet"
                )
        else:
            position = self.node.wal_position()
            if position is not None and position < token:
                raise RpcStaleRead(
                    f"{self.name} durable position {position} is behind {token}"
                )

    def _query_kwargs(self, args: dict, deadline_at: float | None) -> dict:
        """The keyword arguments every query-shaped op forwards."""
        return {
            "threshold_override": args.get("threshold_override"),
            "keep_all_scores": bool(args.get("keep_all_scores", False)),
            "deadline": deadline_at,
        }

    def _op_query(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``query``: evaluate one query; returns the ``KokoResult``."""
        kwargs = self._query_kwargs(args, deadline_at)
        kwargs["trace_context"] = trace_ctx
        kwargs["client_id"] = client_id
        token = args.get("read_your_writes")
        if self._kind == "router":
            return self.node.query(
                args["query"],
                read_your_writes=token,
                prefer_primary=bool(args.get("prefer_primary", False)),
                **kwargs,
            )
        self._check_token(token)
        return self.node.query(args["query"], **kwargs)

    def _op_query_batch(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``query_batch``: evaluate queries in order, one shared deadline."""
        out = []
        for query in args["queries"]:
            out.append(
                self._op_query(
                    {**args, "query": query}, deadline_at, trace_ctx, client_id
                )
            )
        return out

    def _op_add_document(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``add_document``: single ingest, optionally with a pipelined ack."""
        self._require_writable()
        wait_durable = bool(args.get("wait_durable", True))
        ingest_kwargs = dict(
            doc_id=args.get("doc_id"),
            wait_durable=wait_durable,
            trace_context=trace_ctx,
            client_id=client_id,
        )
        if self._kind == "router":
            result, token = self.node.add_document(args["text"], **ingest_kwargs)
        else:
            result = self.node.add_document(args["text"], **ingest_kwargs)
            token = self.node.wal_position()
        if isinstance(result, IngestAck):
            document, durable = result.document, result.durable
        else:
            document, durable = result, True
        return {
            "doc_id": document.doc_id,
            "sentences": len(document),
            "tokens": document.num_tokens,
            "token": token,
            "durable": durable,
        }

    def _op_add_documents(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``add_documents``: bulk ingest, claim/commit amortised per batch."""
        self._require_writable()
        kwargs = {
            "doc_ids": args.get("doc_ids"),
            "wait_durable": bool(args.get("wait_durable", True)),
        }
        if args.get("batch_size") is not None:
            kwargs["batch_size"] = int(args["batch_size"])
        if self._kind == "router":
            documents, token = self.node.add_documents(args["texts"], **kwargs)
        else:
            documents = self.node.add_documents(args["texts"], **kwargs)
            token = self.node.wal_position()
        return {
            "doc_ids": [document.doc_id for document in documents],
            "count": len(documents),
            "token": token,
            "durable": kwargs["wait_durable"],
        }

    def _op_remove_document(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``remove_document``: staged removal through the write path."""
        self._require_writable()
        remove_kwargs = dict(trace_context=trace_ctx, client_id=client_id)
        if self._kind == "router":
            document, token = self.node.remove_document(
                args["doc_id"], **remove_kwargs
            )
        else:
            document = self.node.remove_document(args["doc_id"], **remove_kwargs)
            token = self.node.wal_position()
        return {"doc_id": document.doc_id, "token": token}

    def _op_flush(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``flush``: the durability barrier for pipelined/bulk ingest."""
        self._require_writable()
        token = self._underlying_service().wait_durable()
        return {"token": token}

    def _op_info(
        self,
        args: dict,
        deadline_at: float | None,
        trace_ctx: TraceContext | None = None,
        client_id: str | None = None,
    ):
        """``info``: identity and corpus shape, for clients and probes."""
        service = self._underlying_service()
        return {
            "name": self.name,
            "kind": self._kind,
            "documents": len(service),
            "shards": service.shard_count,
        }
