"""Network query/ingest RPC tier.

The network front door of a KOKO deployment: :class:`RpcServer` serves
queries and ingest over the replication transport's framed+HMAC wire for
any node kind (primary service, read-only replica, or router), with
per-client token-bucket admission (:class:`AdmissionPolicy`),
server-side query deadlines, bulk ingest and pipelined durability acks.
:class:`RpcClient` (blocking) and :class:`AsyncRpcClient` (asyncio) are
the matching clients.  See ``docs/OPERATIONS.md`` for the operator
knobs and ``docs/ARCHITECTURE.md`` for the dataflow.
"""

from .admission import AdmissionController, AdmissionPolicy, TokenBucket
from .client import AsyncRpcClient, RpcClient
from .server import RpcServer
from .wire import (
    FrameError,
    FrameTooLarge,
    RpcFault,
    RpcRequest,
    RpcResponse,
)

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AsyncRpcClient",
    "FrameError",
    "FrameTooLarge",
    "RpcClient",
    "RpcFault",
    "RpcRequest",
    "RpcResponse",
    "RpcServer",
    "TokenBucket",
]
