"""Tokeniser for the KOKO query language.

The surface language is small: identifiers, double-quoted strings, numbers,
a handful of multi-character symbols (``//``, ``[[``, ``]]``) and
single-character punctuation.  The wedge of the paper (the elastic span ∧)
is written ``^`` in ASCII queries; the Unicode character is accepted too.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KokoSyntaxError

# token types
IDENT = "IDENT"
STRING = "STRING"
NUMBER = "NUMBER"
SYMBOL = "SYMBOL"
EOF = "EOF"

# multi-character symbols, longest first
_MULTI_SYMBOLS = ["[[", "]]", "//"]
_SINGLE_SYMBOLS = set("(){}[],:=+/^.*~")

# keywords are case-sensitive except the satisfying-clause operators, which
# the paper writes in both spellings ("similarTo" / "SimilarTo")
KEYWORDS = {
    "extract", "from", "if", "satisfying", "with", "threshold", "excluding",
    "in", "eq", "or", "and", "contains", "mentions", "matches", "near",
    "similarto", "dict", "str",
}


@dataclass(frozen=True)
class Token:
    """One lexical token: type, text, and character position."""

    type: str
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type == IDENT and self.text.lower() == word.lower()

    def is_symbol(self, symbol: str) -> bool:
        return self.type == SYMBOL and self.text == symbol


class Lexer:
    """Convert a query string into a list of tokens."""

    def __init__(self, text: str) -> None:
        self.text = text.replace("∧", "^").replace("“", '"').replace("”", '"')
        self.position = 0

    def tokens(self) -> list[Token]:
        """Tokenise the entire input."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type == EOF:
                return out

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self.position >= len(self.text):
            return Token(EOF, "", self.position)
        start = self.position
        char = self.text[start]

        if char == '"':
            return self._string(start)
        if char.isdigit() or (
            char == "." and start + 1 < len(self.text) and self.text[start + 1].isdigit()
        ):
            return self._number(start)
        for symbol in _MULTI_SYMBOLS:
            if self.text.startswith(symbol, start):
                self.position += len(symbol)
                return Token(SYMBOL, symbol, start)
        if char in _SINGLE_SYMBOLS:
            self.position += 1
            return Token(SYMBOL, char, start)
        if char.isalpha() or char == "_" or char == "@":
            return self._identifier(start)
        raise KokoSyntaxError(f"unexpected character {char!r}", start)

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self.text[self.position]
            if char.isspace():
                self.position += 1
            elif char == "#":
                while self.position < len(self.text) and self.text[self.position] != "\n":
                    self.position += 1
            else:
                return

    def _string(self, start: int) -> Token:
        self.position = start + 1
        chars: list[str] = []
        while self.position < len(self.text):
            char = self.text[self.position]
            if char == "\\" and self.position + 1 < len(self.text):
                chars.append(self.text[self.position + 1])
                self.position += 2
                continue
            if char == '"':
                self.position += 1
                return Token(STRING, "".join(chars), start)
            chars.append(char)
            self.position += 1
        raise KokoSyntaxError("unterminated string literal", start)

    def _number(self, start: int) -> Token:
        self.position = start
        while self.position < len(self.text) and (
            self.text[self.position].isdigit() or self.text[self.position] == "."
        ):
            self.position += 1
        return Token(NUMBER, self.text[start : self.position], start)

    def _identifier(self, start: int) -> Token:
        self.position = start
        while self.position < len(self.text) and (
            self.text[self.position].isalnum()
            or self.text[self.position] in {"_", "-", "@", "'", "é"}
        ):
            self.position += 1
        return Token(IDENT, self.text[start : self.position], start)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper returning the token list of *text*."""
    return Lexer(text).tokens()
