"""Generate Skip Plan — Algorithm 2 of the paper.

For every *horizontal condition* (a span definition ``x = e1 + ... + em``)
and a given sentence, the skip plan selects atoms whose direct evaluation
should be skipped: their bindings are derived later from the bindings of
their neighbours.  The selection is greedy by estimated cost — the number of
candidate bindings the atom has in the sentence, with an elastic span ``^``
costing ``t(t+1)/2`` (all possible spans of a ``t``-token sentence) — under
the constraint that two adjacent atoms are never both skipped (otherwise the
gap between their neighbours would be ambiguous).

When DPLI ran against columnar indexes (``dpli.supports_batch``), the cost
model can be evaluated for **all candidate sentences at once**: every atom's
per-sentence binding counts come back as one searchsorted pass over the
variable's sorted sid column (:func:`generate_skip_plans_batch`), and only
the tiny greedy selection still runs per sentence.  Both paths share the
greedy step and produce identical plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .ast import Elastic, PathExpr, SubtreeRef, TokenSeq
from .dpli import DpliResult
from .normalize import HorizontalCondition, NormalizedQuery


@dataclass
class SkipPlan:
    """The variables to skip, per horizontal condition target."""

    skip_lists: dict[str, list[str]] = field(default_factory=dict)

    def skipped(self, target: str) -> set[str]:
        return set(self.skip_lists.get(target, ()))

    def total_skipped(self) -> int:
        return sum(len(v) for v in self.skip_lists.values())


def estimate_cost(
    atom_var: str,
    normalized: NormalizedQuery,
    dpli: DpliResult,
    sid: int,
    sentence_tokens: int,
) -> float:
    """The cost model of Section 4.3: binding count, or t(t+1)/2 for ``^``."""
    atom = normalized.atom_vars.get(atom_var)
    if isinstance(atom, Elastic):
        return sentence_tokens * (sentence_tokens + 1) / 2.0
    if isinstance(atom, TokenSeq):
        # occurrences of a literal token sequence: at most t
        return float(sentence_tokens)
    if isinstance(atom, SubtreeRef):
        return float(max(1, dpli.bindings_count(atom.var, sid)))
    if isinstance(atom, PathExpr):
        return float(sentence_tokens)
    # a real variable: its candidate binding count in this sentence
    return float(max(1, dpli.bindings_count(atom_var, sid)))


def _estimate_cost_array(
    atom_var: str,
    normalized: NormalizedQuery,
    dpli: DpliResult,
    sids: np.ndarray,
    token_counts: np.ndarray,
) -> np.ndarray:
    """:func:`estimate_cost` for every candidate sentence in one pass."""
    atom = normalized.atom_vars.get(atom_var)
    tokens = token_counts.astype(np.float64)
    if isinstance(atom, Elastic):
        return tokens * (tokens + 1.0) / 2.0
    if isinstance(atom, TokenSeq):
        return tokens
    if isinstance(atom, SubtreeRef):
        counts = dpli.bindings_count_array(atom.var, sids)
        return np.maximum(1, counts).astype(np.float64)
    if isinstance(atom, PathExpr):
        return tokens
    counts = dpli.bindings_count_array(atom_var, sids)
    return np.maximum(1, counts).astype(np.float64)


def generate_skip_plan(
    normalized: NormalizedQuery,
    dpli: DpliResult,
    sid: int,
    sentence_tokens: int,
) -> SkipPlan:
    """Run Algorithm 2 for one sentence."""
    plan = SkipPlan()
    for condition in normalized.horizontal_conditions:
        plan.skip_lists[condition.target] = _skip_list_for(
            condition, normalized, dpli, sid, sentence_tokens
        )
    return plan


def generate_skip_plans_batch(
    normalized: NormalizedQuery,
    dpli: DpliResult,
    sids: list[int],
    token_counts: list[int],
) -> dict[int, SkipPlan]:
    """Run Algorithm 2 for many sentences with vectorized cost estimation.

    Returns one :class:`SkipPlan` per sentence id, identical to what
    :func:`generate_skip_plan` would produce sentence by sentence — the cost
    arrays round-trip through Python floats before the greedy sort, so the
    orderings (and hence the plans) match bit for bit.
    """
    plans = {sid: SkipPlan() for sid in sids}
    if not sids:
        return plans
    sid_arr = np.asarray(sids, dtype=np.int64)
    token_arr = np.asarray(token_counts, dtype=np.int64)
    for condition in normalized.horizontal_conditions:
        atom_vars = condition.atom_vars
        if len(atom_vars) <= 1:
            for plan in plans.values():
                plan.skip_lists[condition.target] = []
            continue
        cost_columns = {
            var: _estimate_cost_array(
                var, normalized, dpli, sid_arr, token_arr
            ).tolist()
            for var in atom_vars
        }
        for row, sid in enumerate(sids):
            costs = {var: cost_columns[var][row] for var in atom_vars}
            plans[sid].skip_lists[condition.target] = _greedy_skip_list(
                atom_vars, costs
            )
    return plans


def _skip_list_for(
    condition: HorizontalCondition,
    normalized: NormalizedQuery,
    dpli: DpliResult,
    sid: int,
    sentence_tokens: int,
) -> list[str]:
    atom_vars = condition.atom_vars
    if len(atom_vars) <= 1:
        return []
    costs = {
        var: estimate_cost(var, normalized, dpli, sid, sentence_tokens)
        for var in atom_vars
    }
    return _greedy_skip_list(atom_vars, costs)


def _greedy_skip_list(atom_vars: list[str], costs: dict[str, float]) -> list[str]:
    """Greedy selection: highest cost first; skip unless a neighbour is skipped."""
    ordered = sorted(atom_vars, key=lambda v: -costs[v])
    skipped: list[str] = []
    skipped_set: set[str] = set()
    for var in ordered:
        index = atom_vars.index(var)
        left = atom_vars[index - 1] if index > 0 else None
        right = atom_vars[index + 1] if index + 1 < len(atom_vars) else None
        if (left is None or left not in skipped_set) and (
            right is None or right not in skipped_set
        ):
            skipped.append(var)
            skipped_set.add(var)
    return skipped
