"""The KOKO query language and evaluation engine (the paper's contribution)."""

from .aggregate import AggregationOutcome, EvidenceAggregator
from .ast import (
    AdjacencyCondition,
    Declaration,
    DescriptorCondition,
    Elastic,
    EntityBinding,
    ExcludingClause,
    InDictCondition,
    KokoQuery,
    NearCondition,
    OutputVar,
    PathExpr,
    PathStep,
    SatisfyingClause,
    SimilarToCondition,
    SpanExpr,
    StepCondition,
    StrCondition,
    SubtreeRef,
    TokenSeq,
    VarConstraint,
    VarRef,
    WeightedCondition,
)
from .conditions import ConditionScorer, EvidenceResources, Occurrence, find_occurrences
from .dpli import DpliResult, run_dpli
from .engine import KokoEngine
from .evaluator import Assignment, Binding, SentenceEvaluator
from .gsp import SkipPlan, estimate_cost, generate_skip_plan
from .normalize import HorizontalCondition, NormalizedQuery, normalize
from .parser import Parser, parse_query
from .paths import dominant_paths, is_dominated, label_kind, to_tree_path
from .results import ExtractionTuple, KokoResult, StageTimings

__all__ = [
    "AdjacencyCondition",
    "AggregationOutcome",
    "Assignment",
    "Binding",
    "ConditionScorer",
    "Declaration",
    "DescriptorCondition",
    "DpliResult",
    "Elastic",
    "EntityBinding",
    "EvidenceAggregator",
    "EvidenceResources",
    "ExcludingClause",
    "ExtractionTuple",
    "HorizontalCondition",
    "InDictCondition",
    "KokoEngine",
    "KokoQuery",
    "KokoResult",
    "NearCondition",
    "NormalizedQuery",
    "Occurrence",
    "OutputVar",
    "Parser",
    "PathExpr",
    "PathStep",
    "SatisfyingClause",
    "SentenceEvaluator",
    "SimilarToCondition",
    "SkipPlan",
    "SpanExpr",
    "StageTimings",
    "StepCondition",
    "StrCondition",
    "SubtreeRef",
    "TokenSeq",
    "VarConstraint",
    "VarRef",
    "WeightedCondition",
    "dominant_paths",
    "estimate_cost",
    "find_occurrences",
    "generate_skip_plan",
    "is_dominated",
    "label_kind",
    "normalize",
    "parse_query",
    "run_dpli",
    "to_tree_path",
]
