"""The stage-pipeline execution core of the KOKO engine.

The four phases of Figure 2 (Normalize → DPLI → Load → GSP/Extract →
Aggregate) are modelled as explicit stage objects that pass one
:class:`ExecutionContext` along.  Splitting the monolithic evaluation loop
this way buys three things:

* each stage is **independently testable** — construct a context, run one
  stage, inspect what it added;
* stage wall-clock is **timed exactly once**, as a by-product of running
  the stage (no dry re-runs just to fill in
  :class:`~repro.koko.results.StageTimings`);
* a pipeline can run against **any index/corpus slice** — the context
  carries the index set, the sid → sentence map and the corpus explicitly,
  which is what lets :class:`~repro.service.KokoService` execute the same
  query per shard and merge the results.

:class:`~repro.koko.engine.KokoEngine` is now a thin façade that builds a
context from its own corpus/indexes and runs :data:`DEFAULT_STAGES`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..indexing.koko_index import KokoIndexSet
from ..nlp.types import Corpus, Document, Sentence
from ..observability.tracing import Span
from .aggregate import EvidenceAggregator
from .ast import KokoQuery
from .conditions import ConditionScorer, EvidenceResources
from .dpli import DpliResult, run_dpli
from .evaluator import Assignment, SentenceEvaluator
from .normalize import NormalizedQuery, normalize
from .parser import parse_query
from .results import ExtractionTuple, KokoResult


@dataclass
class ExecutionContext:
    """Everything one query execution reads and produces.

    The *inputs* (query, corpus slice, indexes, resources) are set up by
    the caller; each stage fills in its *intermediate* output (``parsed``/
    ``normalized``, ``dpli``, ``documents``, ``candidates``) and accounts
    its own wall-clock in ``result.timings``.  ``finished`` short-circuits
    the remaining stages (set when DPLI proves the answer empty).
    """

    # --- inputs -------------------------------------------------------
    query: object  # str | KokoQuery | CompiledQuery
    corpus: Corpus
    indexes: KokoIndexSet
    by_sid: Mapping[int, tuple[Document, Sentence]]
    resources: EvidenceResources
    use_gsp: bool = True
    threshold_override: float | None = None
    keep_all_scores: bool = False
    #: optional trace span; when set, every stage run becomes a child span
    trace: Span | None = None

    # --- intermediate state, filled in stage by stage -----------------
    parsed: KokoQuery | None = None
    normalized: NormalizedQuery | None = None
    dpli: DpliResult | None = None
    #: (document, candidate sentences) groups produced by LoadStage
    documents: list[tuple[Document, list[Sentence]]] = field(default_factory=list)
    #: (document, [(sentence, assignment), ...]) groups produced by ExtractStage
    candidates: list[tuple[Document, list[tuple[Sentence, Assignment]]]] = field(
        default_factory=list
    )
    finished: bool = False

    # --- output -------------------------------------------------------
    result: KokoResult = field(default_factory=KokoResult)


class Stage:
    """One step of the execution pipeline; mutates the context in place."""

    name = "stage"

    def run(self, ctx: ExecutionContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NormalizeStage(Stage):
    """Parse (if needed) and normalise the query into the context.

    A pre-compiled query (anything carrying ``parsed`` and ``normalized``
    attributes, i.e. :class:`~repro.koko.engine.CompiledQuery`) skips the
    work entirely — the service's plan cache relies on that.
    """

    name = "normalize"

    def run(self, ctx: ExecutionContext) -> None:
        started = time.perf_counter()
        query = ctx.query
        if hasattr(query, "parsed") and hasattr(query, "normalized"):
            ctx.parsed, ctx.normalized = query.parsed, query.normalized
        else:
            ctx.parsed = parse_query(query) if isinstance(query, str) else query
            ctx.normalized = normalize(ctx.parsed)
        ctx.result.timings.normalize += time.perf_counter() - started


class DpliStage(Stage):
    """Decompose paths, look up the indexes, prune to candidate sentences."""

    name = "dpli"

    def run(self, ctx: ExecutionContext) -> None:
        started = time.perf_counter()
        ctx.dpli = run_dpli(ctx.normalized, ctx.indexes)
        ctx.result.timings.dpli += time.perf_counter() - started
        if ctx.dpli.provably_empty:
            ctx.finished = True


class LoadStage(Stage):
    """Group candidate sentences by document ("LoadArticle" of the paper)."""

    name = "load"

    def run(self, ctx: ExecutionContext) -> None:
        started = time.perf_counter()
        candidate_sids = ctx.dpli.candidate_sids if ctx.dpli is not None else None
        if candidate_sids is None:
            ctx.documents = [
                (document, list(document.sentences)) for document in ctx.corpus
            ]
        else:
            grouped: dict[str, tuple[Document, list[Sentence]]] = {}
            for sid in sorted(candidate_sids):
                located = ctx.by_sid.get(sid)
                if located is None:
                    continue
                document, sentence = located
                entry = grouped.get(document.doc_id)
                if entry is None:
                    grouped[document.doc_id] = (document, [sentence])
                else:
                    entry[1].append(sentence)
            ctx.documents = list(grouped.values())
        ctx.result.timings.load_articles += time.perf_counter() - started


class ExtractStage(Stage):
    """Evaluate the extract clause per candidate sentence (GSP + extract).

    The skip plan is generated once per sentence *inside* the evaluator,
    which accounts the planning wall-clock itself
    (:attr:`SentenceEvaluator.gsp_seconds`); this stage subtracts it out so
    ``timings.gsp`` and ``timings.extract`` partition the loop without any
    work running twice.  When DPLI carries sorted sid columns (columnar
    indexes), all skip plans are pre-generated in one vectorized batch
    before the sentence loop starts.
    """

    name = "extract"

    def run(self, ctx: ExecutionContext) -> None:
        started = time.perf_counter()
        evaluator = SentenceEvaluator(ctx.normalized, use_gsp=ctx.use_gsp)
        if ctx.use_gsp and ctx.dpli is not None and ctx.documents:
            evaluator.prepare_skip_plans(
                [sentence for _, sentences in ctx.documents for sentence in sentences],
                ctx.dpli,
            )
        result = ctx.result
        candidates: list[tuple[Document, list[tuple[Sentence, Assignment]]]] = []
        for document, sentences in ctx.documents:
            candidate_tuples: list[tuple[Sentence, Assignment]] = []
            for sentence in sentences:
                result.candidate_sentences += 1
                assignments = evaluator.evaluate(sentence, ctx.dpli)
                result.evaluated_sentences += 1
                for assignment in assignments:
                    candidate_tuples.append((sentence, assignment))
            candidates.append((document, candidate_tuples))
        ctx.candidates = candidates
        elapsed = time.perf_counter() - started
        result.timings.gsp += evaluator.gsp_seconds
        result.timings.extract += max(0.0, elapsed - evaluator.gsp_seconds)


class AggregateStage(Stage):
    """Score candidate values per document, apply thresholds and excluding."""

    name = "aggregate"

    def run(self, ctx: ExecutionContext) -> None:
        scorer = ConditionScorer(ctx.resources)
        aggregator = EvidenceAggregator(scorer)
        for document, candidate_tuples in ctx.candidates:
            started = time.perf_counter()
            self._aggregate_document(ctx, document, candidate_tuples, aggregator)
            ctx.result.timings.satisfying += time.perf_counter() - started

    def _aggregate_document(
        self,
        ctx: ExecutionContext,
        document: Document,
        candidate_tuples: list[tuple[Sentence, Assignment]],
        aggregator: EvidenceAggregator,
    ) -> None:
        parsed = ctx.parsed
        output_names = parsed.output_names()
        clause_cache: dict[tuple[str, str], tuple[float, bool]] = {}

        for sentence, assignment in candidate_tuples:
            values: list[tuple[str, str]] = []
            scores: list[tuple[str, float]] = []
            passed = True
            excluded = False

            for name in output_names:
                binding = assignment.get(name)
                if binding is None:
                    passed = False
                    break
                text = (
                    sentence.span_text(binding.start, binding.end)
                    if not binding.is_empty
                    else ""
                )
                values.append((name, text))

                clause = parsed.satisfying_for(name)
                if clause is not None:
                    key = (name, text.lower())
                    cached = clause_cache.get(key)
                    if cached is None:
                        outcome = aggregator.evaluate_clause(
                            clause, text, document, ctx.threshold_override
                        )
                        cached = (outcome.score, outcome.passed)
                        clause_cache[key] = cached
                    score, clause_passed = cached
                    scores.append((name, score))
                    if not clause_passed:
                        passed = False
                if parsed.excluding is not None and aggregator.is_excluded(
                    parsed.excluding, text, document
                ):
                    excluded = True

            if len(values) != len(output_names):
                continue
            # satisfying clauses over non-output variables (e.g. the verb
            # variable of the Chocolate / DateOfBirth queries)
            for clause in parsed.satisfying:
                if clause.variable in output_names:
                    continue
                binding = assignment.get(clause.variable)
                if binding is None:
                    continue
                text = sentence.span_text(binding.start, binding.end)
                key = (clause.variable, text.lower())
                cached = clause_cache.get(key)
                if cached is None:
                    outcome = aggregator.evaluate_clause(
                        clause, text, document, ctx.threshold_override
                    )
                    cached = (outcome.score, outcome.passed)
                    clause_cache[key] = cached
                score, clause_passed = cached
                scores.append((clause.variable, score))
                if not clause_passed:
                    passed = False

            if excluded:
                continue
            if passed or ctx.keep_all_scores:
                ctx.result.tuples.append(
                    ExtractionTuple(
                        doc_id=document.doc_id,
                        sid=sentence.sid,
                        values=tuple(values),
                        scores=tuple(scores),
                    )
                )


#: The engine's canonical stage order (Figure 2).
DEFAULT_STAGES: tuple[Stage, ...] = (
    NormalizeStage(),
    DpliStage(),
    LoadStage(),
    ExtractStage(),
    AggregateStage(),
)


class StagePipeline:
    """Run stages in order over one context, honouring short-circuits."""

    def __init__(self, stages: Sequence[Stage] = DEFAULT_STAGES) -> None:
        self.stages = tuple(stages)

    def run(self, ctx: ExecutionContext) -> KokoResult:
        trace = ctx.trace
        if trace is None:
            # untraced hot path: no span allocations at all
            for stage in self.stages:
                stage.run(ctx)
                if ctx.finished:
                    break
            return ctx.result
        for stage in self.stages:
            with trace.span(stage.name):
                stage.run(ctx)
            if ctx.finished:
                break
        return ctx.result
