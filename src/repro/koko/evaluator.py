"""Per-sentence evaluation of the extract clause (Section 4.3).

Given the candidate bindings DPLI derived from the indexes, the evaluator
produces, for one sentence, every assignment of variables that satisfies the
extract clause exactly: node variables bind to tokens matching their
absolute paths, entity variables bind to entity mentions, span variables are
assembled from their atoms according to the horizontal conditions (using the
skip plan to avoid enumerating elastic spans), and all explicit and derived
constraints are checked.

These exact checks are required because index-derived candidates are
complete but not sound ("the bindings obtained by evaluating the indices
with decomposed paths may still contain false answers").
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from itertools import product

from ..indexing.exact import match_path_in_sentence
from ..nlp.types import Sentence
from .ast import Elastic, PathExpr, SpanExpr, SubtreeRef, TokenSeq, VarRef
from .dpli import DpliResult
from .gsp import SkipPlan, generate_skip_plan, generate_skip_plans_batch
from .normalize import HorizontalCondition, NormalizedQuery
from .paths import to_tree_path

# A guard against pathological nested-loop sizes (mostly relevant for the
# NOGSP baseline on long sentences).
_MAX_ASSIGNMENTS_PER_SENTENCE = 200_000


@dataclass(frozen=True)
class Binding:
    """A variable's value within one sentence.

    ``start``/``end`` are inclusive token indexes; an *empty* binding (an
    elastic span matching zero tokens) has ``end == start - 1``.  ``node``
    is the token index for node-term variables, ``None`` otherwise.
    """

    sid: int
    start: int
    end: int
    node: int | None = None

    @property
    def is_empty(self) -> bool:
        return self.end < self.start

    def length(self) -> int:
        return 0 if self.is_empty else self.end - self.start + 1


Assignment = dict[str, Binding]


class SentenceEvaluator:
    """Evaluates the extract clause of one normalised query over sentences."""

    def __init__(self, normalized: NormalizedQuery, use_gsp: bool = True) -> None:
        self.normalized = normalized
        self.use_gsp = use_gsp
        #: cumulative wall-clock spent generating skip plans, so callers can
        #: report the GSP stage without re-running plan generation
        self.gsp_seconds = 0.0
        #: skip plans pre-generated in one vectorized pass (columnar DPLI);
        #: evaluate() falls back to per-sentence generation on misses
        self._plans: dict[int, SkipPlan] | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def prepare_skip_plans(self, sentences: list[Sentence], dpli: DpliResult) -> None:
        """Batch-generate skip plans for *sentences* ahead of evaluation.

        Only effective when GSP is enabled, the query has horizontal
        conditions, and DPLI carries the sorted sid columns that make the
        batched cost model possible (``dpli.supports_batch``); otherwise
        this is a no-op and :meth:`evaluate` keeps generating plans lazily.
        The time spent is accounted to ``gsp_seconds`` just like the
        per-sentence path, so stage timings remain comparable.
        """
        if not self.use_gsp or not sentences:
            return
        if not getattr(dpli, "supports_batch", False):
            return
        if not self.normalized.horizontal_conditions:
            return
        gsp_started = time.perf_counter()
        self._plans = generate_skip_plans_batch(
            self.normalized,
            dpli,
            [sentence.sid for sentence in sentences],
            [len(sentence) for sentence in sentences],
        )
        self.gsp_seconds += time.perf_counter() - gsp_started

    def evaluate(self, sentence: Sentence, dpli: DpliResult) -> list[Assignment]:
        """All assignments satisfying the extract clause in *sentence*."""
        if len(sentence) == 0:
            return []
        node_bindings = self._node_variable_bindings(sentence)
        if node_bindings is None:
            return []

        if self.use_gsp:
            skip_plan = (
                self._plans.get(sentence.sid) if self._plans is not None else None
            )
            if skip_plan is None:
                gsp_started = time.perf_counter()
                skip_plan = generate_skip_plan(
                    self.normalized, dpli, sentence.sid, len(sentence)
                )
                self.gsp_seconds += time.perf_counter() - gsp_started
        else:
            skip_plan = SkipPlan(
                skip_lists={c.target: [] for c in self.normalized.horizontal_conditions}
            )

        assignments = self._enumerate_node_assignments(sentence, node_bindings)
        assignments = self._extend_with_span_variables(sentence, assignments, skip_plan)
        assignments = [a for a in assignments if self._check_constraints(sentence, a)]
        return assignments

    # ------------------------------------------------------------------
    # node and entity variables
    # ------------------------------------------------------------------
    def _node_variable_bindings(
        self, sentence: Sentence
    ) -> dict[str, list[Binding]] | None:
        """Exact candidate bindings for entity and path variables, or None."""
        bindings: dict[str, list[Binding]] = {}
        for variable, etype in self.normalized.entity_vars.items():
            mentions = [
                Binding(sid=sentence.sid, start=m.start, end=m.end)
                for m in sentence.entities
                if self._entity_type_matches(m.etype, etype)
            ]
            if not mentions:
                return None
            bindings[variable] = mentions
        for variable, path in self.normalized.absolute_paths.items():
            matches = self._match_path(sentence, path)
            if not matches:
                return None
            bindings[variable] = matches
        return bindings

    @staticmethod
    def _entity_type_matches(mention_type: str, wanted: str) -> bool:
        wanted_low = wanted.lower()
        if wanted_low == "entity":
            return True
        aliases = {
            "person": {"PERSON"},
            "gpe": {"GPE"},
            "location": {"LOCATION", "GPE", "FACILITY"},
            "organization": {"ORGANIZATION"},
            "org": {"ORGANIZATION"},
            "date": {"DATE"},
            "facility": {"FACILITY"},
            "team": {"TEAM", "ORGANIZATION"},
        }
        return mention_type in aliases.get(wanted_low, {wanted.upper()})

    def _match_path(self, sentence: Sentence, path: PathExpr) -> list[Binding]:
        tree_path = to_tree_path(path)
        token_ids = match_path_in_sentence(sentence, tree_path)
        final_conditions = path.steps[-1].conditions if path.steps else ()
        result = []
        for tid in token_ids:
            if all(
                self._step_condition_holds(sentence, tid, cond.attribute, cond.value)
                for cond in final_conditions
            ):
                result.append(Binding(sid=sentence.sid, start=tid, end=tid, node=tid))
        return result

    @staticmethod
    def _step_condition_holds(sentence: Sentence, tid: int, attribute: str, value: str) -> bool:
        token = sentence[tid]
        if attribute == "pos":
            return token.pos.lower() == value.lower()
        if attribute == "text":
            return token.text.lower() == value.lower()
        if attribute == "etype":
            if value.lower() == "entity":
                return token.entity_type is not None
            return (token.entity_type or "").lower() == value.lower()
        if attribute == "regex":
            return re.search(value, token.text) is not None
        return True

    def _enumerate_node_assignments(
        self, sentence: Sentence, node_bindings: dict[str, list[Binding]]
    ) -> list[Assignment]:
        names = list(node_bindings)
        if not names:
            return [{}]
        combos = 1
        for name in names:
            combos *= len(node_bindings[name])
            if combos > _MAX_ASSIGNMENTS_PER_SENTENCE:
                break
        assignments: list[Assignment] = []
        for values in product(*(node_bindings[name] for name in names)):
            assignments.append(dict(zip(names, values)))
            if len(assignments) >= _MAX_ASSIGNMENTS_PER_SENTENCE:
                break
        return assignments

    # ------------------------------------------------------------------
    # span variables (horizontal conditions)
    # ------------------------------------------------------------------
    def _extend_with_span_variables(
        self,
        sentence: Sentence,
        assignments: list[Assignment],
        skip_plan: SkipPlan,
    ) -> list[Assignment]:
        for condition in self.normalized.horizontal_conditions:
            skipped = skip_plan.skipped(condition.target)
            extended: list[Assignment] = []
            for assignment in assignments:
                extended.extend(
                    self._align_condition(sentence, assignment, condition, skipped)
                )
                if len(extended) >= _MAX_ASSIGNMENTS_PER_SENTENCE:
                    break
            assignments = extended
            if not assignments:
                return []
        return assignments

    def _align_condition(
        self,
        sentence: Sentence,
        assignment: Assignment,
        condition: HorizontalCondition,
        skipped: set[str],
    ) -> list[Assignment]:
        """Bind the atoms of one span definition and derive the target span."""
        atom_vars = condition.atom_vars
        options: list[list[Binding | None]] = []
        for atom_var in atom_vars:
            if atom_var in skipped:
                options.append([None])  # derived later from the gap
                continue
            options.append(self._atom_candidates(sentence, assignment, atom_var))

        results: list[Assignment] = []
        for combo in product(*options):
            aligned = self._try_align(sentence, atom_vars, list(combo), skipped, assignment)
            if aligned is None:
                continue
            new_assignment = dict(assignment)
            new_assignment.update(aligned)
            first = aligned[atom_vars[0]]
            last = aligned[atom_vars[-1]]
            start = first.start if not first.is_empty else first.start
            end = last.end if not last.is_empty else last.start - 1
            if end < start:
                # the whole span collapsed to nothing; not a valid binding
                continue
            new_assignment[condition.target] = Binding(
                sid=sentence.sid, start=start, end=end
            )
            results.append(new_assignment)
            if len(results) >= _MAX_ASSIGNMENTS_PER_SENTENCE:
                break
        return results

    def _atom_candidates(
        self, sentence: Sentence, assignment: Assignment, atom_var: str
    ) -> list[Binding]:
        """Candidate bindings for one (non-skipped) atom."""
        atom = self.normalized.atom_vars.get(atom_var)
        if atom is None:
            # a reference to a real variable already bound in the assignment
            bound = assignment.get(atom_var)
            return [bound] if bound is not None else []
        if isinstance(atom, TokenSeq):
            return self._token_sequence_occurrences(sentence, atom.text)
        if isinstance(atom, SubtreeRef):
            bound = assignment.get(atom.var)
            if bound is None or bound.node is None:
                return []
            left, right = sentence.subtree_span(bound.node)
            return [Binding(sid=sentence.sid, start=left, end=right)]
        if isinstance(atom, PathExpr):
            return self._match_path(sentence, atom)
        if isinstance(atom, Elastic):
            return self._elastic_spans(sentence, atom)
        if isinstance(atom, SpanExpr):  # pragma: no cover - not produced by parser
            return []
        return []

    def _token_sequence_occurrences(self, sentence: Sentence, text: str) -> list[Binding]:
        words = [w.lower() for w in text.split()]
        if not words:
            return []
        tokens = [tok.text.lower() for tok in sentence]
        found = []
        for start in range(0, len(tokens) - len(words) + 1):
            if tokens[start : start + len(words)] == words:
                found.append(
                    Binding(sid=sentence.sid, start=start, end=start + len(words) - 1)
                )
        return found

    def _elastic_spans(self, sentence: Sentence, atom: Elastic) -> list[Binding]:
        """Every span (including empty ones) an elastic atom could bind to.

        This is the expensive enumeration the skip plan avoids; it is only
        exercised by the NOGSP baseline and by elastic atoms that cannot be
        skipped.
        """
        n = len(sentence)
        spans: list[Binding] = []
        max_len = atom.max_tokens if atom.max_tokens is not None else n
        for start in range(n + 1):
            if atom.min_tokens == 0:
                spans.append(Binding(sid=sentence.sid, start=start, end=start - 1))
            for end in range(start + max(0, atom.min_tokens - 1), min(n, start + max_len)):
                binding = Binding(sid=sentence.sid, start=start, end=end)
                if self._elastic_constraints_hold(sentence, atom, binding):
                    spans.append(binding)
        return spans

    def _elastic_constraints_hold(
        self, sentence: Sentence, atom: Elastic, binding: Binding
    ) -> bool:
        if binding.is_empty:
            return atom.min_tokens == 0
        if binding.length() < atom.min_tokens:
            return False
        if atom.max_tokens is not None and binding.length() > atom.max_tokens:
            return False
        if atom.etype is not None:
            mention = sentence.entity_at(binding.start)
            if mention is None:
                return False
            if atom.etype.lower() != "entity" and mention.etype.lower() != atom.etype.lower():
                return False
            if not (mention.start == binding.start and mention.end == binding.end):
                return False
        if atom.regex is not None:
            text = sentence.span_text(binding.start, binding.end)
            if re.search(atom.regex, text) is None:
                return False
        return True

    def _try_align(
        self,
        sentence: Sentence,
        atom_vars: list[str],
        combo: list[Binding | None],
        skipped: set[str],
        assignment: Assignment,
    ) -> dict[str, Binding] | None:
        """Check adjacency of concrete atoms and derive skipped atoms from gaps."""
        aligned: dict[str, Binding] = {}
        previous_end: int | None = None
        for index, (atom_var, binding) in enumerate(zip(atom_vars, combo)):
            if binding is not None:
                if previous_end is not None:
                    expected_start = previous_end + 1
                    actual_start = binding.start
                    if atom_vars[index - 1] in skipped or (index > 0 and combo[index - 1] is None):
                        # the gap belongs to the previous (skipped) atom
                        if actual_start < expected_start:
                            return None
                    elif actual_start != expected_start:
                        return None
                aligned[atom_var] = binding
                previous_end = binding.end if not binding.is_empty else binding.start - 1
            else:
                # skipped atom: derive after we know the next concrete start
                aligned[atom_var] = Binding(sid=sentence.sid, start=0, end=-1)
        # second pass: give skipped atoms the gap between their neighbours
        for index, atom_var in enumerate(atom_vars):
            if combo[index] is not None:
                continue
            left = self._previous_concrete(atom_vars, combo, aligned, index)
            right = self._next_concrete(atom_vars, combo, aligned, index)
            gap_start = (left.end + 1) if left is not None and not left.is_empty else (
                left.start if left is not None else 0
            )
            gap_end = (right.start - 1) if right is not None else gap_start - 1
            derived = Binding(sid=sentence.sid, start=gap_start, end=gap_end)
            atom = self.normalized.atom_vars.get(atom_var)
            if isinstance(atom, Elastic):
                if not self._elastic_constraints_hold(sentence, atom, derived):
                    return None
            elif isinstance(atom, TokenSeq):
                expected = [w.lower() for w in atom.text.split()]
                actual = [
                    sentence[t].text.lower()
                    for t in range(derived.start, derived.end + 1)
                ]
                if actual != expected:
                    return None
            aligned[atom_var] = derived
        return aligned

    @staticmethod
    def _previous_concrete(atom_vars, combo, aligned, index) -> Binding | None:
        for i in range(index - 1, -1, -1):
            if combo[i] is not None:
                return aligned[atom_vars[i]]
        return None

    @staticmethod
    def _next_concrete(atom_vars, combo, aligned, index) -> Binding | None:
        for i in range(index + 1, len(atom_vars)):
            if combo[i] is not None:
                return aligned[atom_vars[i]]
        return None

    # ------------------------------------------------------------------
    # constraint checking
    # ------------------------------------------------------------------
    def _check_constraints(self, sentence: Sentence, assignment: Assignment) -> bool:
        for constraint in self.normalized.constraints:
            left = assignment.get(constraint.left)
            right = assignment.get(constraint.right)
            if left is None or right is None:
                # constraints over atom variables only apply to assignments
                # that bound them (skipped atoms are always consistent)
                continue
            if not self._constraint_holds(sentence, constraint.op, left, right):
                return False
        return True

    def _constraint_holds(
        self, sentence: Sentence, op: str, left: Binding, right: Binding
    ) -> bool:
        if op == "in":
            return right.start <= left.start and left.end <= right.end
        if op == "eq":
            return left.start == right.start and left.end == right.end
        if op == "leftOf":
            left_end = left.end if not left.is_empty else left.start - 1
            right_start = right.start
            return left_end < right_start or right.is_empty
        if op == "parentOf":
            if left.node is None or right.node is None:
                return False
            return sentence[right.node].head == left.node
        if op == "ancestorOf":
            if left.node is None or right.node is None:
                return False
            return sentence.is_ancestor(left.node, right.node)
        return True
