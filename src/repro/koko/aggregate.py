"""Evidence aggregation over the document (Section 4.4).

For every output variable with a ``satisfying`` clause, the score of a
candidate value ``e`` is the weighted sum of the per-condition confidences::

    score(e) = w1 * m1(e) + ... + wn * mn(e)

computed over the *whole document* (so that partial evidence from different
sentences accumulates).  A candidate survives when every satisfying clause
of its variables reaches its threshold, and the excluding clause does not
fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nlp.types import Document
from .ast import ExcludingClause, SatisfyingClause
from .conditions import ConditionScorer, Occurrence, find_occurrences


@dataclass
class AggregationOutcome:
    """The result of scoring one candidate value for one variable."""

    value: str
    score: float
    threshold: float
    passed: bool
    condition_scores: list[float] = field(default_factory=list)


class EvidenceAggregator:
    """Scores candidate values against satisfying and excluding clauses."""

    def __init__(self, scorer: ConditionScorer) -> None:
        self.scorer = scorer
        # (doc_id, value) -> occurrences, so that documents with many
        # candidate tuples do not re-scan for the same value repeatedly
        self._occurrence_cache: dict[tuple[str, str], list[Occurrence]] = {}

    # ------------------------------------------------------------------
    # occurrences
    # ------------------------------------------------------------------
    def occurrences(self, document: Document, value: str) -> list[Occurrence]:
        key = (document.doc_id, value.lower())
        cached = self._occurrence_cache.get(key)
        if cached is None:
            cached = find_occurrences(document, value)
            self._occurrence_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # satisfying
    # ------------------------------------------------------------------
    def evaluate_clause(
        self,
        clause: SatisfyingClause,
        value: str,
        document: Document,
        threshold_override: float | None = None,
    ) -> AggregationOutcome:
        """Aggregate the clause's weighted conditions for *value* over *document*."""
        occurrences = self.occurrences(document, value)
        condition_scores: list[float] = []
        total = 0.0
        for weighted in clause.conditions:
            confidence = self.scorer.score(
                weighted.condition, value, occurrences, document
            )
            condition_scores.append(confidence)
            total += weighted.weight * confidence
        threshold = clause.threshold if threshold_override is None else threshold_override
        return AggregationOutcome(
            value=value,
            score=total,
            threshold=threshold,
            passed=total >= threshold,
            condition_scores=condition_scores,
        )

    # ------------------------------------------------------------------
    # excluding
    # ------------------------------------------------------------------
    def is_excluded(
        self, clause: ExcludingClause | None, value: str, document: Document
    ) -> bool:
        """True when any excluding condition holds for *value* in *document*."""
        if clause is None:
            return False
        occurrences = self.occurrences(document, value)
        return any(
            self.scorer.is_true(condition, value, occurrences, document)
            for condition in clause.conditions
        )
