"""Evaluation of satisfying / excluding clause conditions (Section 4.4.1).

Each condition maps a candidate value (the string extracted for an output
variable, together with its mention occurrences inside one document) to a
confidence ``m_i(e)``:

* boolean conditions (``contains``, ``mentions``, ``matches``, adjacency,
  dictionary membership) yield 0 or 1,
* ``near`` yields ``1 / (1 + distance)``,
* descriptor conditions ``x [[d]]`` expand the descriptor, decompose each
  sentence into canonical clauses, and aggregate the matches,
* ``similarTo`` yields the semantic similarity between the candidate and a
  concept word.

The aggregation over a whole satisfying clause (the weighted sum and the
threshold test) lives in ``aggregate.py``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..nlp.clauses import ClauseSegmenter
from ..nlp.types import Document, Sentence
from .ast import (
    AdjacencyCondition,
    DescriptorCondition,
    InDictCondition,
    NearCondition,
    SatisfyingConditionBody,
    SimilarToCondition,
    StrCondition,
)


@dataclass(frozen=True)
class Occurrence:
    """One mention of the candidate value: sentence plus inclusive token span."""

    sentence: Sentence
    start: int
    end: int


@dataclass
class EvidenceResources:
    """Shared resources needed to score conditions."""

    expander: DescriptorExpander
    vectors: VectorStore | None = None
    segmenter: ClauseSegmenter = field(default_factory=ClauseSegmenter)
    dictionaries: dict[str, set[str]] = field(default_factory=dict)

    def dictionary(self, name: str) -> set[str]:
        return self.dictionaries.get(name.lower(), set())


class ConditionScorer:
    """Scores one candidate value against satisfying/excluding conditions."""

    def __init__(self, resources: EvidenceResources) -> None:
        self.resources = resources
        self._expansion_cache: dict[str, list] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def score(
        self,
        condition: SatisfyingConditionBody,
        value: str,
        occurrences: list[Occurrence],
        document: Document,
    ) -> float:
        """The confidence m_i(value) of *condition* over *document*."""
        if isinstance(condition, StrCondition):
            return self._score_str(condition, value)
        if isinstance(condition, InDictCondition):
            return 1.0 if value.lower() in self.resources.dictionary(condition.dictionary) else 0.0
        if isinstance(condition, AdjacencyCondition):
            return self._score_adjacency(condition, occurrences)
        if isinstance(condition, NearCondition):
            return self._score_near(condition, occurrences)
        if isinstance(condition, DescriptorCondition):
            return self._score_descriptor(condition, occurrences)
        if isinstance(condition, SimilarToCondition):
            return self._score_similar_to(condition, value)
        return 0.0

    def is_true(
        self,
        condition: SatisfyingConditionBody,
        value: str,
        occurrences: list[Occurrence],
        document: Document,
    ) -> bool:
        """Boolean view used by the excluding clause (score > 0 counts as true)."""
        return self.score(condition, value, occurrences, document) > 0.0

    # ------------------------------------------------------------------
    # boolean string conditions
    # ------------------------------------------------------------------
    @staticmethod
    def _score_str(condition: StrCondition, value: str) -> float:
        if condition.op == "contains":
            # "contains" is word-level containment: the string "chocolate ice
            # cream" contains "ice" but not "choc" (Section 4.4.1)
            words = value.lower().split()
            needle_words = condition.value.lower().split()
            if not needle_words:
                return 0.0
            for start in range(0, len(words) - len(needle_words) + 1):
                if words[start : start + len(needle_words)] == needle_words:
                    return 1.0
            return 0.0
        if condition.op == "mentions":
            return 1.0 if condition.value.lower() in value.lower() else 0.0
        if condition.op == "matches":
            return 1.0 if re.search(condition.value, value) is not None else 0.0
        return 0.0

    # ------------------------------------------------------------------
    # adjacency: x "string" / "string" x
    # ------------------------------------------------------------------
    def _score_adjacency(
        self, condition: AdjacencyCondition, occurrences: list[Occurrence]
    ) -> float:
        needle = [w.lower() for w in _tokenize_literal(condition.text)]
        if not needle:
            return 0.0
        for occ in occurrences:
            tokens = [tok.text.lower() for tok in occ.sentence]
            if condition.side == "after":
                start = occ.end + 1
                if tokens[start : start + len(needle)] == needle:
                    return 1.0
            else:
                start = occ.start - len(needle)
                if start >= 0 and tokens[start : occ.start] == needle:
                    return 1.0
        return 0.0

    # ------------------------------------------------------------------
    # near: 1 / (1 + distance)
    # ------------------------------------------------------------------
    def _score_near(self, condition: NearCondition, occurrences: list[Occurrence]) -> float:
        needle = [w.lower() for w in _tokenize_literal(condition.text)]
        if not needle:
            return 0.0
        best = 0.0
        for occ in occurrences:
            tokens = [tok.text.lower() for tok in occ.sentence]
            for start in range(0, len(tokens) - len(needle) + 1):
                if tokens[start : start + len(needle)] != needle:
                    continue
                if start > occ.end:
                    distance = start - occ.end - 1
                elif start + len(needle) - 1 < occ.start:
                    distance = occ.start - (start + len(needle) - 1) - 1
                else:
                    distance = 0
                best = max(best, 1.0 / (1.0 + distance))
        return best

    # ------------------------------------------------------------------
    # descriptors: x [[d]] / [[d]] x
    # ------------------------------------------------------------------
    def _score_descriptor(
        self, condition: DescriptorCondition, occurrences: list[Occurrence]
    ) -> float:
        expansions = self._expansion_cache.get(condition.descriptor)
        if expansions is None:
            expansions = self.resources.expander.expand(condition.descriptor)
            self._expansion_cache[condition.descriptor] = expansions
        total = 0.0
        seen_sids: set[int] = set()
        for occ in occurrences:
            if occ.sentence.sid in seen_sids:
                continue
            seen_sids.add(occ.sentence.sid)
            total += self._descriptor_sentence_confidence(condition, expansions, occ)
        return total

    def _descriptor_sentence_confidence(
        self, condition: DescriptorCondition, expansions, occ: Occurrence
    ) -> float:
        """conf(x [[d]]) w.r.t. one sentence (Section 4.4.1(c))."""
        clauses = self.resources.segmenter.segment(occ.sentence)
        # restrict to the text on the required side of the candidate
        best = 0.0
        for expanded in expansions:
            descriptor_words = [w.lower() for w in expanded.phrase.split()]
            score = 0.0
            for clause in clauses:
                clause_tokens = [
                    occ.sentence[t].text.lower() for t in clause.token_range()
                ]
                clause_lemmas = [
                    occ.sentence[t].lemma for t in clause.token_range()
                ]
                if condition.side == "after" and clause.end < occ.start:
                    continue
                if condition.side == "before" and clause.start > occ.end:
                    continue
                if _occurs_in_order(descriptor_words, clause_tokens) or _occurs_in_order(
                    descriptor_words, clause_lemmas
                ):
                    score += expanded.score * clause.weight
            best = max(best, score)
        return best

    # ------------------------------------------------------------------
    # similarTo
    # ------------------------------------------------------------------
    def _score_similar_to(self, condition: SimilarToCondition, value: str) -> float:
        vectors = self.resources.vectors
        head = value.split()[-1] if value.split() else value
        if vectors is None:
            # lexicon-only fall-back: exact or paraphrase match
            lexicon = self.resources.expander.lexicon
            if head.lower() == condition.concept.lower():
                return 1.0
            return 0.75 if lexicon.are_paraphrases(head, condition.concept) else 0.0
        return max(0.0, vectors.similarity(head, condition.concept))


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _tokenize_literal(text: str) -> list[str]:
    """Tokenise a literal the same way the pipeline tokenises sentences."""
    return re.findall(r"[A-Za-z]+(?:['’][A-Za-z]+)*|\d+|[^\w\s]", text)


def _occurs_in_order(words: list[str], tokens: list[str]) -> bool:
    """True when *words* occur in *tokens* in order, gaps allowed (Section 4.4.1)."""
    if not words:
        return False
    position = 0
    for token in tokens:
        if token == words[position]:
            position += 1
            if position == len(words):
                return True
    return False


def find_occurrences(document: Document, value: str) -> list[Occurrence]:
    """Every mention of *value* (as a token sequence) in *document*."""
    needle = [w.lower() for w in _tokenize_literal(value)]
    if not needle:
        return []
    occurrences: list[Occurrence] = []
    for sentence in document:
        tokens = [tok.text.lower() for tok in sentence]
        for start in range(0, len(tokens) - len(needle) + 1):
            if tokens[start : start + len(needle)] == needle:
                occurrences.append(
                    Occurrence(sentence=sentence, start=start, end=start + len(needle) - 1)
                )
    return occurrences
