"""Recursive-descent parser for the KOKO query language.

The grammar covers every construct used by the paper's examples and by the
Appendix A queries:

* the output tuple (``extract e:Entity, d:Str``),
* the source (``from "input.txt"`` or ``from wiki.article``),
* the ``if ( /ROOT:{ ... } (b) in (e) )`` extract clause with node-term and
  span-term declarations, step conditions, elastic spans and constraints,
* one ``satisfying`` clause per output variable, with weighted boolean,
  proximity, descriptor and similarity conditions and a threshold,
* the ``excluding`` clause.
"""

from __future__ import annotations

from ..errors import KokoSemanticError, KokoSyntaxError
from .ast import (
    AdjacencyCondition,
    CHILD_AXIS,
    DESCENDANT_AXIS,
    Declaration,
    DescriptorCondition,
    Elastic,
    EntityBinding,
    ExcludingClause,
    InDictCondition,
    KokoQuery,
    NearCondition,
    OutputVar,
    PathExpr,
    PathStep,
    SatisfyingClause,
    SimilarToCondition,
    SpanExpr,
    StepCondition,
    StrCondition,
    SubtreeRef,
    TokenSeq,
    VarConstraint,
    VarRef,
    WeightedCondition,
)
from .lexer import EOF, IDENT, NUMBER, STRING, SYMBOL, Token, tokenize

# Entity types recognised in declarations such as ``a = Entity``.
_ENTITY_TYPE_NAMES = {
    "entity", "person", "gpe", "location", "organization", "org", "date",
    "facility", "team", "event", "other",
}


class Parser:
    """Parse one KOKO query string into a :class:`KokoQuery`."""

    def __init__(self, text: str) -> None:
        self._tokens = tokenize(text)
        self._pos = 0
        self._declared: set[str] = set()

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != EOF:
            self._pos += 1
        return token

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise KokoSyntaxError(
                f"expected {symbol!r} but found {token.text!r}", token.position
            )
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise KokoSyntaxError(
                f"expected keyword {word!r} but found {token.text!r}", token.position
            )
        return token

    def _expect_ident(self) -> Token:
        token = self._advance()
        if token.type != IDENT:
            raise KokoSyntaxError(
                f"expected an identifier but found {token.text!r}", token.position
            )
        return token

    def _expect_number(self) -> float:
        token = self._advance()
        if token.type != NUMBER:
            raise KokoSyntaxError(
                f"expected a number but found {token.text!r}", token.position
            )
        return float(token.text)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def parse(self) -> KokoQuery:
        query = KokoQuery()
        self._expect_keyword("extract")
        query.outputs = self._parse_outputs()
        # Output variables may be referenced inside span terms before any
        # block declaration introduces them (e.g. "c = a + ^ + v" where a is
        # an output variable), so they count as declared names.
        self._declared.update(out.name for out in query.outputs)
        self._expect_keyword("from")
        query.source = self._parse_source()
        self._expect_keyword("if")
        self._parse_extract_clause(query)
        while self._peek().is_keyword("satisfying"):
            query.satisfying.append(self._parse_satisfying_clause(query))
        if self._peek().is_keyword("excluding"):
            query.excluding = self._parse_excluding_clause()
        token = self._peek()
        if token.type != EOF:
            raise KokoSyntaxError(
                f"unexpected trailing input starting at {token.text!r}", token.position
            )
        self._validate(query)
        return query

    # ------------------------------------------------------------------
    # outputs and source
    # ------------------------------------------------------------------
    def _parse_outputs(self) -> list[OutputVar]:
        outputs = [self._parse_output_var()]
        while self._peek().is_symbol(","):
            self._advance()
            outputs.append(self._parse_output_var())
        return outputs

    def _parse_output_var(self) -> OutputVar:
        name = self._expect_ident().text
        self._expect_symbol(":")
        otype = self._expect_ident().text
        return OutputVar(name=name, otype=otype)

    def _parse_source(self) -> str:
        token = self._peek()
        if token.type == STRING:
            self._advance()
            return token.text
        # bare source such as wiki.article or input.txt
        parts = [self._expect_ident().text]
        while self._peek().is_symbol("."):
            self._advance()
            parts.append(self._expect_ident().text)
        return ".".join(parts)

    # ------------------------------------------------------------------
    # the extract clause
    # ------------------------------------------------------------------
    def _parse_extract_clause(self, query: KokoQuery) -> None:
        self._expect_symbol("(")
        if self._peek().is_symbol(")"):
            self._advance()
            return
        if self._peek().is_symbol("/"):
            self._parse_root_block(query)
        # constraints such as "(b) in (e)"
        while self._peek().is_symbol("("):
            query.constraints.append(self._parse_constraint())
        self._expect_symbol(")")

    def _parse_root_block(self, query: KokoQuery) -> None:
        self._expect_symbol("/")
        block_name = self._expect_ident().text
        if block_name.upper() != "ROOT":
            raise KokoSyntaxError(f"expected /ROOT block, found /{block_name}")
        self._expect_symbol(":")
        self._expect_symbol("{")
        while True:
            declaration = self._parse_declaration()
            query.declarations.append(declaration)
            self._declared.add(declaration.name)
            if self._peek().is_symbol(","):
                self._advance()
                continue
            break
        self._expect_symbol("}")

    def _parse_declaration(self) -> Declaration:
        name = self._expect_ident().text
        self._expect_symbol("=")
        expr = self._parse_decl_expr()
        return Declaration(name=name, expr=expr)

    def _parse_decl_expr(self):
        atoms = [self._parse_atom()]
        while self._peek().is_symbol("+"):
            self._advance()
            atoms.append(self._parse_atom())
        if len(atoms) == 1:
            atom = atoms[0]
            if isinstance(atom, (PathExpr, EntityBinding)):
                return atom
            return SpanExpr(atoms=(atom,))
        return SpanExpr(atoms=tuple(atoms))

    # ------------------------------------------------------------------
    # atoms (path expressions, elastic spans, subtrees, literals)
    # ------------------------------------------------------------------
    def _parse_atom(self):
        token = self._peek()
        if token.is_symbol("("):
            self._advance()
            inner = self._parse_atom()
            self._expect_symbol(")")
            return inner
        if token.is_symbol("^"):
            return self._parse_elastic()
        if token.type == STRING and not self._peek(1).is_symbol("/") and not self._peek(1).is_symbol("//"):
            self._advance()
            return TokenSeq(text=token.text)
        if token.is_symbol("/") or token.is_symbol("//"):
            return self._parse_path(base_var=None)
        if token.type in (IDENT, STRING):
            # possibilities: x.subtree | var reference | entity binding |
            # base-var path (a/dobj) | bare label path (verb)
            if token.type == IDENT and self._peek(1).is_symbol(".") and self._peek(2).is_keyword("subtree"):
                self._advance()
                self._advance()
                self._advance()
                return SubtreeRef(var=token.text)
            if self._peek(1).is_symbol("/") or self._peek(1).is_symbol("//"):
                self._advance()
                return self._parse_path(base_var=token.text)
            self._advance()
            if token.type == IDENT and token.text in self._declared:
                return VarRef(name=token.text)
            if token.type == IDENT and token.text.lower() in _ENTITY_TYPE_NAMES:
                return EntityBinding(etype=token.text)
            # bare label: an implicit descendant-axis single-step path
            is_word = token.type == STRING
            conditions = self._parse_step_conditions()
            return PathExpr(
                steps=(
                    PathStep(
                        axis=DESCENDANT_AXIS,
                        label=token.text,
                        is_word=is_word,
                        conditions=conditions,
                    ),
                ),
            )
        raise KokoSyntaxError(
            f"cannot parse expression starting at {token.text!r}", token.position
        )

    def _parse_elastic(self) -> Elastic:
        self._expect_symbol("^")
        etype = None
        regex = None
        min_tokens = 0
        max_tokens = None
        if self._peek().is_symbol("["):
            for condition in self._parse_step_conditions():
                attribute = condition.attribute.lower()
                if attribute == "etype":
                    etype = condition.value
                elif attribute == "regex":
                    regex = condition.value
                elif attribute in {"min", "mintokens"}:
                    min_tokens = int(condition.value)
                elif attribute in {"max", "maxtokens"}:
                    max_tokens = int(condition.value)
                else:
                    raise KokoSemanticError(
                        f"unsupported elastic-span condition @{condition.attribute}"
                    )
        return Elastic(etype=etype, regex=regex, min_tokens=min_tokens, max_tokens=max_tokens)

    def _parse_path(self, base_var: str | None) -> PathExpr:
        steps: list[PathStep] = []
        while self._peek().is_symbol("/") or self._peek().is_symbol("//"):
            axis_token = self._advance()
            axis = DESCENDANT_AXIS if axis_token.text == "//" else CHILD_AXIS
            label_token = self._advance()
            if label_token.is_symbol("*"):
                label, is_word = "*", False
            elif label_token.type == STRING:
                label, is_word = label_token.text, True
            elif label_token.type == IDENT:
                label, is_word = label_token.text, False
            else:
                raise KokoSyntaxError(
                    f"expected a path label but found {label_token.text!r}",
                    label_token.position,
                )
            conditions = self._parse_step_conditions()
            steps.append(
                PathStep(axis=axis, label=label, is_word=is_word, conditions=conditions)
            )
        if not steps:
            token = self._peek()
            raise KokoSyntaxError("empty path expression", token.position)
        return PathExpr(steps=tuple(steps), base_var=base_var)

    def _parse_step_conditions(self) -> tuple[StepCondition, ...]:
        if not self._peek().is_symbol("["):
            return ()
        self._advance()
        conditions: list[StepCondition] = []
        while not self._peek().is_symbol("]"):
            attribute_token = self._advance()
            attribute = attribute_token.text.lstrip("@")
            self._expect_symbol("=")
            value_token = self._advance()
            if value_token.type not in (STRING, IDENT, NUMBER):
                raise KokoSyntaxError(
                    f"expected a condition value, found {value_token.text!r}",
                    value_token.position,
                )
            conditions.append(StepCondition(attribute=attribute.lower(), value=value_token.text))
            if self._peek().is_symbol(","):
                self._advance()
        self._expect_symbol("]")
        return tuple(conditions)

    # ------------------------------------------------------------------
    # constraints
    # ------------------------------------------------------------------
    def _parse_constraint(self) -> VarConstraint:
        self._expect_symbol("(")
        left = self._expect_ident().text
        self._expect_symbol(")")
        op_token = self._advance()
        if op_token.type != IDENT or op_token.text.lower() not in {"in", "eq"}:
            raise KokoSyntaxError(
                f"expected 'in' or 'eq' but found {op_token.text!r}", op_token.position
            )
        self._expect_symbol("(")
        right = self._expect_ident().text
        self._expect_symbol(")")
        return VarConstraint(left=left, op=op_token.text.lower(), right=right)

    # ------------------------------------------------------------------
    # satisfying clause
    # ------------------------------------------------------------------
    def _parse_satisfying_clause(self, query: KokoQuery) -> SatisfyingClause:
        self._expect_keyword("satisfying")
        variable = self._expect_ident().text
        clause = SatisfyingClause(variable=variable)
        clause.conditions.append(self._parse_weighted_condition())
        while self._peek().is_keyword("or"):
            self._advance()
            clause.conditions.append(self._parse_weighted_condition())
        if self._peek().is_keyword("with"):
            self._advance()
            self._expect_keyword("threshold")
            clause.threshold = self._expect_number()
        return clause

    def _parse_weighted_condition(self) -> WeightedCondition:
        self._expect_symbol("(")
        body = self._parse_condition_body()
        weight = 1.0
        if self._peek().is_symbol("{"):
            self._advance()
            weight = self._expect_number()
            self._expect_symbol("}")
        self._expect_symbol(")")
        return WeightedCondition(condition=body, weight=weight)

    def _parse_excluding_clause(self) -> ExcludingClause:
        self._expect_keyword("excluding")
        clause = ExcludingClause()
        clause.conditions.append(self._parse_unweighted_condition())
        while self._peek().is_keyword("or"):
            self._advance()
            clause.conditions.append(self._parse_unweighted_condition())
        return clause

    def _parse_unweighted_condition(self):
        self._expect_symbol("(")
        body = self._parse_condition_body()
        if self._peek().is_symbol("{"):
            self._advance()
            self._expect_number()
            self._expect_symbol("}")
        self._expect_symbol(")")
        return body

    # ------------------------------------------------------------------
    # condition bodies
    # ------------------------------------------------------------------
    def _parse_condition_body(self):
        token = self._peek()
        # str(x) <op> ...
        if token.is_keyword("str") and self._peek(1).is_symbol("("):
            return self._parse_str_condition()
        # "string" x   |   [[descriptor]] x
        if token.type == STRING:
            self._advance()
            var = self._expect_ident().text
            return AdjacencyCondition(var=var, text=token.text, side="before")
        if token.is_symbol("[["):
            descriptor = self._parse_descriptor_text()
            var = self._expect_ident().text
            return DescriptorCondition(var=var, descriptor=descriptor, side="before")
        # x ...
        var = self._expect_ident().text
        nxt = self._peek()
        if nxt.type == STRING:
            self._advance()
            return AdjacencyCondition(var=var, text=nxt.text, side="after")
        if nxt.is_symbol("[["):
            descriptor = self._parse_descriptor_text()
            return DescriptorCondition(var=var, descriptor=descriptor, side="after")
        if nxt.is_keyword("near"):
            self._advance()
            text_token = self._advance()
            if text_token.type != STRING:
                raise KokoSyntaxError("near expects a string", text_token.position)
            return NearCondition(var=var, text=text_token.text)
        if nxt.type == IDENT and nxt.text.lower() == "similarto":
            self._advance()
            concept_token = self._advance()
            if concept_token.type != STRING:
                raise KokoSyntaxError("similarTo expects a string", concept_token.position)
            return SimilarToCondition(var=var, concept=concept_token.text)
        if nxt.is_symbol("~"):
            self._advance()
            concept_token = self._advance()
            if concept_token.type != STRING:
                raise KokoSyntaxError("~ expects a string", concept_token.position)
            return SimilarToCondition(var=var, concept=concept_token.text)
        raise KokoSyntaxError(
            f"cannot parse satisfying condition near {nxt.text!r}", nxt.position
        )

    def _parse_str_condition(self):
        self._expect_keyword("str")
        self._expect_symbol("(")
        var = self._expect_ident().text
        self._expect_symbol(")")
        op_token = self._advance()
        if op_token.is_symbol("~"):
            concept_token = self._advance()
            if concept_token.type != STRING:
                raise KokoSyntaxError("~ expects a string", concept_token.position)
            return SimilarToCondition(var=var, concept=concept_token.text)
        if op_token.type == IDENT and op_token.text.lower() in {
            "contains",
            "mentions",
            "matches",
        }:
            value_token = self._advance()
            if value_token.type != STRING:
                raise KokoSyntaxError(
                    f"{op_token.text} expects a string", value_token.position
                )
            return StrCondition(var=var, op=op_token.text.lower(), value=value_token.text)
        if op_token.is_keyword("in"):
            self._expect_keyword("dict")
            self._expect_symbol("(")
            name_token = self._advance()
            if name_token.type not in (STRING, IDENT):
                raise KokoSyntaxError("dict() expects a name", name_token.position)
            self._expect_symbol(")")
            return InDictCondition(var=var, dictionary=name_token.text)
        raise KokoSyntaxError(
            f"unknown str() operator {op_token.text!r}", op_token.position
        )

    def _parse_descriptor_text(self) -> str:
        self._expect_symbol("[[")
        token = self._peek()
        if token.type == STRING:
            self._advance()
            descriptor = token.text
        else:
            words = []
            while not self._peek().is_symbol("]]"):
                words.append(self._advance().text)
            descriptor = " ".join(words)
        self._expect_symbol("]]")
        return descriptor

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self, query: KokoQuery) -> None:
        declared = set(query.declared_names()) | set(query.output_names())
        for constraint in query.constraints:
            for name in (constraint.left, constraint.right):
                if name not in declared:
                    raise KokoSemanticError(
                        f"constraint references undeclared variable {name!r}"
                    )
        for clause in query.satisfying:
            if clause.variable not in declared:
                raise KokoSemanticError(
                    f"satisfying clause references undeclared variable "
                    f"{clause.variable!r}"
                )
        seen: set[str] = set()
        for declaration in query.declarations:
            if declaration.name in seen:
                raise KokoSemanticError(
                    f"variable {declaration.name!r} is declared twice"
                )
            seen.add(declaration.name)


def parse_query(text: str) -> KokoQuery:
    """Parse *text* into a :class:`KokoQuery` (raises on syntax errors)."""
    return Parser(text).parse()
