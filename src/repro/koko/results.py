"""Result containers returned by the KOKO engine, and their shard merge."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class ExtractionTuple:
    """One output tuple: document id, per-variable values, per-variable scores."""

    doc_id: str
    sid: int
    values: tuple[tuple[str, str], ...]
    scores: tuple[tuple[str, float], ...] = ()

    def value(self, variable: str) -> str:
        for name, text in self.values:
            if name == variable:
                return text
        raise KeyError(variable)

    def score(self, variable: str) -> float | None:
        for name, score in self.scores:
            if name == variable:
                return score
        return None

    def as_dict(self) -> dict[str, str]:
        return dict(self.values)


@dataclass
class StageTimings:
    """Wall-clock seconds per engine stage (the columns of Table 2)."""

    normalize: float = 0.0
    dpli: float = 0.0
    load_articles: float = 0.0
    gsp: float = 0.0
    extract: float = 0.0
    satisfying: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.normalize
            + self.dpli
            + self.load_articles
            + self.gsp
            + self.extract
            + self.satisfying
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "Normalize": self.normalize,
            "DPLI": self.dpli,
            "LoadArticle": self.load_articles,
            "GSP": self.gsp,
            "extract": self.extract,
            "satisfying": self.satisfying,
        }

    def accumulate(self, other: "StageTimings") -> "StageTimings":
        """Add *other*'s per-stage seconds into self (shard merge); returns self."""
        self.normalize += other.normalize
        self.dpli += other.dpli
        self.load_articles += other.load_articles
        self.gsp += other.gsp
        self.extract += other.extract
        self.satisfying += other.satisfying
        return self


@dataclass
class KokoResult:
    """The full result of executing one query."""

    tuples: list[ExtractionTuple] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    candidate_sentences: int = 0
    evaluated_sentences: int = 0

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def distinct_values(self, variable: str) -> set[str]:
        """The distinct extracted strings for one output variable."""
        return {t.value(variable) for t in self.tuples}

    def values_by_document(self, variable: str) -> dict[str, set[str]]:
        """doc_id -> distinct extracted strings for one output variable."""
        out: dict[str, set[str]] = {}
        for t in self.tuples:
            out.setdefault(t.doc_id, set()).add(t.value(variable))
        return out

    @property
    def selectivity(self) -> dict[str, int]:
        """doc_id -> number of tuples extracted from that document."""
        counts: dict[str, int] = {}
        for t in self.tuples:
            counts[t.doc_id] = counts.get(t.doc_id, 0) + 1
        return counts

    def approximate_bytes(self) -> int:
        """Deterministic rough size of this result, for cache admission.

        Counts tuple/string payloads with flat per-object constants rather
        than chasing real interpreter overhead — what matters is that two
        results of very different sizes order correctly, cheaply.
        """
        total = 256  # result container + timings
        for t in self.tuples:
            total += 120 + len(t.doc_id)
            for name, text in t.values:
                total += 100 + len(name) + len(text)
            total += 80 * len(t.scores)
        return total


def merge_results(results: Iterable[KokoResult]) -> KokoResult:
    """Deterministically merge per-shard results into one :class:`KokoResult`.

    Tuples are stable-sorted by sentence id: every sentence lives in exactly
    one shard, so same-sid tuples keep their within-shard (assignment
    enumeration) order, and because sentence ids are assigned in ingest
    order the merged sequence is identical to what an unsharded engine
    produces over the same corpus.  Stage timings are summed (total work
    across shards) and sentence counters added.
    """
    merged = KokoResult()
    for result in results:
        merged.tuples.extend(result.tuples)
        merged.timings.accumulate(result.timings)
        merged.candidate_sentences += result.candidate_sentences
        merged.evaluated_sentences += result.evaluated_sentences
    merged.tuples.sort(key=lambda t: t.sid)
    return merged
