"""The KOKO query evaluation engine (Figure 2 of the paper).

``KokoEngine`` owns an annotated corpus and the multi-index built over it,
and evaluates queries through the four stages of Section 4:

1. **Normalize query** — parse (if needed) and normalise the extract clause.
2. **Decompose paths & lookup indices (DPLI)** — prune to candidate
   sentences using the word, entity, PL and POS indexes.
3. **Generate skip plan (GSP) + extract** — per candidate sentence, choose
   which span atoms to skip, enumerate bindings, check constraints.
4. **Aggregate** — per document, score every candidate value of every output
   variable against its satisfying clause, apply thresholds and the
   excluding clause.

Wall-clock time per stage is recorded in :class:`~repro.koko.results.StageTimings`
(the columns of Table 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..indexing.koko_index import KokoIndexSet
from ..nlp.lexicon import GAZETTEER_GPE
from ..nlp.types import Corpus, Document, Sentence
from .aggregate import EvidenceAggregator
from .ast import KokoQuery
from .conditions import ConditionScorer, EvidenceResources
from .dpli import run_dpli
from .evaluator import Assignment, SentenceEvaluator
from .normalize import NormalizedQuery, normalize
from .parser import parse_query
from .results import ExtractionTuple, KokoResult, StageTimings


@dataclass(frozen=True)
class CompiledQuery:
    """A parsed + normalised query, reusable across many executions.

    Parsing and normalisation depend only on the query text, not on the
    corpus, so a compiled query can be cached (the service layer keys a
    plan cache by query string) and executed repeatedly — the engine then
    skips the Normalize stage entirely.
    """

    parsed: KokoQuery
    normalized: NormalizedQuery
    text: str | None = None
    compile_seconds: float = 0.0


def compile_query(query: str | KokoQuery) -> CompiledQuery:
    """Parse (if needed) and normalise *query* into a :class:`CompiledQuery`."""
    started = time.perf_counter()
    parsed = parse_query(query) if isinstance(query, str) else query
    normalized = normalize(parsed)
    return CompiledQuery(
        parsed=parsed,
        normalized=normalized,
        text=query if isinstance(query, str) else None,
        compile_seconds=time.perf_counter() - started,
    )


class KokoEngine:
    """Evaluate KOKO queries over one annotated corpus."""

    def __init__(
        self,
        corpus: Corpus,
        expander: DescriptorExpander | None = None,
        vectors: VectorStore | None = None,
        dictionaries: dict[str, set[str]] | None = None,
        use_gsp: bool = True,
        indexes: KokoIndexSet | None = None,
        use_default_vectors: bool = True,
    ) -> None:
        self.corpus = corpus
        self.use_gsp = use_gsp
        self.indexes = indexes if indexes is not None else KokoIndexSet().build(corpus)
        if vectors is None and use_default_vectors:
            from ..embeddings.pretrained import build_default_vectors

            vectors = build_default_vectors()
        dictionaries = dictionaries or {}
        dictionaries.setdefault("location", set(GAZETTEER_GPE))
        self.resources = EvidenceResources(
            expander=expander or DescriptorExpander(vectors=vectors),
            vectors=vectors,
            dictionaries={k.lower(): {v.lower() for v in vals} for k, vals in dictionaries.items()},
        )
        # sid -> (document, sentence), used to "load" candidate articles
        self._by_sid: dict[int, tuple[Document, Sentence]] = {}
        for document in corpus:
            for sentence in document:
                self._by_sid[sentence.sid] = (document, sentence)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register_document(self, document: Document) -> None:
        """Make a newly ingested document's sentences addressable by sid.

        The engine shares its corpus object with the caller; after the
        caller appends *document* to that corpus (and indexes it), this
        keeps the sid → sentence map in sync so candidate loading works.
        """
        for sentence in document:
            self._by_sid[sentence.sid] = (document, sentence)

    def unregister_document(self, document: Document) -> None:
        """Forget a removed document's sentences."""
        for sentence in document:
            self._by_sid.pop(sentence.sid, None)

    def execute(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
    ) -> KokoResult:
        """Evaluate *query* and return its result.

        ``threshold_override`` replaces the thresholds of every satisfying
        clause (the experiments sweep it).  ``keep_all_scores=True`` keeps
        tuples that fail their thresholds too (with their scores), which
        lets an experiment evaluate many thresholds from a single run.
        Passing a :class:`CompiledQuery` skips parsing and normalisation.
        """
        result = KokoResult()
        timings = result.timings

        started = time.perf_counter()
        if isinstance(query, CompiledQuery):
            parsed, normalized = query.parsed, query.normalized
        else:
            parsed = parse_query(query) if isinstance(query, str) else query
            normalized = normalize(parsed)
        timings.normalize = time.perf_counter() - started

        started = time.perf_counter()
        dpli = run_dpli(normalized, self.indexes)
        timings.dpli = time.perf_counter() - started
        if dpli.provably_empty:
            return result

        started = time.perf_counter()
        documents = self._load_candidate_documents(dpli.candidate_sids)
        timings.load_articles = time.perf_counter() - started

        evaluator = SentenceEvaluator(normalized, use_gsp=self.use_gsp)
        scorer = ConditionScorer(self.resources)
        aggregator = EvidenceAggregator(scorer)

        for document, sentences in documents:
            candidate_tuples: list[tuple[Sentence, Assignment]] = []
            for sentence in sentences:
                result.candidate_sentences += 1
                gsp_started = time.perf_counter()
                # the skip plan is generated inside the evaluator; here we
                # account only the planning part by timing a dry plan
                timings.gsp += self._time_skip_plan(normalized, dpli, sentence)
                extract_started = time.perf_counter()
                assignments = evaluator.evaluate(sentence, dpli)
                timings.extract += time.perf_counter() - extract_started
                timings.gsp += 0.0 if gsp_started is None else 0.0
                result.evaluated_sentences += 1
                for assignment in assignments:
                    candidate_tuples.append((sentence, assignment))

            satisfying_started = time.perf_counter()
            self._aggregate_document(
                parsed,
                normalized,
                document,
                candidate_tuples,
                aggregator,
                result,
                threshold_override,
                keep_all_scores,
            )
            timings.satisfying += time.perf_counter() - satisfying_started
        return result

    # ------------------------------------------------------------------
    # stage helpers
    # ------------------------------------------------------------------
    def _load_candidate_documents(
        self, candidate_sids: set[int] | None
    ) -> list[tuple[Document, list[Sentence]]]:
        """Group candidate sentences by their document ("LoadArticle")."""
        if candidate_sids is None:
            return [(document, list(document.sentences)) for document in self.corpus]
        grouped: dict[str, tuple[Document, list[Sentence]]] = {}
        for sid in sorted(candidate_sids):
            located = self._by_sid.get(sid)
            if located is None:
                continue
            document, sentence = located
            entry = grouped.get(document.doc_id)
            if entry is None:
                grouped[document.doc_id] = (document, [sentence])
            else:
                entry[1].append(sentence)
        return list(grouped.values())

    def _time_skip_plan(self, normalized: NormalizedQuery, dpli, sentence: Sentence) -> float:
        if not normalized.horizontal_conditions or not self.use_gsp:
            return 0.0
        from .gsp import generate_skip_plan

        started = time.perf_counter()
        generate_skip_plan(normalized, dpli, sentence.sid, len(sentence))
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # aggregation per document
    # ------------------------------------------------------------------
    def _aggregate_document(
        self,
        parsed: KokoQuery,
        normalized: NormalizedQuery,
        document: Document,
        candidate_tuples: list[tuple[Sentence, Assignment]],
        aggregator: EvidenceAggregator,
        result: KokoResult,
        threshold_override: float | None,
        keep_all_scores: bool,
    ) -> None:
        output_names = parsed.output_names()
        clause_cache: dict[tuple[str, str], tuple[float, bool]] = {}

        for sentence, assignment in candidate_tuples:
            values: list[tuple[str, str]] = []
            scores: list[tuple[str, float]] = []
            passed = True
            excluded = False

            for name in output_names:
                binding = assignment.get(name)
                if binding is None:
                    passed = False
                    break
                text = sentence.span_text(binding.start, binding.end) if not binding.is_empty else ""
                values.append((name, text))

                clause = parsed.satisfying_for(name)
                if clause is not None:
                    key = (name, text.lower())
                    cached = clause_cache.get(key)
                    if cached is None:
                        outcome = aggregator.evaluate_clause(
                            clause, text, document, threshold_override
                        )
                        cached = (outcome.score, outcome.passed)
                        clause_cache[key] = cached
                    score, clause_passed = cached
                    scores.append((name, score))
                    if not clause_passed:
                        passed = False
                if parsed.excluding is not None and aggregator.is_excluded(
                    parsed.excluding, text, document
                ):
                    excluded = True

            if len(values) != len(output_names):
                continue
            # satisfying clauses over non-output variables (e.g. the verb
            # variable of the Chocolate / DateOfBirth queries)
            for clause in parsed.satisfying:
                if clause.variable in output_names:
                    continue
                binding = assignment.get(clause.variable)
                if binding is None:
                    continue
                text = sentence.span_text(binding.start, binding.end)
                key = (clause.variable, text.lower())
                cached = clause_cache.get(key)
                if cached is None:
                    outcome = aggregator.evaluate_clause(
                        clause, text, document, threshold_override
                    )
                    cached = (outcome.score, outcome.passed)
                    clause_cache[key] = cached
                score, clause_passed = cached
                scores.append((clause.variable, score))
                if not clause_passed:
                    passed = False

            if excluded:
                continue
            if passed or keep_all_scores:
                result.tuples.append(
                    ExtractionTuple(
                        doc_id=document.doc_id,
                        sid=sentence.sid,
                        values=tuple(values),
                        scores=tuple(scores),
                    )
                )
