"""The KOKO query evaluation engine (Figure 2 of the paper).

``KokoEngine`` owns an annotated corpus and the multi-index built over it,
and evaluates queries through the four stages of Section 4:

1. **Normalize query** — parse (if needed) and normalise the extract clause.
2. **Decompose paths & lookup indices (DPLI)** — prune to candidate
   sentences using the word, entity, PL and POS indexes.
3. **Generate skip plan (GSP) + extract** — per candidate sentence, choose
   which span atoms to skip, enumerate bindings, check constraints.
4. **Aggregate** — per document, score every candidate value of every output
   variable against its satisfying clause, apply thresholds and the
   excluding clause.

Since the sharded-execution refactor the engine is a thin façade: it builds
an :class:`~repro.koko.stages.ExecutionContext` over its own corpus and
indexes and runs the :class:`~repro.koko.stages.StagePipeline`.  Wall-clock
time per stage is recorded in :class:`~repro.koko.results.StageTimings`
(the columns of Table 2) as a by-product of running each stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..embeddings.expansion import DescriptorExpander
from ..embeddings.vectors import VectorStore
from ..indexing.koko_index import KokoIndexSet
from ..nlp.lexicon import GAZETTEER_GPE
from ..nlp.types import Corpus, Document, Sentence
from ..observability.tracing import Span
from .ast import KokoQuery
from .conditions import EvidenceResources
from .normalize import NormalizedQuery, normalize
from .parser import parse_query
from .results import KokoResult
from .stages import ExecutionContext, StagePipeline


@dataclass(frozen=True)
class CompiledQuery:
    """A parsed + normalised query, reusable across many executions.

    Parsing and normalisation depend only on the query text, not on the
    corpus, so a compiled query can be cached (the service layer keys a
    plan cache by query string) and executed repeatedly — the engine then
    skips the Normalize stage entirely.
    """

    parsed: KokoQuery
    normalized: NormalizedQuery
    text: str | None = None
    compile_seconds: float = 0.0


def compile_query(query: str | KokoQuery) -> CompiledQuery:
    """Parse (if needed) and normalise *query* into a :class:`CompiledQuery`."""
    started = time.perf_counter()
    parsed = parse_query(query) if isinstance(query, str) else query
    normalized = normalize(parsed)
    return CompiledQuery(
        parsed=parsed,
        normalized=normalized,
        text=query if isinstance(query, str) else None,
        compile_seconds=time.perf_counter() - started,
    )


class KokoEngine:
    """Evaluate KOKO queries over one annotated corpus."""

    def __init__(
        self,
        corpus: Corpus,
        expander: DescriptorExpander | None = None,
        vectors: VectorStore | None = None,
        dictionaries: dict[str, set[str]] | None = None,
        use_gsp: bool = True,
        indexes: KokoIndexSet | None = None,
        use_default_vectors: bool = True,
    ) -> None:
        self.corpus = corpus
        self.use_gsp = use_gsp
        self.indexes = indexes if indexes is not None else KokoIndexSet().build(corpus)
        self.pipeline = StagePipeline()
        if vectors is None and use_default_vectors:
            from ..embeddings.pretrained import build_default_vectors

            vectors = build_default_vectors()
        dictionaries = dict(dictionaries) if dictionaries else {}
        dictionaries.setdefault("location", set(GAZETTEER_GPE))
        self.resources = EvidenceResources(
            expander=expander or DescriptorExpander(vectors=vectors),
            vectors=vectors,
            dictionaries={k.lower(): {v.lower() for v in vals} for k, vals in dictionaries.items()},
        )
        # sid -> (document, sentence), used to "load" candidate articles
        self._by_sid: dict[int, tuple[Document, Sentence]] = {}
        for document in corpus:
            for sentence in document:
                self._by_sid[sentence.sid] = (document, sentence)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def register_document(self, document: Document) -> None:
        """Make a newly ingested document's sentences addressable by sid.

        The engine shares its corpus object with the caller; after the
        caller appends *document* to that corpus (and indexes it), this
        keeps the sid → sentence map in sync so candidate loading works.
        """
        for sentence in document:
            self._by_sid[sentence.sid] = (document, sentence)

    def unregister_document(self, document: Document) -> None:
        """Forget a removed document's sentences."""
        for sentence in document:
            self._by_sid.pop(sentence.sid, None)

    def make_context(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        trace: Span | None = None,
    ) -> ExecutionContext:
        """An :class:`ExecutionContext` over this engine's corpus slice."""
        return ExecutionContext(
            query=query,
            corpus=self.corpus,
            indexes=self.indexes,
            by_sid=self._by_sid,
            resources=self.resources,
            use_gsp=self.use_gsp,
            threshold_override=threshold_override,
            keep_all_scores=keep_all_scores,
            trace=trace,
        )

    def execute(
        self,
        query: str | KokoQuery | CompiledQuery,
        threshold_override: float | None = None,
        keep_all_scores: bool = False,
        trace: Span | None = None,
    ) -> KokoResult:
        """Evaluate *query* and return its result.

        ``threshold_override`` replaces the thresholds of every satisfying
        clause (the experiments sweep it).  ``keep_all_scores=True`` keeps
        tuples that fail their thresholds too (with their scores), which
        lets an experiment evaluate many thresholds from a single run.
        Passing a :class:`CompiledQuery` skips parsing and normalisation.
        With ``trace`` given, each pipeline stage runs inside a child span
        of it.
        """
        context = self.make_context(
            query,
            threshold_override=threshold_override,
            keep_all_scores=keep_all_scores,
            trace=trace,
        )
        return self.pipeline.run(context)
