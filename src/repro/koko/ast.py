"""Abstract syntax of the KOKO query language (Section 2).

A query has the shape::

    extract <output tuple> from <source> if
        ( <variable declarations, conditions, and constraints> )
    [satisfying <output variable>
        <weighted conditions>
     with threshold a]
    [excluding <conditions>]

The AST mirrors that structure.  Parsing produces these nodes; the
normaliser (``normalize.py``) rewrites path expressions to absolute form and
derives the structural constraints; the evaluator consumes the normalised
query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ----------------------------------------------------------------------
# path expressions (node terms)
# ----------------------------------------------------------------------
CHILD_AXIS = "/"
DESCENDANT_AXIS = "//"


@dataclass(frozen=True)
class StepCondition:
    """A ``[...]`` condition on one path step, e.g. ``[@pos="noun"]``.

    ``attribute`` is one of ``"pos"``, ``"etype"``, ``"text"`` or ``"regex"``.
    """

    attribute: str
    value: str


@dataclass(frozen=True)
class PathStep:
    """One step of a path: axis, label, and optional step conditions.

    The label may be a parse label, a POS tag, a quoted word
    (``is_word=True``), a wildcard ``*`` or a reference to a previously
    defined node variable (resolved during normalisation).
    """

    axis: str
    label: str
    is_word: bool = False
    conditions: tuple[StepCondition, ...] = ()

    def render(self) -> str:
        label = f'"{self.label}"' if self.is_word else self.label
        conds = ""
        if self.conditions:
            rendered = ", ".join(f"@{c.attribute}={c.value!r}" for c in self.conditions)
            conds = f"[{rendered}]"
        return f"{self.axis}{label}{conds}"


@dataclass(frozen=True)
class PathExpr:
    """A node term: an optional base variable followed by path steps.

    ``//verb`` has no base; ``a/dobj`` has base variable ``a``.
    """

    steps: tuple[PathStep, ...]
    base_var: str | None = None

    def render(self) -> str:
        prefix = self.base_var or ""
        return prefix + "".join(step.render() for step in self.steps)


# ----------------------------------------------------------------------
# span expressions (span terms)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VarRef:
    """A reference to a previously defined variable inside a span term."""

    name: str


@dataclass(frozen=True)
class SubtreeRef:
    """``x.subtree`` — the span covering the subtree of node variable x."""

    var: str


@dataclass(frozen=True)
class TokenSeq:
    """A literal sequence of tokens, e.g. ``"a cafe"``."""

    text: str


@dataclass(frozen=True)
class Elastic:
    """The elastic span ``^`` (the paper's wedge): zero or more tokens.

    Optional constraints: an entity-type requirement, a regular expression
    over the covered text, and minimum / maximum token counts.
    """

    etype: str | None = None
    regex: str | None = None
    min_tokens: int = 0
    max_tokens: int | None = None


@dataclass(frozen=True)
class EntityBinding:
    """A declaration that binds a variable to entity mentions of a type.

    ``a = Entity`` makes *a* range over all entity mentions; ``a = Person``
    over person mentions only.
    """

    etype: str


SpanAtom = Union[PathExpr, VarRef, SubtreeRef, TokenSeq, Elastic]


@dataclass(frozen=True)
class SpanExpr:
    """A span term: the concatenation ``atom1 + atom2 + ... + atomK``."""

    atoms: tuple[SpanAtom, ...]


# ----------------------------------------------------------------------
# declarations and constraints in the extract clause
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Declaration:
    """``name = expression`` inside the ``/ROOT:{...}`` block."""

    name: str
    expr: PathExpr | SpanExpr | EntityBinding


@dataclass(frozen=True)
class VarConstraint:
    """A constraint between two variables stated outside the block.

    ``op`` is one of ``"in"``, ``"eq"``, and (after normalisation)
    ``"parentOf"``, ``"ancestorOf"``, ``"leftOf"``.
    """

    left: str
    op: str
    right: str


@dataclass(frozen=True)
class OutputVar:
    """One component of the output tuple: ``name:Type``."""

    name: str
    otype: str

    @property
    def is_entity_typed(self) -> bool:
        return self.otype.lower() not in {"str", "string"}


# ----------------------------------------------------------------------
# satisfying-clause conditions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StrCondition:
    """``str(x) contains/mentions/matches "..."`` — boolean, corpus-free."""

    var: str
    op: str  # "contains" | "mentions" | "matches"
    value: str


@dataclass(frozen=True)
class AdjacencyCondition:
    """``x "string"`` (followed by) or ``"string" x`` (preceded by)."""

    var: str
    text: str
    side: str  # "after" (x "...") | "before" ("..." x)


@dataclass(frozen=True)
class NearCondition:
    """``x near "string"`` — score 1 / (1 + distance)."""

    var: str
    text: str


@dataclass(frozen=True)
class DescriptorCondition:
    """``x [[descriptor]]`` or ``[[descriptor]] x`` — non-boolean evidence."""

    var: str
    descriptor: str
    side: str  # "after" | "before"


@dataclass(frozen=True)
class SimilarToCondition:
    """``x similarTo "word"`` — semantic similarity of x itself to a concept."""

    var: str
    concept: str


@dataclass(frozen=True)
class InDictCondition:
    """``str(x) in dict("Location")`` — membership in a named dictionary."""

    var: str
    dictionary: str


SatisfyingConditionBody = Union[
    StrCondition,
    AdjacencyCondition,
    NearCondition,
    DescriptorCondition,
    SimilarToCondition,
    InDictCondition,
]


@dataclass(frozen=True)
class WeightedCondition:
    """One disjunct of a satisfying clause: a condition with a weight."""

    condition: SatisfyingConditionBody
    weight: float


@dataclass
class SatisfyingClause:
    """``satisfying <var> (...) or (...) with threshold a``."""

    variable: str
    conditions: list[WeightedCondition] = field(default_factory=list)
    threshold: float = 0.0


@dataclass
class ExcludingClause:
    """``excluding (...) or (...)`` — unweighted filter conditions."""

    conditions: list[SatisfyingConditionBody] = field(default_factory=list)


# ----------------------------------------------------------------------
# the query
# ----------------------------------------------------------------------
@dataclass
class KokoQuery:
    """A parsed KOKO query."""

    outputs: list[OutputVar] = field(default_factory=list)
    source: str = ""
    declarations: list[Declaration] = field(default_factory=list)
    constraints: list[VarConstraint] = field(default_factory=list)
    satisfying: list[SatisfyingClause] = field(default_factory=list)
    excluding: ExcludingClause | None = None

    def output_names(self) -> list[str]:
        return [out.name for out in self.outputs]

    def declared_names(self) -> list[str]:
        return [decl.name for decl in self.declarations]

    def declaration(self, name: str) -> Declaration | None:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        return None

    def satisfying_for(self, variable: str) -> SatisfyingClause | None:
        for clause in self.satisfying:
            if clause.variable == variable:
                return clause
        return None
