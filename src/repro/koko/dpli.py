"""Decompose Paths and Lookup Indices — Algorithm 1 of the paper.

Given a normalised query and the KOKO multi-index, DPLI produces candidate
bindings for every variable:

* entity-bound variables get the posting lists of the entity index,
* path-bound variables get the postings of their **dominant** path, obtained
  by decomposing that path into parse-label / POS-tag / word paths, looking
  up the PL index, POS index and word index respectively, and joining the
  results (Section 4.2.2),
* span variables have no index-derived bindings; their candidates are
  computed per sentence by the evaluator.

The union of the sentence ids over all index-derived bindings is the
candidate-sentence set the rest of the evaluation iterates over.  If any
looked-up path has no match at all, the query provably has an empty answer
("If this happens, the evaluation immediately ceases").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..indexing.decompose import lookup_decomposed
from ..indexing.entity_index import EntityPosting
from ..indexing.koko_index import KokoIndexSet
from ..indexing.postings import Posting
from .normalize import NormalizedQuery


@dataclass
class DpliResult:
    """Candidate bindings per variable plus the candidate sentence set."""

    #: path variable -> candidate postings (of its dominant path)
    path_bindings: dict[str, list[Posting]] = field(default_factory=dict)
    #: entity variable -> entity postings
    entity_bindings: dict[str, list[EntityPosting]] = field(default_factory=dict)
    #: sentences worth evaluating; None means "all sentences" (no pruning
    #: possible, e.g. an empty extract clause)
    candidate_sids: set[int] | None = None
    #: True when an index lookup proves the query has no answers
    provably_empty: bool = False

    def bindings_count(self, variable: str, sid: int) -> int:
        """|bindings[x][sid = s]| — the GSP cost estimate for one variable."""
        if variable in self.path_bindings:
            return sum(1 for p in self.path_bindings[variable] if p.sid == sid)
        if variable in self.entity_bindings:
            return sum(1 for p in self.entity_bindings[variable] if p.sid == sid)
        return 0


def run_dpli(normalized: NormalizedQuery, indexes: KokoIndexSet) -> DpliResult:
    """Run Algorithm 1 against *indexes*."""
    result = DpliResult()
    sid_sets: list[set[int]] = []

    # entity-bound variables: union of entity-index posting lists
    for variable, etype in normalized.entity_vars.items():
        postings = indexes.entity_index.lookup_type(etype)
        result.entity_bindings[variable] = postings
        sid_sets.append({p.sid for p in postings})

    # dominant paths: decompose and look up
    dominant_postings: dict[str, list[Posting]] = {}
    for variable, path in normalized.dominant.items():
        tree_path = normalized.tree_paths[variable]
        postings = lookup_decomposed(indexes, tree_path)
        dominant_postings[variable] = postings
        if not postings:
            result.provably_empty = True
        sid_sets.append({p.sid for p in postings})

    # every path variable is served by the bindings of its dominant path
    for variable in normalized.absolute_paths:
        dominant_var = normalized.dominant_for.get(variable, variable)
        result.path_bindings[variable] = dominant_postings.get(
            dominant_var, dominant_postings.get(variable, [])
        )

    if result.provably_empty:
        result.candidate_sids = set()
        return result

    if sid_sets:
        # Sentences must contain candidates for every index-supported
        # variable; variables with no index support do not constrain the set.
        candidate = sid_sets[0]
        for sids in sid_sets[1:]:
            candidate = candidate & sids
        result.candidate_sids = candidate
    else:
        result.candidate_sids = None
    return result
