"""Decompose Paths and Lookup Indices — Algorithm 1 of the paper.

Given a normalised query and the KOKO multi-index, DPLI produces candidate
bindings for every variable:

* entity-bound variables get the posting lists of the entity index,
* path-bound variables get the postings of their **dominant** path, obtained
  by decomposing that path into parse-label / POS-tag / word paths, looking
  up the PL index, POS index and word index respectively, and joining the
  results (Section 4.2.2),
* span variables have no index-derived bindings; their candidates are
  computed per sentence by the evaluator.

The union of the sentence ids over all index-derived bindings is the
candidate-sentence set the rest of the evaluation iterates over.  If any
looked-up path has no match at all, the query provably has an empty answer
("If this happens, the evaluation immediately ceases").

Against a columnar index set the lookups run as whole-array block joins and
the result additionally carries per-variable **sorted sentence-id columns**,
so skip-plan cost estimation (`bindings_count`) becomes a pair of binary
searches instead of a posting-list scan — and can be answered for a whole
candidate-sid array at once (:meth:`DpliResult.bindings_count_array`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..indexing.decompose import lookup_decomposed, lookup_decomposed_block
from ..indexing.entity_index import EntityPosting
from ..indexing.koko_index import KokoIndexSet
from ..indexing.columnar import PostingView
from ..indexing.postings import Posting
from .normalize import NormalizedQuery

_EMPTY_SIDS = np.empty(0, dtype=np.int64)


@dataclass
class DpliResult:
    """Candidate bindings per variable plus the candidate sentence set."""

    #: path variable -> candidate postings (of its dominant path)
    path_bindings: dict[str, Sequence[Posting]] = field(default_factory=dict)
    #: entity variable -> entity postings
    entity_bindings: dict[str, Sequence[EntityPosting]] = field(default_factory=dict)
    #: sentences worth evaluating; None means "all sentences" (no pruning
    #: possible, e.g. an empty extract clause)
    candidate_sids: set[int] | None = None
    #: True when an index lookup proves the query has no answers
    provably_empty: bool = False
    #: variable -> sorted sid column of its bindings (columnar DPLI only);
    #: lets bindings_count answer by binary search and enables the batched
    #: skip-plan path of the GSP module
    _count_index: dict[str, np.ndarray] | None = field(default=None, repr=False)

    @property
    def supports_batch(self) -> bool:
        """True when per-variable sid columns are available for batch GSP."""
        return self._count_index is not None

    def bindings_count(self, variable: str, sid: int) -> int:
        """|bindings[x][sid = s]| — the GSP cost estimate for one variable."""
        if self._count_index is not None:
            sids = self._count_index.get(variable)
            if sids is None:
                return 0
            left = int(np.searchsorted(sids, sid, side="left"))
            right = int(np.searchsorted(sids, sid, side="right"))
            return right - left
        if variable in self.path_bindings:
            return sum(1 for p in self.path_bindings[variable] if p.sid == sid)
        if variable in self.entity_bindings:
            return sum(1 for p in self.entity_bindings[variable] if p.sid == sid)
        return 0

    def bindings_count_array(self, variable: str, sids: np.ndarray) -> np.ndarray:
        """Binding counts for a whole array of sentence ids at once."""
        index = self._count_index
        column = index.get(variable) if index is not None else None
        if column is None or column.size == 0:
            return np.zeros(len(sids), dtype=np.int64)
        left = np.searchsorted(column, sids, side="left")
        right = np.searchsorted(column, sids, side="right")
        return (right - left).astype(np.int64)


def run_dpli(normalized: NormalizedQuery, indexes: KokoIndexSet) -> DpliResult:
    """Run Algorithm 1 against *indexes*."""
    if getattr(indexes, "columnar", False):
        return _run_dpli_columnar(normalized, indexes)
    result = DpliResult()
    sid_sets: list[set[int]] = []

    # entity-bound variables: union of entity-index posting lists
    for variable, etype in normalized.entity_vars.items():
        postings = indexes.entity_index.lookup_type(etype)
        result.entity_bindings[variable] = postings
        sid_sets.append({p.sid for p in postings})

    # dominant paths: decompose and look up
    dominant_postings: dict[str, list[Posting]] = {}
    for variable, path in normalized.dominant.items():
        tree_path = normalized.tree_paths[variable]
        postings = lookup_decomposed(indexes, tree_path)
        dominant_postings[variable] = postings
        if not postings:
            result.provably_empty = True
        sid_sets.append({p.sid for p in postings})

    # every path variable is served by the bindings of its dominant path
    for variable in normalized.absolute_paths:
        dominant_var = normalized.dominant_for.get(variable, variable)
        result.path_bindings[variable] = dominant_postings.get(
            dominant_var, dominant_postings.get(variable, [])
        )

    if result.provably_empty:
        result.candidate_sids = set()
        return result

    if sid_sets:
        # Sentences must contain candidates for every index-supported
        # variable; variables with no index support do not constrain the set.
        candidate = sid_sets[0]
        for sids in sid_sets[1:]:
            candidate = candidate & sids
        result.candidate_sids = candidate
    else:
        result.candidate_sids = None
    return result


def _run_dpli_columnar(
    normalized: NormalizedQuery, indexes: KokoIndexSet
) -> DpliResult:
    """Algorithm 1 over columnar indexes: block lookups, array candidates."""
    count_index: dict[str, np.ndarray] = {}
    result = DpliResult(_count_index=count_index)
    sid_arrays: list[np.ndarray] = []

    # entity-bound variables: sid column + lazily materialised posting view
    for variable, etype in normalized.entity_vars.items():
        sid_col, view = indexes.entity_index.lookup_type_block(etype)
        result.entity_bindings[variable] = view
        count_index[variable] = np.sort(sid_col)
        sid_arrays.append(np.unique(sid_col))

    # dominant paths: decompose and look up, all vectorized
    dominant_blocks: dict[str, "object"] = {}
    for variable, path in normalized.dominant.items():
        tree_path = normalized.tree_paths[variable]
        block = lookup_decomposed_block(indexes, tree_path)
        dominant_blocks[variable] = block
        if block.size == 0:
            result.provably_empty = True
        sid_arrays.append(np.unique(block.sid))

    # every path variable is served by the bindings of its dominant path
    for variable in normalized.absolute_paths:
        dominant_var = normalized.dominant_for.get(variable, variable)
        block = dominant_blocks.get(dominant_var, dominant_blocks.get(variable))
        if block is None:
            result.path_bindings[variable] = []
            count_index[variable] = _EMPTY_SIDS
        else:
            result.path_bindings[variable] = PostingView(block)
            count_index[variable] = np.sort(block.sid)

    if result.provably_empty:
        result.candidate_sids = set()
        return result

    if sid_arrays:
        candidate = sid_arrays[0]
        for sids in sid_arrays[1:]:
            candidate = np.intersect1d(candidate, sids, assume_unique=True)
        result.candidate_sids = set(candidate.tolist())
    else:
        result.candidate_sids = None
    return result
