"""Query normalisation (Section 4.1).

Normalisation rewrites the extract clause into the form the evaluator
consumes:

* every path expression defined relative to another variable is expanded to
  its **absolute** form (``b = a/dobj`` with ``a = //verb`` becomes
  ``b = //verb/dobj``),
* the structural constraints implicit in those definitions are made explicit
  (``a parentOf b``, ``b ancestorOf c``),
* span terms (horizontal conditions) get explicit variables for their
  elastic ``^`` atoms and the corresponding ``leftOf`` adjacency constraints,
* output variables that are entity typed but not declared in the block are
  given implicit entity bindings,
* every absolute path is lowered to the tree-pattern IR for the DPLI module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KokoSemanticError
from ..indexing.query_ir import TreePath
from .ast import (
    CHILD_AXIS,
    Declaration,
    Elastic,
    EntityBinding,
    KokoQuery,
    PathExpr,
    SpanExpr,
    SubtreeRef,
    TokenSeq,
    VarConstraint,
    VarRef,
)
from .paths import dominant_of, dominant_paths, to_tree_path


@dataclass
class HorizontalCondition:
    """One span definition ``x = e1 + ... + em`` with named atoms.

    ``atom_vars`` lists, in order, the variable name standing for each atom:
    real variables for variable references, generated names (``_v1``, ...)
    for elastic spans, token sequences, subtrees and inline paths.
    """

    target: str
    atom_vars: list[str] = field(default_factory=list)


@dataclass
class NormalizedQuery:
    """The evaluator-facing view of a query."""

    query: KokoQuery
    #: var -> absolute path expression (node terms only)
    absolute_paths: dict[str, PathExpr] = field(default_factory=dict)
    #: var -> tree-pattern IR of the absolute path
    tree_paths: dict[str, TreePath] = field(default_factory=dict)
    #: var -> entity type for entity-bound variables
    entity_vars: dict[str, str] = field(default_factory=dict)
    #: var -> span expression for span-term variables
    span_vars: dict[str, SpanExpr] = field(default_factory=dict)
    #: generated atom variables: name -> atom (Elastic / TokenSeq / SubtreeRef / PathExpr)
    atom_vars: dict[str, object] = field(default_factory=dict)
    #: all structural constraints: user constraints plus derived ones
    constraints: list[VarConstraint] = field(default_factory=list)
    #: horizontal conditions, one per span-term declaration
    horizontal_conditions: list[HorizontalCondition] = field(default_factory=list)
    #: dominant paths: var -> absolute path (subset of absolute_paths)
    dominant: dict[str, PathExpr] = field(default_factory=dict)
    #: var -> name of the variable whose dominant path serves it
    dominant_for: dict[str, str] = field(default_factory=dict)

    def all_variables(self) -> list[str]:
        names = list(self.entity_vars) + list(self.absolute_paths) + list(self.span_vars)
        seen: set[str] = set()
        ordered = []
        for name in names:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return ordered


def normalize(query: KokoQuery) -> NormalizedQuery:
    """Normalise *query* (Section 4.1); raises on unresolvable references."""
    normalized = NormalizedQuery(query=query)
    normalized.constraints.extend(query.constraints)

    _classify_declarations(query, normalized)
    _implicit_output_bindings(query, normalized)
    _expand_span_terms(query, normalized)

    normalized.dominant = dominant_paths(normalized.absolute_paths)
    normalized.dominant_for = {
        name: dominant_of(name, normalized.absolute_paths)
        for name in normalized.absolute_paths
    }
    normalized.tree_paths = {
        name: to_tree_path(path) for name, path in normalized.absolute_paths.items()
    }
    return normalized


# ----------------------------------------------------------------------
# declaration classification and path expansion
# ----------------------------------------------------------------------
def _classify_declarations(query: KokoQuery, normalized: NormalizedQuery) -> None:
    for declaration in query.declarations:
        expr = declaration.expr
        if isinstance(expr, EntityBinding):
            normalized.entity_vars[declaration.name] = expr.etype
        elif isinstance(expr, PathExpr):
            absolute = _expand_path(declaration.name, expr, normalized)
            normalized.absolute_paths[declaration.name] = absolute
        elif isinstance(expr, SpanExpr):
            normalized.span_vars[declaration.name] = expr
        else:  # pragma: no cover - parser produces only the above
            raise KokoSemanticError(
                f"unsupported declaration expression for {declaration.name!r}"
            )


def _expand_path(name: str, expr: PathExpr, normalized: NormalizedQuery) -> PathExpr:
    """Expand a relative path to absolute form and derive its constraint."""
    if expr.base_var is None:
        return expr
    base = expr.base_var
    if base in normalized.absolute_paths:
        base_path = normalized.absolute_paths[base]
        absolute = PathExpr(steps=base_path.steps + expr.steps, base_var=None)
        op = (
            "parentOf"
            if len(expr.steps) == 1 and expr.steps[0].axis == CHILD_AXIS
            else "ancestorOf"
        )
        normalized.constraints.append(VarConstraint(left=base, op=op, right=name))
        return absolute
    if base in normalized.entity_vars:
        # a path hanging off an entity variable keeps the entity var as its
        # anchor; the evaluator resolves it per binding.  Constraint derived
        # the same way.
        op = (
            "parentOf"
            if len(expr.steps) == 1 and expr.steps[0].axis == CHILD_AXIS
            else "ancestorOf"
        )
        normalized.constraints.append(VarConstraint(left=base, op=op, right=name))
        return expr
    raise KokoSemanticError(
        f"path for variable {name!r} references unknown base variable {base!r}"
    )


def _implicit_output_bindings(query: KokoQuery, normalized: NormalizedQuery) -> None:
    declared = set(normalized.entity_vars) | set(normalized.absolute_paths) | set(
        normalized.span_vars
    )
    for output in query.outputs:
        if output.name in declared:
            continue
        if output.is_entity_typed:
            normalized.entity_vars[output.name] = output.otype
        else:
            raise KokoSemanticError(
                f"output variable {output.name!r} of type {output.otype!r} is "
                "never declared in the extract clause"
            )


# ----------------------------------------------------------------------
# span terms -> horizontal conditions
# ----------------------------------------------------------------------
def _expand_span_terms(query: KokoQuery, normalized: NormalizedQuery) -> None:
    counter = 0
    for name, span in normalized.span_vars.items():
        condition = HorizontalCondition(target=name)
        previous_atom_var: str | None = None
        for atom in span.atoms:
            if isinstance(atom, VarRef):
                atom_var = atom.name
            else:
                counter += 1
                atom_var = f"_v{counter}"
                normalized.atom_vars[atom_var] = atom
            condition.atom_vars.append(atom_var)
            if previous_atom_var is not None:
                normalized.constraints.append(
                    VarConstraint(left=previous_atom_var, op="leftOf", right=atom_var)
                )
            previous_atom_var = atom_var
        normalized.horizontal_conditions.append(condition)
