"""Path utilities: label-kind resolution, lowering to the tree-pattern IR,
dominance between paths (Section 4.2.1).

The parser does not know whether a step label such as ``verb`` names a POS
tag or a parse label; that resolution happens here, against the tag
inventories of the NLP substrate.  Normalised (absolute) path expressions
are lowered to :class:`~repro.indexing.query_ir.TreePath` so the DPLI module
and the index baselines share one representation.
"""

from __future__ import annotations

from ..indexing.query_ir import (
    CHILD,
    DESCENDANT,
    KIND_ANY,
    KIND_PARSE_LABEL,
    KIND_POS,
    KIND_WORD,
    TreePath,
    TreeStep,
)
from ..nlp.types import PARSE_LABELS, UNIVERSAL_POS_TAGS
from .ast import CHILD_AXIS, PathExpr, PathStep

_POS_LOWER = {t.lower() for t in UNIVERSAL_POS_TAGS} | {"propn", "noun", "verb", "adj", "adv"}
_LABEL_LOWER = {l.lower() for l in PARSE_LABELS}


def label_kind(step: PathStep) -> str:
    """Classify the label of *step*: word, wildcard, POS tag or parse label."""
    if step.is_word:
        return KIND_WORD
    low = step.label.lower()
    if low == "*":
        return KIND_ANY
    if low in _POS_LOWER:
        return KIND_POS
    if low in _LABEL_LOWER:
        return KIND_PARSE_LABEL
    # Unknown bare labels are treated as words (the paper allows tokens as
    # path labels without quotes in some examples).
    return KIND_WORD


def to_tree_path(path: PathExpr) -> TreePath:
    """Lower an *absolute* path expression to the tree-pattern IR.

    Step conditions of the form ``[text="ate"]`` or ``[pos="noun"]`` are
    folded into extra constraints by appending a same-node refinement: the
    lowering keeps the primary label and ignores the conditions (they are
    re-checked exactly by the evaluator), except that a ``text`` condition
    on a non-word step is strengthened into a word step when possible, which
    lets the word index prune more candidates.
    """
    steps: list[TreeStep] = []
    for step in path.steps:
        kind = label_kind(step)
        label = step.label
        text_condition = next(
            (c.value for c in step.conditions if c.attribute == "text"), None
        )
        if kind != KIND_WORD and text_condition:
            label, kind = text_condition, KIND_WORD
        axis = CHILD if step.axis == CHILD_AXIS else DESCENDANT
        steps.append(TreeStep(axis=axis, label=label, kind=kind))
    return TreePath(steps=tuple(steps))


def strip_conditions(path: PathExpr) -> tuple[tuple[str, str, bool], ...]:
    """The path as a tuple of (axis, label, is_word), without conditions."""
    return tuple((s.axis, s.label.lower(), s.is_word) for s in path.steps)


def conditions_signature(path: PathExpr) -> tuple:
    """Per-step condition sets, order-insensitive within a step."""
    return tuple(
        frozenset((c.attribute, c.value) for c in step.conditions)
        for step in path.steps
    )


def is_dominated(p: PathExpr, q: PathExpr) -> bool:
    """True when path *p* is dominated by path *q* (Section 4.2.1).

    ``p`` is dominated by ``q`` iff (1) p without conditions is a proper or
    improper prefix of q without conditions and p is not q itself, and
    (2) every condition of a label in p is identical to the condition of the
    corresponding label in q (modulo order).
    """
    p_bare, q_bare = strip_conditions(p), strip_conditions(q)
    if len(p_bare) >= len(q_bare):
        return False
    if q_bare[: len(p_bare)] != p_bare:
        return False
    p_conditions = conditions_signature(p)
    q_conditions = conditions_signature(q)
    return all(
        p_conditions[i] == q_conditions[i] for i in range(len(p_bare))
    )


def dominant_paths(paths: dict[str, PathExpr]) -> dict[str, PathExpr]:
    """The subset of *paths* (var -> absolute path) that no other path dominates.

    Returns a mapping from variable name to its path for every dominant
    path.  Every dominated variable is served by (the bindings of) some
    dominant path; :func:`dominant_of` finds which one.
    """
    result: dict[str, PathExpr] = {}
    for name, path in paths.items():
        dominated = any(
            other_name != name and is_dominated(path, other)
            for other_name, other in paths.items()
        )
        if not dominated:
            result[name] = path
    return result


def dominant_of(name: str, paths: dict[str, PathExpr]) -> str:
    """The variable whose dominant path serves variable *name*.

    If *name*'s path is itself dominant, returns *name*; otherwise returns
    the variable with the longest dominating path.
    """
    path = paths[name]
    best_name = name
    best_len = len(path.steps)
    for other_name, other in paths.items():
        if other_name == name:
            continue
        if is_dominated(path, other) and len(other.steps) > best_len:
            best_name, best_len = other_name, len(other.steps)
    return best_name
