"""Durability for the serving layer: snapshots, write-ahead log, recovery.

The subsystem splits durable state the way HTAP engines do:

* **snapshots** — read-optimised: the corpus and every shard's multi-index,
  materialised through the existing storage-engine path
  (:meth:`~repro.indexing.koko_index.KokoIndexSet.to_database`) and restored
  through its new ``from_database`` inverse;
* **write-ahead log** — write-optimised: every ``add``/``remove`` appended
  with CRC framing and fsync before it touches memory, rotated at each
  checkpoint;
* **recovery** — latest valid snapshot + WAL tail replay, tolerating a torn
  final record, so ``KokoService.open(path)`` restarts warm with identical
  query results and zero re-annotation.
"""

from .checkpoint import CheckpointPolicy, CheckpointScheduler
from .layout import LAYOUT_VERSION, StorageLayout
from .recovery import RecoveredState, RecoveryManager
from .snapshot import (
    SnapshotState,
    load_snapshot,
    read_snapshot_payloads,
    state_from_payloads,
    write_snapshot,
)
from .wal import (
    OP_ADD,
    OP_REMOVE,
    CommitTicket,
    FrameScan,
    ReplayResult,
    WalCursor,
    WalPosition,
    WalRecord,
    WalWriter,
    WriteAheadLog,
    read_frames,
    read_records,
)

__all__ = [
    "CheckpointPolicy",
    "CheckpointScheduler",
    "CommitTicket",
    "FrameScan",
    "LAYOUT_VERSION",
    "OP_ADD",
    "OP_REMOVE",
    "RecoveredState",
    "RecoveryManager",
    "ReplayResult",
    "SnapshotState",
    "StorageLayout",
    "WalCursor",
    "WalPosition",
    "WalRecord",
    "WalWriter",
    "WriteAheadLog",
    "load_snapshot",
    "read_frames",
    "read_records",
    "read_snapshot_payloads",
    "state_from_payloads",
    "write_snapshot",
]
