"""Checkpoint policy + background scheduler for durable services.

A checkpoint folds the WAL into a new snapshot: the log stays short, and
recovery time stays proportional to the write traffic since the last
checkpoint rather than to the corpus size.  The policy is threshold-based
(operations logged, WAL bytes, seconds elapsed — whichever trips first),
mirroring the update-log/checkpoint split of HTAP designs.

The scheduler is a daemon thread that polls the policy; the snapshot
capture itself runs under the service's meta lock plus per-shard *read*
locks, so checkpointing stalls writers briefly but never blocks readers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

__all__ = ["CheckpointPolicy", "CheckpointScheduler"]


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to fold the WAL into a fresh snapshot.

    Any ``None`` threshold is disabled; a checkpoint is due when **any**
    enabled threshold is reached.  The defaults favour bounded recovery
    time over write amplification: every 256 logged operations, or 8 MiB
    of WAL, or 5 minutes — whichever comes first.
    """

    min_ops: int | None = 256
    min_bytes: int | None = 8 * 1024 * 1024
    min_seconds: float | None = 300.0

    def due(self, ops: int, wal_bytes: int, seconds: float) -> bool:
        """True when the write traffic since the last checkpoint trips a threshold."""
        if ops <= 0:
            return False  # nothing to fold; an empty checkpoint helps nobody
        if self.min_ops is not None and ops >= self.min_ops:
            return True
        if self.min_bytes is not None and wal_bytes >= self.min_bytes:
            return True
        if self.min_seconds is not None and seconds >= self.min_seconds:
            return True
        return False

    @classmethod
    def disabled(cls) -> "CheckpointPolicy":
        """Never checkpoint automatically (explicit ``checkpoint()`` only)."""
        return cls(min_ops=None, min_bytes=None, min_seconds=None)


class CheckpointScheduler:
    """Daemon thread that periodically offers the service a checkpoint.

    The callback decides (against the policy) and performs the checkpoint;
    the scheduler only provides the heartbeat, so all locking stays inside
    the service.
    """

    def __init__(self, callback: Callable[[], None], poll_seconds: float = 0.2) -> None:
        self._callback = callback
        self._poll_seconds = poll_seconds
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="koko-checkpoint", daemon=True
        )

    def start(self) -> None:
        """Start the daemon heartbeat thread."""
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._poll_seconds):
            try:
                self._callback()
            except Exception:  # pragma: no cover - keep the heartbeat alive
                # A failed background checkpoint must not kill the scheduler;
                # the next heartbeat (or an explicit checkpoint()) retries.
                pass

    def stop(self) -> None:
        """Signal the heartbeat to exit and join it (idempotent)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join()
