"""Versioned snapshots of a live service: corpus + indexes + counters.

A snapshot is the read-optimised half of the durability design: the full
service state at one checkpoint, written as

* ``corpus-<i>.pkl`` — shard *i*'s annotated documents (pickle), the exact
  objects the NLP pipeline produced, so warm restart re-annotates nothing;
* ``indexes-<i>.db`` — shard *i*'s W/E/PL/POS relations, materialised
  through the existing :meth:`KokoIndexSet.to_database` storage-engine path
  and restored through its :meth:`~KokoIndexSet.from_database` inverse;
* ``manifest.json`` — layout version, shard count, sid counter, per-shard
  generation stamps, and a SHA-256 digest per file so a half-written or
  bit-rotted snapshot is detected and skipped at recovery time.

Writes are crash-safe: everything lands in a ``.tmp`` sibling first, is
fsynced, and the directory is atomically renamed into place; the ``CURRENT``
pointer only moves after the rename is durable.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import PersistenceError

__all__ = [
    "SnapshotState",
    "load_snapshot",
    "read_snapshot_payloads",
    "state_from_payloads",
    "write_snapshot",
]
from ..indexing.koko_index import KokoIndexSet
from ..nlp.types import Document
from ..storage.database import Database
from .layout import LAYOUT_VERSION, StorageLayout, fsync_dir, fsync_file

MANIFEST_NAME = "manifest.json"


@dataclass
class SnapshotState:
    """Everything a snapshot persists (and recovery restores)."""

    checkpoint_id: int
    name: str
    num_shards: int
    next_sid: int
    generations: list[int]
    documents_by_shard: list[list[Document]]
    build_seconds_by_shard: list[float] = field(default_factory=list)
    #: per-shard W/E/PL/POS databases; populated by the writer (captured
    #: under lock) and by the loader (read back from disk)
    databases: list[Database] = field(default_factory=list)
    #: per-shard restored index sets; populated by the loader only
    index_sets: list[KokoIndexSet] = field(default_factory=list)


def _digest(path: Path) -> str:
    hasher = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _write_file(path: Path, payload: bytes) -> str:
    """Write + fsync one snapshot artifact; digest the bytes in hand."""
    path.write_bytes(payload)
    fsync_file(path)
    return hashlib.sha256(payload).hexdigest()


def write_snapshot(layout: StorageLayout, state: SnapshotState) -> Path:
    """Write *state* as snapshot ``ckpt-<id>`` and return its directory.

    Does **not** move ``CURRENT`` — the caller repoints it once the
    snapshot (and any WAL bookkeeping) is durable.
    """
    final_dir = layout.snapshot_dir(state.checkpoint_id)
    tmp_dir = final_dir.with_name(final_dir.name + ".tmp")
    if tmp_dir.exists():
        shutil.rmtree(tmp_dir)
    tmp_dir.mkdir(parents=True)

    files: dict[str, str] = {}
    shards_meta = []
    for shard_id in range(state.num_shards):
        corpus_name = f"corpus-{shard_id}.pkl"
        files[corpus_name] = _write_file(
            tmp_dir / corpus_name,
            pickle.dumps(
                state.documents_by_shard[shard_id], protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        indexes_name = f"indexes-{shard_id}.db"
        files[indexes_name] = _write_file(
            tmp_dir / indexes_name,
            pickle.dumps(state.databases[shard_id], protocol=pickle.HIGHEST_PROTOCOL),
        )
        shards_meta.append(
            {
                "documents": len(state.documents_by_shard[shard_id]),
                "build_seconds": (
                    state.build_seconds_by_shard[shard_id]
                    if state.build_seconds_by_shard
                    else 0.0
                ),
            }
        )

    manifest = {
        "version": LAYOUT_VERSION,
        "checkpoint_id": state.checkpoint_id,
        "name": state.name,
        "num_shards": state.num_shards,
        "next_sid": state.next_sid,
        "generations": list(state.generations),
        "shards": shards_meta,
        "files": files,
    }
    manifest_path = tmp_dir / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True), "utf-8")
    fsync_file(manifest_path)
    fsync_dir(tmp_dir)
    # A leftover directory for this id — e.g. from a checkpoint that
    # crashed before CURRENT moved and was re-run after recovery — is
    # necessarily incomplete or superseded (recovery would have restored
    # from it otherwise); clear it so the rename lands.
    if final_dir.exists():
        shutil.rmtree(final_dir)
    os.replace(tmp_dir, final_dir)
    fsync_dir(layout.snapshots_dir)
    return final_dir


def validate_snapshot(layout: StorageLayout, checkpoint_id: int) -> dict | None:
    """Return the manifest of snapshot *checkpoint_id* iff it is fully valid.

    Valid means: the directory and manifest exist, the layout version is
    readable, and every listed file is present with a matching digest.
    Returns ``None`` for anything less (the recovery scan skips it).
    """
    directory = layout.snapshot_dir(checkpoint_id)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if manifest.get("version") != LAYOUT_VERSION:
        return None
    if manifest.get("checkpoint_id") != checkpoint_id:
        return None
    for name, digest in manifest.get("files", {}).items():
        path = directory / name
        if not path.is_file() or _digest(path) != digest:
            return None
    return manifest


def find_latest_valid(layout: StorageLayout) -> int | None:
    """The newest snapshot id that passes full validation.

    Scans newest-first rather than trusting ``CURRENT``: checkpoint ids are
    monotonic and a fully-valid snapshot is always safe to recover from
    (it covers exactly the WAL segments up to its id), so a snapshot whose
    ``CURRENT`` update was lost in a crash is still preferred over the one
    the stale pointer names.  ``CURRENT`` remains the operator-facing hint.
    """
    for checkpoint_id in reversed(layout.snapshot_ids()):
        if validate_snapshot(layout, checkpoint_id) is not None:
            return checkpoint_id
    return None


def load_snapshot(
    layout: StorageLayout, checkpoint_id: int, verify: bool = True
) -> SnapshotState:
    """Load snapshot *checkpoint_id*: documents, index sets, counters.

    The indexes come back through :meth:`KokoIndexSet.from_database` — the
    inverse of the storage-engine materialisation — with each shard's corpus
    slice supplying original-case words and mention texts.

    Each file is read exactly once: the bytes are digested in hand (when
    ``verify`` is on, the default) and unpickled from the same buffer, so
    validation costs no extra I/O on the warm-restart path.  Any missing
    file, digest mismatch or undecodable payload raises
    :class:`PersistenceError`.
    """
    directory = layout.snapshot_dir(checkpoint_id)
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text("utf-8"))
    except (OSError, ValueError):
        manifest = None
    if (
        manifest is None
        or manifest.get("version") != LAYOUT_VERSION
        or manifest.get("checkpoint_id") != checkpoint_id
    ):
        raise PersistenceError(
            f"snapshot {checkpoint_id} at {directory} is missing or corrupt"
        )

    def read_verified(name: str) -> bytes:
        try:
            payload = (directory / name).read_bytes()
        except OSError as exc:
            raise PersistenceError(f"snapshot file {name} unreadable: {exc}") from exc
        if verify and hashlib.sha256(payload).hexdigest() != manifest["files"].get(name):
            raise PersistenceError(f"snapshot file {name} fails its digest")
        return payload

    return _decode_state(manifest, read_verified)


def read_snapshot_payloads(
    layout: StorageLayout, checkpoint_id: int
) -> tuple[dict, dict[str, bytes]]:
    """The raw, digest-verified bytes of snapshot *checkpoint_id*.

    Returns ``(manifest, payloads)`` where *payloads* maps each file name of
    the manifest to its exact on-disk bytes.  This is the shipping form of
    a snapshot: a replication primary sends these bytes verbatim and the
    follower rebuilds the state with :func:`state_from_payloads` — no
    pickling round trip, and the digests in the manifest let the follower
    re-verify what it received.  Raises :class:`PersistenceError` on any
    missing file or digest mismatch (e.g. a snapshot pruned mid-read — the
    caller retries with the new latest checkpoint).
    """
    directory = layout.snapshot_dir(checkpoint_id)
    try:
        manifest = json.loads((directory / MANIFEST_NAME).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        raise PersistenceError(
            f"snapshot {checkpoint_id} at {directory} is missing or corrupt"
        ) from exc
    if (
        manifest.get("version") != LAYOUT_VERSION
        or manifest.get("checkpoint_id") != checkpoint_id
    ):
        raise PersistenceError(f"snapshot {checkpoint_id} manifest is inconsistent")
    payloads: dict[str, bytes] = {}
    for name, digest in manifest.get("files", {}).items():
        try:
            payload = (directory / name).read_bytes()
        except OSError as exc:
            raise PersistenceError(f"snapshot file {name} unreadable: {exc}") from exc
        if hashlib.sha256(payload).hexdigest() != digest:
            raise PersistenceError(f"snapshot file {name} fails its digest")
        payloads[name] = payload
    return manifest, payloads


def state_from_payloads(
    manifest: dict, payloads: dict[str, bytes], verify: bool = True
) -> SnapshotState:
    """Rebuild a :class:`SnapshotState` from shipped snapshot bytes.

    The in-memory inverse of :func:`read_snapshot_payloads`: a replication
    follower hands the manifest and file bytes it received and gets back
    the same state :func:`load_snapshot` would produce from disk, digests
    re-checked against the manifest (``verify=True``, the default —
    transports are framed but not content-checksummed).
    """
    if manifest.get("version") != LAYOUT_VERSION:
        raise PersistenceError(
            f"shipped snapshot has layout version {manifest.get('version')!r}; "
            f"this build reads {LAYOUT_VERSION}"
        )

    def read_verified(name: str) -> bytes:
        payload = payloads.get(name)
        if payload is None:
            raise PersistenceError(f"shipped snapshot is missing file {name}")
        if verify and hashlib.sha256(payload).hexdigest() != manifest["files"].get(name):
            raise PersistenceError(f"shipped snapshot file {name} fails its digest")
        return payload

    return _decode_state(manifest, read_verified)


def _decode_state(manifest: dict, read_verified) -> SnapshotState:
    """Decode a snapshot's documents, databases and index sets.

    Shared by the disk loader and the replication (shipped-bytes) loader;
    *read_verified* maps a file name to its verified payload bytes.
    """
    checkpoint_id = manifest["checkpoint_id"]
    state = SnapshotState(
        checkpoint_id=checkpoint_id,
        name=manifest["name"],
        num_shards=manifest["num_shards"],
        next_sid=manifest["next_sid"],
        generations=[int(g) for g in manifest["generations"]],
        documents_by_shard=[],
        build_seconds_by_shard=[
            float(meta.get("build_seconds", 0.0)) for meta in manifest["shards"]
        ],
    )
    # Deserialising a corpus allocates very many small objects; collector
    # passes in the middle of that dominate warm-restart time, so hold GC
    # off for the duration (nothing loaded here is garbage yet anyway).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for shard_id in range(state.num_shards):
            try:
                documents: list[Document] = pickle.loads(
                    read_verified(f"corpus-{shard_id}.pkl")
                )
                database = pickle.loads(read_verified(f"indexes-{shard_id}.db"))
            except PersistenceError:
                raise
            except Exception as exc:
                raise PersistenceError(
                    f"snapshot {checkpoint_id} shard {shard_id} fails to decode: {exc}"
                ) from exc
            if not isinstance(database, Database):
                raise PersistenceError(
                    f"snapshot {checkpoint_id} shard {shard_id} is not a Database"
                )
            state.documents_by_shard.append(documents)
            state.databases.append(database)
            state.index_sets.append(
                KokoIndexSet.from_database(
                    database,
                    documents=documents,
                    build_seconds=state.build_seconds_by_shard[shard_id],
                )
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return state
