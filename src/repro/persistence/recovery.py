"""Crash recovery: latest valid snapshot + WAL tail replay.

The recovery sequence (the write path in reverse):

1. Resolve the newest **valid** snapshot — ``CURRENT`` first, then a
   newest-first scan so a crash mid-snapshot (torn directory, bad digest)
   falls back to the previous durable checkpoint.
2. Replay every WAL segment newer than that snapshot, in segment order,
   stopping at the first torn or corrupt frame: the state recovered is
   exactly the longest durable prefix of the operation history.
3. Hand the service a truncation point for the active segment, so new
   appends continue cleanly after the tear instead of burying good records
   behind a corrupt frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PersistenceError
from .layout import StorageLayout
from .snapshot import SnapshotState, load_snapshot
from .wal import ReplayResult, WalRecord, read_records

__all__ = ["RecoveredState", "RecoveryManager"]


@dataclass
class RecoveredState:
    """What :meth:`RecoveryManager.recover` hands back to the service."""

    #: restored snapshot, or None when no valid snapshot exists (fresh
    #: directory, or a crash before the first checkpoint)
    snapshot: SnapshotState | None
    #: WAL operations to re-apply on top of the snapshot, in log order
    operations: list[WalRecord] = field(default_factory=list)
    #: segment the reopened service must append to
    active_segment_id: int = 1
    #: byte length of that segment's valid prefix (truncate before append),
    #: or None when the segment does not exist yet
    active_segment_valid_bytes: int | None = None
    #: True when a torn tail was discarded during replay
    torn_tail: bool = False
    segments_replayed: int = 0

    @property
    def checkpoint_id(self) -> int:
        """Id of the restored checkpoint (0 = booted from an empty base)."""
        return self.snapshot.checkpoint_id if self.snapshot else 0


class RecoveryManager:
    """Restores the durable state of one service directory."""

    def __init__(self, layout: StorageLayout) -> None:
        self.layout = layout

    def recover(self) -> RecoveredState:
        """Load the latest valid snapshot and replay the WAL tail."""
        # Newest-first: a fully-valid snapshot always beats an older one
        # (and a stale CURRENT pointer).  load_snapshot digests each file
        # from the bytes it is about to unpickle, so selection and loading
        # cost one read, and a corrupt candidate just drops to the next.
        snapshot = None
        for checkpoint_id in reversed(self.layout.snapshot_ids()):
            try:
                snapshot = load_snapshot(self.layout, checkpoint_id)
                break
            except PersistenceError:
                continue
        recovered = RecoveredState(snapshot=snapshot)
        base = snapshot.checkpoint_id if snapshot is not None else 0

        segment_ids = [s for s in self.layout.wal_segment_ids() if s > base]
        last_result: ReplayResult | None = None
        last_segment = base
        for segment_id in sorted(segment_ids):
            result = read_records(self.layout.wal_path(segment_id))
            recovered.operations.extend(result.records)
            recovered.segments_replayed += 1
            last_result = result
            last_segment = segment_id
            if result.torn:
                recovered.torn_tail = True
                # Anything past a tear is of uncertain order; in normal
                # operation a tear only ever happens in the final segment,
                # so later segments here mean external corruption — drop
                # them rather than replay history out of order.
                for later in sorted(segment_ids):
                    if later > segment_id:
                        try:
                            self.layout.wal_path(later).unlink()
                        except OSError:  # pragma: no cover - best-effort
                            pass
                break

        if last_result is None:
            recovered.active_segment_id = base + 1
            recovered.active_segment_valid_bytes = None
        else:
            recovered.active_segment_id = last_segment
            recovered.active_segment_valid_bytes = last_result.valid_bytes
        return recovered

    @staticmethod
    def operations_of(records: list[WalRecord]) -> dict[str, int]:
        """Tally of replayed operations by kind (for stats/logging)."""
        counts: dict[str, int] = {}
        for record in records:
            counts[record.op] = counts.get(record.op, 0) + 1
        return counts
