"""Append-only write-ahead log with CRC framing and torn-tail recovery.

Every corpus mutation of a durable service is logged **before** it is
applied in memory, in the classic HTAP shape (an update log decoupled from
the read-optimised state): an ``add`` record carries the fully annotated
:class:`~repro.nlp.types.Document` so replay never re-runs NLP annotation,
and a ``remove`` record carries the document id.

Frame format (little-endian)::

    +----------+----------+-------------------+
    | len: u32 | crc: u32 | payload (pickled) |
    +----------+----------+-------------------+

``crc`` is the zlib CRC-32 of the payload.  A crash can tear at most the
final frame (appends are sequential and fsynced per record by default);
:func:`read_records` stops at the first truncated or corrupt frame and
reports how many bytes were valid, so recovery can truncate the torn tail
and keep appending to the same segment.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from ..errors import PersistenceError
from ..nlp.types import Document
from .layout import fsync_dir as _fsync_dir

_HEADER = struct.Struct("<II")

OP_ADD = "add"
OP_REMOVE = "remove"


@dataclass(frozen=True)
class WalRecord:
    """One logged corpus mutation."""

    op: str
    doc_id: str
    document: Document | None = None  # annotated payload for OP_ADD

    def to_payload(self) -> bytes:
        return pickle.dumps(
            (self.op, self.doc_id, self.document), protocol=pickle.HIGHEST_PROTOCOL
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        op, doc_id, document = pickle.loads(payload)
        return cls(op=op, doc_id=doc_id, document=document)


def encode_frame(payload: bytes) -> bytes:
    """One CRC-framed record, ready to append."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReplayResult:
    """Outcome of scanning one WAL segment."""

    records: list[WalRecord]
    valid_bytes: int
    torn: bool  # a truncated or corrupt frame ended the scan early


def read_records(path: str | Path) -> ReplayResult:
    """Scan one segment, tolerating a torn final frame.

    Returns every record of the longest valid prefix.  ``torn`` is True when
    trailing bytes had to be discarded (truncated header, truncated payload,
    or CRC mismatch) — the durable prefix property crash recovery relies on.
    """
    path = Path(path)
    records: list[WalRecord] = []
    valid = 0
    torn = False
    with path.open("rb") as handle:
        while True:
            header = handle.read(_HEADER.size)
            if not header:
                break
            if len(header) < _HEADER.size:
                torn = True
                break
            length, crc = _HEADER.unpack(header)
            payload = handle.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                torn = True
                break
            try:
                records.append(WalRecord.from_payload(payload))
            except Exception:
                torn = True
                break
            valid += _HEADER.size + length
    return ReplayResult(records=records, valid_bytes=valid, torn=torn)


class WalWriter:
    """Appends framed records to one segment file, fsyncing per record.

    ``sync=False`` trades the per-record fsync for OS-buffered flushes
    (still crash-consistent at the frame level thanks to the CRC framing,
    but the tail may be lost on power failure) — useful for bulk loads.
    """

    def __init__(self, path: str | Path, sync: bool = True, truncate_to: int | None = None):
        self.path = Path(path)
        self.sync = sync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if truncate_to is not None and self.path.exists():
            with self.path.open("r+b") as handle:
                handle.truncate(truncate_to)
        self._handle: io.BufferedWriter | None = self.path.open("ab")
        self._bytes_written = self.path.stat().st_size

    @property
    def size_bytes(self) -> int:
        """Current segment size (durable prefix plus buffered frames)."""
        return self._bytes_written

    def append(self, record: WalRecord) -> int:
        """Frame, append and (optionally) fsync one record; returns its size.

        A failed append (ENOSPC, I/O error) must not leave a partial frame
        mid-segment: later successful appends would land *after* the
        garbage, and recovery — which stops at the first corrupt frame —
        would silently drop them.  On failure the segment is truncated back
        to the last good frame boundary before the error propagates; if
        even that fails the writer declares itself closed so every further
        append fails loudly instead of corrupting the log.
        """
        if self._handle is None:
            raise PersistenceError(f"WAL segment {self.path} is closed")
        frame = encode_frame(record.to_payload())
        try:
            self._handle.write(frame)
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
        except Exception:
            self._rewind_to_last_good_frame()
            raise
        self._bytes_written += len(frame)
        return len(frame)

    def _rewind_to_last_good_frame(self) -> None:
        """Discard a partial frame after a failed append (see :meth:`append`)."""
        try:
            self._handle.close()  # drops any buffered partial bytes
        except Exception:
            pass
        try:
            with self.path.open("r+b") as handle:
                handle.truncate(self._bytes_written)
            self._handle = self.path.open("ab")
        except Exception:
            self._handle = None  # segment unusable; appends now raise

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


class WriteAheadLog:
    """The service-facing WAL: an active segment plus rotation at checkpoint."""

    def __init__(
        self,
        layout,
        segment_id: int,
        sync: bool = True,
        truncate_to: int | None = None,
    ) -> None:
        self._layout = layout
        self.sync = sync
        self.segment_id = segment_id
        self._writer = WalWriter(
            layout.wal_path(segment_id), sync=sync, truncate_to=truncate_to
        )
        # make the segment's dirent durable, not just its contents — a lost
        # dirent after a crash would strand fsynced records in limbo
        _fsync_dir(layout.wal_dir)
        self.records_appended = 0

    @property
    def active_path(self) -> Path:
        return self._writer.path

    @property
    def active_bytes(self) -> int:
        return self._writer.size_bytes

    def append(self, record: WalRecord) -> int:
        """Append one record to the active segment; returns the frame size."""
        appended = self._writer.append(record)
        self.records_appended += 1
        return appended

    def rotate(self) -> int:
        """Close the active segment and open the next one.

        Returns the id of the segment that was just sealed — the checkpoint
        id whose snapshot covers every record up to this point.
        """
        sealed = self.segment_id
        self._writer.close()
        self.segment_id = sealed + 1
        self._writer = WalWriter(self._layout.wal_path(self.segment_id), sync=self.sync)
        _fsync_dir(self._layout.wal_dir)
        return sealed

    def close(self) -> None:
        self._writer.close()
